"""Tests for connectivity algorithms."""

import numpy as np
import pytest

from repro.graph import from_edges
from repro.graph.components import (
    Components,
    largest_strongly_connected_subgraph,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph.generators import complete_graph, cycle_graph, path_graph


class TestSCC:
    def test_cycle_is_one_component(self):
        result = strongly_connected_components(cycle_graph(5))
        assert result.count == 1
        assert np.all(result.labels == 0)

    def test_path_is_singletons(self):
        result = strongly_connected_components(path_graph(4))
        assert result.count == 4
        assert np.unique(result.labels).size == 4

    def test_two_cycles_with_bridge(self):
        # 0-1-2 cycle -> bridge -> 3-4 cycle.
        graph = from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)]
        )
        result = strongly_connected_components(graph)
        assert result.count == 2
        assert result.labels[0] == result.labels[1] == result.labels[2]
        assert result.labels[3] == result.labels[4]
        assert result.labels[0] != result.labels[3]

    def test_reverse_topological_ids(self):
        # Tarjan assigns the sink component the smallest id.
        graph = from_edges([(0, 1)], num_nodes=2)
        result = strongly_connected_components(graph)
        assert result.labels[1] < result.labels[0]

    def test_self_loop_single_component(self):
        graph = from_edges([(0, 0)], num_nodes=1)
        assert strongly_connected_components(graph).count == 1

    def test_empty_graph(self):
        graph = from_edges([], num_nodes=0)
        result = strongly_connected_components(graph)
        assert result.count == 0
        assert result.largest().size == 0

    def test_deep_path_no_recursion_limit(self):
        # 20000-node path: a recursive Tarjan would hit the stack limit.
        graph = path_graph(20000)
        result = strongly_connected_components(graph)
        assert result.count == 20000

    def test_matches_networkx(self, small_social):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.DiGraph(list(small_social.edges()))
        nx_graph.add_nodes_from(range(small_social.num_nodes))
        expected = list(networkx.strongly_connected_components(nx_graph))
        result = strongly_connected_components(small_social)
        assert result.count == len(expected)
        # Same partition: every networkx component maps to one label.
        for component in expected:
            labels = {int(result.labels[node]) for node in component}
            assert len(labels) == 1


class TestWCC:
    def test_direction_ignored(self):
        graph = from_edges([(0, 1), (2, 1)], num_nodes=4)
        result = weakly_connected_components(graph)
        assert result.labels[0] == result.labels[1] == result.labels[2]
        assert result.labels[3] != result.labels[0]
        assert result.count == 2

    def test_complete_graph_single(self):
        assert weakly_connected_components(complete_graph(4)).count == 1

    def test_isolated_nodes(self):
        graph = from_edges([], num_nodes=3)
        assert weakly_connected_components(graph).count == 3


class TestComponentsHelpers:
    def test_members_and_sizes(self):
        result = Components(labels=np.array([0, 1, 0, 1, 1]), count=2)
        assert result.members(0).tolist() == [0, 2]
        assert result.sizes().tolist() == [2, 3]
        assert result.largest().tolist() == [1, 3, 4]

    def test_largest_scc_subgraph(self):
        graph = from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)]
        )
        sub, node_map = largest_strongly_connected_subgraph(graph)
        assert sub.num_nodes == 3
        assert node_map.tolist() == [0, 1, 2]
        # The subgraph is strongly connected.
        assert strongly_connected_components(sub).count == 1

    def test_largest_scc_makes_ppv_a_distribution(self, small_social):
        from repro.core.exact import exact_ppv

        sub, _ = largest_strongly_connected_subgraph(small_social)
        scores = exact_ppv(sub, 0)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)
