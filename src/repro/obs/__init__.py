"""repro.obs — metrics, distributed tracing, and per-query cost
accounting for the serving fleet.

One :class:`Observability` bundle ties the three pillars together:

* a :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  histograms; snapshot + merge; Prometheus text exposition),
* a :class:`~repro.obs.trace.Tracer` (bounded span ring + optional
  JSONL log) for traces that cross the client → server → router →
  shard → kernel path,
* an optional :class:`~repro.obs.slowlog.SlowQueryLog`.

Pass a bundle to ``PPVService(..., obs=...)`` (or ``ShardRouter(...,
obs=...)``) to instrument a serving stack; with ``obs=None`` (the
default) every hook reduces to one ``is not None`` check and the hot
path is untouched — the same zero-cost discipline as
:mod:`repro.faults`.  Each bundle is self-contained by default (fresh
registry and tracer per instance) so side-by-side services in one
process never share series.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    render_prometheus,
)
from repro.obs.slowlog import SlowQueryLog, cost_counters
from repro.obs.trace import (
    DEFAULT_TRACE_CAPACITY,
    Span,
    SpanContext,
    Tracer,
    activate,
    current_span,
    default_tracer,
    new_id,
    span_tree,
)

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_TRACE_CAPACITY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "SlowQueryLog",
    "Span",
    "SpanContext",
    "Tracer",
    "activate",
    "cost_counters",
    "current_span",
    "default_registry",
    "default_tracer",
    "new_id",
    "render_prometheus",
    "span_tree",
]


class Observability:
    """One registry + tracer (+ optional slow-query log) for a service.

    Parameters
    ----------
    registry, tracer:
        Existing instances to share; fresh private ones by default.
    slow_query_seconds:
        When given, queries slower than this many seconds are recorded
        into :attr:`slow_log` with their cost counters and trace id.
    trace_capacity / trace_log_path:
        Span ring size and optional JSONL span log (only used when a
        fresh tracer is created).
    """

    def __init__(
        self,
        registry: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
        *,
        slow_query_seconds: "float | None" = None,
        slow_log_capacity: int = 128,
        slow_log_path=None,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        trace_log_path=None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(capacity=trace_capacity, log_path=trace_log_path)
        )
        self.slow_log: "SlowQueryLog | None" = None
        if slow_query_seconds is not None:
            self.slow_log = SlowQueryLog(
                slow_query_seconds,
                capacity=slow_log_capacity,
                path=slow_log_path,
            )

    def observe_engine(self, engine) -> None:
        """Expose an engine's existing cost counters as function-backed
        metrics (read at snapshot time; no hot-path writes).

        Works for any engine with ``ppv_store``/``graph_store``
        attributes — disk, sharded router, or shard.  Closures go
        through the engine attribute rather than binding the store
        objects, so a router re-bootstrap (which swaps stores) stays
        observed.  Idempotent per registry.
        """
        registry = self.registry
        if getattr(engine, "ppv_store", None) is not None:
            registry.counter_func(
                "repro_hub_reads_total",
                "Hub prime-PPV payloads fetched (disk reads or shard fetches).",
                lambda: getattr(engine.ppv_store, "reads", 0),
            )
            registry.counter_func(
                "repro_ppv_bytes_read_total",
                "Bytes of prime-PPV payload read from the PPV store.",
                lambda: getattr(engine.ppv_store, "bytes_read", 0),
            )
            if hasattr(engine.ppv_store, "shard_fetches"):
                registry.counter_func(
                    "repro_shard_hub_fetches_total",
                    "Hub payload fetches per shard.",
                    _shard_fetch_reader(engine, "ppv_store"),
                    labelnames=("shard",),
                )
        if getattr(engine, "graph_store", None) is not None:
            registry.counter_func(
                "repro_cluster_faults_total",
                "Graph cluster cache misses (cluster loads from disk or shard).",
                lambda: getattr(engine.graph_store, "faults", 0),
            )
            registry.counter_func(
                "repro_graph_bytes_read_total",
                "Bytes of cluster payload read from the graph store.",
                lambda: getattr(engine.graph_store, "bytes_read", 0),
            )
            if hasattr(engine.graph_store, "shard_fetches"):
                registry.counter_func(
                    "repro_shard_cluster_fetches_total",
                    "Cluster fetches per shard.",
                    _shard_fetch_reader(engine, "graph_store"),
                    labelnames=("shard",),
                )


def _shard_fetch_reader(engine, attr: str):
    def read() -> dict:
        store = getattr(engine, attr, None)
        counts = getattr(store, "shard_fetches", None) or ()
        return {(str(shard),): count for shard, count in enumerate(counts)}

    return read
