"""Unit tests for multi-node queries (Linearity Theorem)."""

import numpy as np
import pytest

from repro import FastPPV, StopAfterIterations, multi_node_ppv


@pytest.fixture(scope="module")
def engine(small_social, small_social_index):
    return FastPPV(small_social, small_social_index)


class TestMultiNodePPV:
    def test_single_node_reduces_to_query(self, engine):
        stop = StopAfterIterations(2)
        combined = multi_node_ppv(engine, [5], stop=stop)
        single = engine.query(5, stop=stop)
        np.testing.assert_allclose(combined.scores, single.scores, atol=1e-15)

    def test_uniform_weights_average(self, engine):
        stop = StopAfterIterations(1)
        combined = multi_node_ppv(engine, [3, 8], stop=stop)
        a = engine.query(3, stop=stop).scores
        b = engine.query(8, stop=stop).scores
        np.testing.assert_allclose(combined.scores, 0.5 * (a + b), atol=1e-15)

    def test_custom_weights(self, engine):
        stop = StopAfterIterations(1)
        combined = multi_node_ppv(engine, [3, 8], weights=[3.0, 1.0], stop=stop)
        a = engine.query(3, stop=stop).scores
        b = engine.query(8, stop=stop).scores
        np.testing.assert_allclose(combined.scores, 0.75 * a + 0.25 * b, atol=1e-15)

    def test_weights_normalised(self, engine):
        stop = StopAfterIterations(1)
        w1 = multi_node_ppv(engine, [3, 8], weights=[2.0, 2.0], stop=stop)
        w2 = multi_node_ppv(engine, [3, 8], weights=[0.5, 0.5], stop=stop)
        np.testing.assert_allclose(w1.scores, w2.scores, atol=1e-15)

    def test_error_history_is_weighted(self, engine):
        stop = StopAfterIterations(2)
        combined = multi_node_ppv(engine, [3, 8], stop=stop)
        a = engine.query(3, stop=stop)
        b = engine.query(8, stop=stop)
        expected_final = 0.5 * (a.error_history[-1] + b.error_history[-1])
        assert combined.error_history[-1] == pytest.approx(expected_final, abs=1e-12)

    def test_empty_query_rejected(self, engine):
        with pytest.raises(ValueError):
            multi_node_ppv(engine, [])

    def test_wrong_weight_count_rejected(self, engine):
        with pytest.raises(ValueError):
            multi_node_ppv(engine, [1, 2], weights=[1.0])

    def test_negative_weights_rejected(self, engine):
        with pytest.raises(ValueError):
            multi_node_ppv(engine, [1, 2], weights=[1.0, -1.0])

    def test_scores_still_a_distribution_estimate(self, engine):
        combined = multi_node_ppv(engine, [1, 2, 3], stop=StopAfterIterations(2))
        assert 0.0 < combined.scores.sum() <= 1.0 + 1e-9
