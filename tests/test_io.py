"""Unit tests for edge-list I/O."""

import pytest

from repro.graph import from_edges, read_edge_list, write_edge_list


class TestRoundTrip:
    def test_directed_roundtrip(self, tmp_path):
        graph = from_edges([(0, 1), (1, 2), (2, 0)], num_nodes=3)
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded == graph

    def test_roundtrip_preserves_isolated_with_num_nodes(self, tmp_path):
        graph = from_edges([(0, 1)], num_nodes=5)
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path, num_nodes=5)
        assert loaded.num_nodes == 5


class TestRead:
    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n# mid\n1 2\n")
        graph = read_edge_list(path)
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_undirected_read(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        graph = read_edge_list(path, undirected=True)
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_extra_columns_tolerated(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5\n")
        graph = read_edge_list(path)
        assert graph.has_edge(0, 1)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_edge_list(tmp_path / "nope.txt")
