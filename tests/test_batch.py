"""Batch engine: equivalence with the scalar engine, edge cases, caching,
parallel builds, and the per-query callback contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BatchFastPPV,
    FastPPV,
    StopAfterIterations,
    StopAtL1Error,
    any_of,
    build_index,
    select_hubs,
    social_graph,
)
from repro.core.prime import prime_ppv, prime_push_many
from repro.core.query import DEFAULT_DELTA, QueryState
from repro.core.splice import (
    build_splice_matrix,
    invalidate_splice_cache,
    splice_matrix,
)
from repro.graph.build import GraphBuilder
from repro.graph.generators import erdos_renyi_graph

ATOL = 1e-12

STOPS = [
    StopAfterIterations(0),
    StopAfterIterations(2),
    StopAtL1Error(0.05),
    any_of(StopAfterIterations(3), StopAtL1Error(0.01)),
]


def _weighted_variant(graph, seed: int):
    """The same adjacency with seeded random edge weights."""
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(num_nodes=graph.num_nodes)
    for src in range(graph.num_nodes):
        for dst in graph.out_neighbors(src).tolist():
            builder.add_edge(src, dst, float(rng.uniform(0.2, 3.0)))
    return builder.build()


def _with_dangling(graph, extra: int = 3):
    """Append ``extra`` sink nodes (zero out-degree) fed by node 0."""
    builder = GraphBuilder(num_nodes=graph.num_nodes + extra)
    weights = graph.weights
    for src in range(graph.num_nodes):
        start, end = graph.indptr[src], graph.indptr[src + 1]
        for position in range(start, end):
            weight = float(weights[position]) if weights is not None else None
            builder.add_edge(src, int(graph.indices[position]), weight)
    for sink in range(graph.num_nodes, graph.num_nodes + extra):
        builder.add_edge(0, sink)
    return builder.build()


def _graph_zoo():
    """Seeded ER + power-law graphs, weighted and unweighted, with
    dangling nodes."""
    er = erdos_renyi_graph(220, 3.0 / 220, seed=13)
    power_law = social_graph(num_nodes=240, edges_per_node=3, seed=21)
    zoo = [
        ("er", _with_dangling(er)),
        ("er-weighted", _with_dangling(_weighted_variant(er, seed=5))),
        ("power-law", _with_dangling(power_law)),
        ("power-law-weighted", _with_dangling(_weighted_variant(power_law, 9))),
    ]
    return zoo


def _engines(graph, num_hubs=25, delta=1e-4, **kwargs):
    hubs = select_hubs(graph, num_hubs=num_hubs)
    index = build_index(graph, hubs)
    scalar = FastPPV(graph, index, delta=delta, **kwargs)
    batch = BatchFastPPV(graph, index, delta=delta, **kwargs)
    return index, scalar, batch


def assert_equivalent(scalar_result, batch_result):
    assert batch_result.query == scalar_result.query
    assert batch_result.iterations == scalar_result.iterations
    assert batch_result.hubs_expanded == scalar_result.hubs_expanded
    assert batch_result.work_units == scalar_result.work_units
    assert len(batch_result.error_history) == len(scalar_result.error_history)
    np.testing.assert_allclose(
        batch_result.scores, scalar_result.scores, atol=ATOL
    )
    np.testing.assert_allclose(
        batch_result.error_history, scalar_result.error_history, atol=ATOL
    )


class TestEquivalence:
    @pytest.mark.parametrize("name,graph", _graph_zoo())
    def test_matches_scalar_engine(self, name, graph):
        index, scalar, batch = _engines(graph)
        rng = np.random.default_rng(3)
        queries = rng.choice(graph.num_nodes, size=24, replace=False).tolist()
        # Make sure hub queries and dangling sinks are represented.
        queries[0] = int(index.hubs[0])
        queries[1] = graph.num_nodes - 1
        for stop in STOPS:
            batch_results = batch.query_many(queries, stop=stop)
            for query, batch_result in zip(queries, batch_results):
                assert_equivalent(scalar.query(query, stop=stop), batch_result)

    def test_fastppv_batch_engine_matches_scalar(self, small_social,
                                                 small_social_index):
        engine = FastPPV(small_social, small_social_index, delta=1e-4)
        stop = StopAfterIterations(2)
        batch = engine.batch_engine
        assert batch.delta == engine.delta
        results = batch.query_many([9, 4, 4, 17], stop=stop)
        assert [r.query for r in results] == [9, 4, 4, 17]
        for query, result in zip([9, 4, 4, 17], results):
            assert_equivalent(engine.query(query, stop=stop), result)

    def test_default_delta_and_default_stop(self, small_social,
                                            small_social_index):
        scalar = FastPPV(small_social, small_social_index)
        batch = BatchFastPPV(small_social, small_social_index)
        assert batch.delta == DEFAULT_DELTA
        for query, result in zip([2, 8], batch.query_many([2, 8])):
            assert_equivalent(scalar.query(query), result)

    def test_push_many_matches_prime_ppv(self):
        graph = _with_dangling(erdos_renyi_graph(150, 0.03, seed=2))
        hubs = select_hubs(graph, num_hubs=15)
        mask = np.zeros(graph.num_nodes, dtype=bool)
        mask[hubs] = True
        sources = np.array([0, 7, int(hubs[0]), graph.num_nodes - 1])
        scores, border, edges = prime_push_many(
            graph, sources, mask, alpha=0.15, epsilon=1e-7
        )
        for row, source in enumerate(sources.tolist()):
            single = prime_ppv(graph, source, mask, alpha=0.15, epsilon=1e-7)
            np.testing.assert_allclose(
                scores[row], single.to_dense(graph.num_nodes), atol=ATOL
            )
            dense_border = np.zeros(graph.num_nodes)
            dense_border[single.border_hubs] = single.border_masses
            np.testing.assert_allclose(border[row], dense_border, atol=ATOL)
            assert edges[row] == single.edges_touched


class TestEdgeCases:
    def test_empty_batch(self, small_social, small_social_index):
        batch = BatchFastPPV(small_social, small_social_index)
        assert batch.query_many([]) == []

    def test_hub_query_in_batch(self, small_social, small_social_index):
        hub = int(small_social_index.hubs[0])
        scalar = FastPPV(small_social, small_social_index, delta=1e-4)
        batch = BatchFastPPV(small_social, small_social_index, delta=1e-4)
        (result,) = batch.query_many([hub], stop=StopAfterIterations(2))
        assert_equivalent(scalar.query(hub, stop=StopAfterIterations(2)), result)
        # A hub's iteration 0 loads from the index: no push work.
        assert result.work_units >= 0

    def test_duplicate_query_ids(self, small_social, small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, cache_size=0)
        results = batch.query_many([6, 6, 6], stop=StopAfterIterations(1))
        assert [r.query for r in results] == [6, 6, 6]
        np.testing.assert_array_equal(results[0].scores, results[1].scores)
        np.testing.assert_array_equal(results[0].scores, results[2].scores)
        # Rows must be independent copies, not views of one buffer.
        results[0].scores[0] += 1.0
        assert results[1].scores[0] != results[0].scores[0]

    def test_zero_out_degree_query(self):
        # Node 4 is a sink: iteration 0 keeps alpha at the query and the
        # frontier is empty, so the loop exits with 0 iterations.
        graph = GraphBuilder(num_nodes=5)
        for src, dst in [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4)]:
            graph.add_edge(src, dst)
        graph = graph.build()
        index = build_index(graph, [0, 2])
        scalar = FastPPV(graph, index)
        batch = BatchFastPPV(graph, index)
        (result,) = batch.query_many([4], stop=StopAfterIterations(5))
        assert_equivalent(scalar.query(4, stop=StopAfterIterations(5)), result)
        assert result.iterations == 0
        assert result.scores[4] == pytest.approx(index.alpha)

    def test_delta_prunes_whole_frontier(self, small_social,
                                         small_social_index):
        # A delta above alpha gates every frontier entry: iteration 1
        # still runs (and is recorded) but expands nothing, emptying the
        # frontier and ending the query.
        scalar = FastPPV(small_social, small_social_index, delta=1.0)
        batch = BatchFastPPV(small_social, small_social_index, delta=1.0)
        stop = StopAfterIterations(4)
        (result,) = batch.query_many([3], stop=stop)
        assert_equivalent(scalar.query(3, stop=stop), result)
        assert result.iterations == 1
        assert result.hubs_expanded == 0
        assert len(result.error_history) == 2
        assert result.error_history[0] == pytest.approx(
            result.error_history[1]
        )

    def test_parallel_build_matches_serial(self, small_social):
        hubs = select_hubs(small_social, num_hubs=30)
        serial = build_index(small_social, hubs, workers=1)
        parallel = build_index(small_social, hubs, workers=4)
        assert set(serial.entries) == set(parallel.entries)
        for hub, entry in serial.entries.items():
            other = parallel.entries[hub]
            np.testing.assert_array_equal(entry.nodes, other.nodes)
            np.testing.assert_array_equal(entry.scores, other.scores)
            np.testing.assert_array_equal(entry.border_hubs, other.border_hubs)
            np.testing.assert_array_equal(
                entry.border_masses, other.border_masses
            )
            assert entry.edges_touched == other.edges_touched
        assert serial.stats.num_hubs == parallel.stats.num_hubs
        assert serial.stats.stored_entries == parallel.stats.stored_entries
        assert serial.stats.stored_bytes == parallel.stats.stored_bytes
        assert serial.stats.border_entries == parallel.stats.border_entries
        np.testing.assert_array_equal(serial.hub_mask, parallel.hub_mask)

    def test_workers_validation(self, small_social):
        with pytest.raises(ValueError):
            build_index(small_social, [1, 2], workers=0)

    def test_chunked_batches(self, small_social, small_social_index):
        # A chunk size smaller than the batch must not change results.
        full = BatchFastPPV(small_social, small_social_index, cache_size=0)
        chunked = BatchFastPPV(
            small_social, small_social_index, cache_size=0, chunk_size=3
        )
        queries = list(range(10))
        for a, b in zip(full.query_many(queries), chunked.query_many(queries)):
            np.testing.assert_array_equal(a.scores, b.scores)
            assert a.iterations == b.iterations

    def test_out_of_range_query_rejected(self, small_social,
                                         small_social_index):
        batch = BatchFastPPV(small_social, small_social_index)
        with pytest.raises(ValueError):
            batch.query_many([small_social.num_nodes])


class TestSpliceMatrix:
    def test_cached_on_index(self, small_social_index):
        first = splice_matrix(small_social_index)
        assert splice_matrix(small_social_index) is first
        invalidate_splice_cache(small_social_index)
        rebuilt = splice_matrix(small_social_index)
        assert rebuilt is not first
        np.testing.assert_array_equal(rebuilt.hub_ids, first.hub_ids)

    def test_shapes_and_correction(self, small_social, small_social_index):
        matrix = build_splice_matrix(small_social_index)
        num_hubs = small_social_index.num_hubs
        assert matrix.scores.shape == (num_hubs, small_social.num_nodes)
        assert matrix.borders.shape == (num_hubs, num_hubs)
        # Each hub's own column carries score - alpha (trivial tour removed).
        for row in [0, num_hubs // 2, num_hubs - 1]:
            hub = int(matrix.hub_ids[row])
            entry = small_social_index.get(hub)
            expected = entry.score_of(hub) - small_social_index.alpha
            assert matrix.scores[row, hub] == pytest.approx(expected)

    def test_engine_follows_invalidation(self, small_social,
                                         small_social_index):
        # An existing engine must pick up a rebuilt lowering after
        # invalidate_splice_cache, not keep serving a private stale copy.
        engine = BatchFastPPV(small_social, small_social_index)
        before = engine.splice
        assert engine.splice is before
        invalidate_splice_cache(small_social_index)
        assert engine.splice is not before

    def test_rows_of_empty_input(self, small_social_index):
        matrix = splice_matrix(small_social_index)
        assert matrix.rows_of(np.zeros(0, dtype=np.int64)).size == 0

    def test_rows_of_rejects_non_hub(self, small_social_index):
        matrix = splice_matrix(small_social_index)
        non_hub = int(np.nonzero(~small_social_index.hub_mask)[0][0])
        with pytest.raises(KeyError):
            matrix.rows_of(np.array([non_hub]))


class TestCache:
    def test_repeated_queries_hit_cache(self, small_social,
                                        small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, cache_size=8)
        stop = StopAfterIterations(2)
        (first,) = batch.query_many([5], stop=stop)
        (second,) = batch.query_many([5], stop=stop)
        np.testing.assert_array_equal(first.scores, second.scores)
        assert len(batch._cache) == 1

    def test_cache_isolated_from_caller_mutation(self, small_social,
                                                 small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, cache_size=8)
        (first,) = batch.query_many([5])
        first.scores[:] = -1.0
        (second,) = batch.query_many([5])
        assert second.scores[0] != -1.0

    def test_cache_bounded(self, small_social, small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, cache_size=4)
        batch.query_many(list(range(10)))
        assert len(batch._cache) == 4

    def test_distinct_stops_cached_separately(self, small_social,
                                              small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, cache_size=8)
        (eta0,) = batch.query_many([5], stop=StopAfterIterations(0))
        (eta2,) = batch.query_many([5], stop=StopAfterIterations(2))
        assert eta0.iterations == 0
        assert eta2.iterations > 0
        assert len(batch._cache) == 2

    def test_cache_disabled(self, small_social, small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, cache_size=0)
        batch.query_many([5, 5])
        assert len(batch._cache) == 0

    def test_cache_dropped_on_lowering_invalidation(self, small_social,
                                                    small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, cache_size=8)
        batch.query_many([5])
        assert len(batch._cache) == 1
        invalidate_splice_cache(small_social_index)
        # The next batch sees a rebuilt lowering and must not serve
        # results computed against the old one.
        batch.query_many([6])
        assert (5, StopAfterIterations(2)) not in batch._cache
        assert (6, StopAfterIterations(2)) in batch._cache

    def test_non_batch_safe_stops_use_scalar_path(self, small_social,
                                                  small_social_index):
        from repro import StopAfterTime
        from repro.core.batch import batch_safe

        class CustomStop:
            def should_stop(self, state):
                return state.iteration >= 1

        assert not batch_safe(StopAfterTime(1.0))
        assert not batch_safe(any_of(StopAfterIterations(2),
                                     StopAfterTime(1.0)))
        assert not batch_safe(CustomStop())
        assert batch_safe(any_of(StopAfterIterations(2),
                                 StopAtL1Error(0.1)))
        from repro.serving.engines import MemoryEngine

        engine = MemoryEngine(small_social, small_social_index, delta=1e-4)
        # A custom (uninspectable) condition routes per query too.
        custom_results = engine.query_batch([3], stop=CustomStop())
        assert custom_results[0].iterations == 1
        stop = any_of(StopAfterIterations(2), StopAfterTime(1e9))
        results = engine.query_batch([3, 8], stop=stop)
        # Per-query scalar semantics: results match scalar queries.
        for query, result in zip([3, 8], results):
            assert_equivalent(engine._scalar.query(query, stop=stop), result)

    def test_default_chunk_size_is_graph_aware(self, small_social,
                                               small_social_index):
        batch = BatchFastPPV(small_social, small_social_index)
        assert 16 <= batch.chunk_size <= 512


class TestCacheEdgeCases:
    """LRU mechanics: eviction order, invalidation, and stop-keyed entries."""

    def _keys(self, batch):
        return [key[0] for key in batch._cache]

    def test_eviction_is_least_recently_used(self, small_social,
                                             small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, cache_size=3)
        stop = StopAfterIterations(1)
        batch.query_many([1, 2, 3], stop=stop)
        assert self._keys(batch) == [1, 2, 3]
        # A cache *hit* must refresh recency, making 2 the eviction victim.
        batch.query_many([1], stop=stop)
        assert self._keys(batch) == [2, 3, 1]
        batch.query_many([4], stop=stop)
        assert self._keys(batch) == [3, 1, 4]
        assert (2, stop) not in batch._cache

    def test_put_of_existing_key_refreshes_recency(self, small_social,
                                                   small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, cache_size=2)
        stop = StopAfterIterations(1)
        batch.query_many([1, 2], stop=stop)
        # Bypassing the lookup (callback) recomputes and re-puts key 1.
        batch.query_many([1], stop=stop, on_iteration=lambda p, s: None)
        batch.query_many([3], stop=stop)
        assert self._keys(batch) == [1, 3]

    def test_rebuild_invalidation_then_repopulation(self, small_social,
                                                    small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, cache_size=4)
        stop = StopAfterIterations(2)
        (stale,) = batch.query_many([5], stop=stop)
        invalidate_splice_cache(small_social_index)
        # First batch after the rebuild repopulates against the new
        # lowering; the result is equivalent (the index content did not
        # change) but must have been recomputed, not served stale.
        (fresh,) = batch.query_many([5], stop=stop)
        np.testing.assert_allclose(fresh.scores, stale.scores, atol=1e-12)
        assert len(batch._cache) == 1
        (hit,) = batch.query_many([5], stop=stop)
        np.testing.assert_array_equal(hit.scores, fresh.scores)

    def test_same_query_different_stops_distinct_entries(self, small_social,
                                                         small_social_index):
        from repro import StopWhenCertified

        batch = BatchFastPPV(small_social, small_social_index, cache_size=8,
                             delta=0.0)
        stops = [
            StopAfterIterations(1),
            StopAfterIterations(2),
            StopAtL1Error(0.05),
            any_of(StopAfterIterations(3), StopAtL1Error(0.01)),
            StopWhenCertified(k=3, max_iterations=20),
            StopWhenCertified(k=3, max_iterations=30),
            StopWhenCertified(k=4, max_iterations=30),
        ]
        for stop in stops:
            batch.query_many([5], stop=stop)
        assert len(batch._cache) == len(stops)
        # Otherwise-identical queries with different stopping conditions
        # must not cross-serve: eta=1 and eta=2 differ in iterations.
        (eta1,) = batch.query_many([5], stop=StopAfterIterations(1))
        (eta2,) = batch.query_many([5], stop=StopAfterIterations(2))
        assert eta1.iterations == 1
        assert eta2.iterations == 2

    def test_equal_valued_stop_instances_share_entry(self, small_social,
                                                     small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, cache_size=8)
        batch.query_many([5], stop=StopAfterIterations(2))
        batch.query_many([5], stop=StopAfterIterations(2))  # fresh instance
        batch.query_many(
            [5], stop=any_of(StopAfterIterations(3), StopAtL1Error(0.01))
        )
        batch.query_many(
            [5], stop=any_of(StopAfterIterations(3), StopAtL1Error(0.01))
        )
        assert len(batch._cache) == 2

    def test_hits_do_not_leak_shared_buffers(self, small_social,
                                             small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, cache_size=4)
        stop = StopAfterIterations(1)
        (first,) = batch.query_many([5], stop=stop)
        (second,) = batch.query_many([5], stop=stop)
        # Two hits must hand out independent arrays.
        second.scores[0] = -5.0
        (third,) = batch.query_many([5], stop=stop)
        assert third.scores[0] == first.scores[0]
        assert third.error_history is not first.error_history


class TestCallbackContract:
    def test_invocation_counts(self, small_social, small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, delta=1e-4)
        calls: dict[int, list[QueryState]] = {}
        queries = [4, 9, 9]
        results = batch.query_many(
            queries,
            stop=StopAfterIterations(2),
            on_iteration=lambda position, state: calls.setdefault(
                position, []
            ).append(state),
        )
        assert sorted(calls) == [0, 1, 2]
        for position, result in enumerate(results):
            # One call per executed iteration, iteration 0 included.
            assert len(calls[position]) == result.iterations + 1
            assert [s.iteration for s in calls[position]] == list(
                range(result.iterations + 1)
            )
            assert calls[position][-1].l1_error == pytest.approx(
                result.l1_error
            )

    def test_callback_counts_match_scalar_engine(self, small_social,
                                                 small_social_index):
        scalar = FastPPV(small_social, small_social_index, delta=1e-4)
        scalar_calls: list[QueryState] = []
        scalar.query(
            7, stop=StopAfterIterations(2), on_iteration=scalar_calls.append
        )
        batch_calls: list[QueryState] = []
        scalar.batch_engine.query_many(
            [7],
            stop=StopAfterIterations(2),
            on_iteration=lambda _position, state: batch_calls.append(state),
        )
        assert len(batch_calls) == len(scalar_calls)
        assert [s.iteration for s in batch_calls] == [
            s.iteration for s in scalar_calls
        ]

    def test_callback_bypasses_cache(self, small_social, small_social_index):
        batch = BatchFastPPV(small_social, small_social_index, cache_size=8)
        batch.query_many([5])  # populate the cache
        count = 0

        def tick(position, state):
            nonlocal count
            count += 1

        (result,) = batch.query_many([5], on_iteration=tick)
        assert count == result.iterations + 1

    def test_single_query_callback(self, small_social, small_social_index):
        batch = BatchFastPPV(small_social, small_social_index)
        states: list[QueryState] = []
        result = batch.query(11, stop=StopAfterIterations(1),
                             on_iteration=states.append)
        assert len(states) == result.iterations + 1
