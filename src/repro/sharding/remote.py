"""The router side of sharded serving: fleet + remote stores.

Why fetch, not partial-score merge
----------------------------------
The repo's acceptance bar for every serving layer is **bitwise
equality** with the engine it fronts.  Summing per-shard partial score
vectors at a router cannot meet that bar: float addition is not
associative, the per-hub delta gate ``alpha * mass > delta`` is not
linear in partial masses, and the per-round ``l1_error`` is a pairwise
``np.sum``.  So instead of moving the *computation* to the shards, the
router moves the *data* from them: it runs the ordinary
:class:`~repro.storage.disk_engine.DiskFastPPV` /
``BatchDiskFastPPV`` kernels locally over two remote stores —
:class:`ShardedPPVStore` and :class:`ShardedGraphStore` — that fetch
hub prime PPVs and cluster adjacency from the owning shard processes
on demand.  JSON round-trips 64-bit floats exactly (the wire suites
already rely on this), so a fetched payload is bit-identical to a
local disk read; identical kernel + identical data + identical
operation order = bitwise-identical results, certified top-k included.
The shards hold the index — the O(hubs x reachable-nodes) structure
that dominates memory — while the router holds only bounded caches,
so capacity scales with the shard count.

Each shard's hub fan-out per ``get_many`` is **pipelined across
shards**: one ``fetch_hubs`` request per owning shard goes out on that
shard's own connection before any reply is read, so shards serve their
slices concurrently.

Failure semantics: a dead shard surfaces as a prompt
:class:`~repro.server.protocol.ShardUnavailableError` (after one
reconnect attempt), which the TCP front-end maps to the structured
``shard_unavailable`` error — never a hang.  Fault sites
``router.dispatch`` / ``router.connect`` / ``shard.recv`` (see
:mod:`repro.faults`) cover the dispatch, connection and reply paths.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from repro.core.prime import PrimePPV
from repro.obs.trace import current_span
from repro.server import protocol
from repro.server.client import (
    ClientTimeout,
    PPVClient,
    ProtocolViolation,
    ServerError,
)
from repro.server.protocol import ShardUnavailableError

DEFAULT_HUB_CACHE = 256
"""Hub prime-PPV entries the router keeps resident (LRU)."""

DEFAULT_CLUSTER_BUDGET = 8
"""Cluster adjacency segments the router keeps resident (LRU).  Scores
are residency-independent, so this only tunes refetch traffic."""

_TRANSPORT_ERRORS = (ConnectionError, OSError, ClientTimeout, ProtocolViolation)


class ShardFleet:
    """One lazily-connected :class:`PPVClient` per shard, with retry.

    Shard ``s``'s address is ``addresses[s]``.  Requests fan out
    pipelined (send everything, then read everything); a transport
    failure triggers exactly one reconnect-and-retry before the shard
    is declared unavailable.  Not thread-safe on its own — the owning
    stores serialise access.
    """

    def __init__(
        self,
        addresses: Sequence[tuple],
        *,
        timeout: float | None = 30.0,
        fault_plan=None,
    ) -> None:
        if not addresses:
            raise ValueError("a shard fleet needs at least one address")
        self.addresses = [(str(host), int(port)) for host, port in addresses]
        self.timeout = timeout
        self.fault_plan = fault_plan
        self._clients: dict[int, PPVClient] = {}

    @property
    def num_shards(self) -> int:
        return len(self.addresses)

    def close(self) -> None:
        """Close every open shard connection (idempotent)."""
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    def __enter__(self) -> "ShardFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def _connect(self, shard: int) -> PPVClient:
        host, port = self.addresses[shard]
        if self.fault_plan is not None:
            self.fault_plan.fire("router.connect", shard=shard, port=port)
        try:
            client = PPVClient(host, port, timeout=self.timeout)
        except _TRANSPORT_ERRORS as error:
            raise ShardUnavailableError(
                shard, f"cannot connect to {host}:{port}: {error}"
            ) from None
        self._clients[shard] = client
        return client

    def _client(self, shard: int) -> PPVClient:
        client = self._clients.get(shard)
        if client is None:
            client = self._connect(shard)
        return client

    def _drop(self, shard: int) -> None:
        client = self._clients.pop(shard, None)
        if client is not None:
            client.close()

    def _retry(self, shard: int, body: dict) -> dict:
        """One full reconnect + round-trip after a transport failure."""
        self._drop(shard)
        try:
            client = self._connect(shard)  # raises ShardUnavailableError
        except _TRANSPORT_ERRORS as error:
            # e.g. an injected ``router.connect`` fault: same verdict as
            # a refused connection.
            raise ShardUnavailableError(
                shard, f"cannot reconnect: {error}"
            ) from None
        try:
            prepared, request_id = client._prepare(dict(body))
            client.send_raw(protocol.encode(prepared))
            if self.fault_plan is not None:
                self.fault_plan.fire("shard.recv", shard=shard)
            return client._unwrap(client._read_reply(request_id))
        except _TRANSPORT_ERRORS as error:
            self._drop(shard)
            raise ShardUnavailableError(
                shard, f"lost the shard after reconnecting: {error}"
            ) from None

    def request_many(self, bodies: "dict[int, dict]") -> "dict[int, dict]":
        """Fan one request per shard out, pipelined; return per-shard
        results.

        Raises
        ------
        ShardUnavailableError
            A shard's connection failed and one reconnect + retry
            failed too.
        ServerError
            A shard answered with a structured error (bad request —
            not a liveness problem).
        """
        # When a traced batch/kernel span is active on this thread,
        # each shard's round-trip gets a child span and the request
        # carries the child's context so the shard-side server joins
        # the same trace.  Untraced path: one thread-local read, no
        # body copies.
        parent = current_span()
        spans: dict[int, object] = {}
        sent = bodies
        if parent is not None:
            sent = {}
            for shard, body in bodies.items():
                span = parent.child(
                    "shard." + str(body.get("verb", "query")), shard=shard
                )
                spans[shard] = span
                body = dict(body)
                body["trace"] = protocol.trace_field(span.context())
                sent[shard] = body
        try:
            results: dict[int, dict] = {}
            pending: list[tuple[int, object]] = []
            failed: list[int] = []
            for shard, body in sent.items():
                if self.fault_plan is not None:
                    self.fault_plan.fire(
                        "router.dispatch",
                        shard=shard,
                        verb=body.get("verb", "query"),
                    )
                try:
                    client = self._client(shard)
                    prepared, request_id = client._prepare(dict(body))
                    client.send_raw(protocol.encode(prepared))
                    pending.append((shard, request_id))
                except _TRANSPORT_ERRORS:
                    failed.append(shard)
            for shard, request_id in pending:
                client = self._clients[shard]
                try:
                    if self.fault_plan is not None:
                        self.fault_plan.fire("shard.recv", shard=shard)
                    results[shard] = client._unwrap(
                        client._read_reply(request_id)
                    )
                except _TRANSPORT_ERRORS:
                    failed.append(shard)
            for shard in failed:
                span = spans.get(shard)
                if span is not None:
                    span.set(retried=True)
                results[shard] = self._retry(shard, sent[shard])
            return results
        finally:
            for span in spans.values():
                span.end()

    def request(self, shard: int, body: dict) -> dict:
        """One shard's round-trip with the fleet's retry semantics."""
        return self.request_many({shard: body})[shard]

    def request_all(self, body: dict) -> "dict[int, dict]":
        """The same request to every shard, pipelined."""
        return self.request_many(
            {shard: dict(body) for shard in range(self.num_shards)}
        )


def _entry_from_payload(hub: int, payload: dict) -> PrimePPV:
    """Decode one wire hub entry back into a :class:`PrimePPV`.

    JSON serialises int64/float64 exactly (Python floats print
    shortest-round-trip), so the arrays rebuilt here are bit-identical
    to the shard's local disk read.
    """
    return PrimePPV(
        source=int(hub),
        nodes=np.asarray(payload["nodes"], dtype=np.int64),
        scores=np.asarray(payload["scores"], dtype=np.float64),
        border_hubs=np.asarray(payload["border_hubs"], dtype=np.int64),
        border_masses=np.asarray(payload["border_masses"], dtype=np.float64),
    )


class ShardedPPVStore:
    """A :class:`~repro.storage.ppv_store.DiskPPVStore` look-alike that
    fetches hub entries from their owning shards.

    ``get_many`` groups wanted hubs by shard and issues one pipelined
    ``fetch_hubs`` per shard; a bounded LRU keeps hot entries resident
    so popular hubs are not refetched per batch.  The ``reads`` counter
    counts hubs actually fetched over the wire (cache hits are free) —
    per-query ``hub_reads`` accounting is computed upstream from
    *requested* fetches and is cache-independent, exactly as with the
    disk store.  Per-shard fetch counts (:attr:`shard_fetches`) feed
    the router's balance reporting.
    """

    def __init__(
        self,
        fleet: ShardFleet,
        *,
        alpha: float,
        epsilon: float,
        clip: float,
        num_nodes: int,
        hub_shards: "dict[int, int]",
        cache_hubs: int = DEFAULT_HUB_CACHE,
        lock: "threading.Lock | None" = None,
    ) -> None:
        self.fleet = fleet
        self.alpha = alpha
        self.epsilon = epsilon
        self.clip = clip
        self.num_nodes = num_nodes
        self.hub_shards = {int(h): int(s) for h, s in hub_shards.items()}
        self.cache_hubs = max(0, int(cache_hubs))
        self.reads = 0
        self.shard_fetches = [0] * fleet.num_shards
        self._cache: "dict[int, PrimePPV]" = {}  # LRU: most recent last
        self._lock = lock if lock is not None else threading.Lock()
        hub_mask = np.zeros(num_nodes, dtype=bool)
        hub_mask[list(self.hub_shards)] = True
        self.hub_mask = hub_mask
        self._hub_list: "list[bool] | None" = None

    def __contains__(self, hub: int) -> bool:
        return int(hub) in self.hub_shards

    @property
    def hubs(self) -> np.ndarray:
        """Sorted hub ids across every shard."""
        return np.asarray(sorted(self.hub_shards), dtype=np.int64)

    @property
    def hub_list(self) -> list[bool]:
        if self._hub_list is None:
            self._hub_list = self.hub_mask.tolist()
        return self._hub_list

    def close(self) -> None:
        """Drop the cache (the fleet is owned by the engine)."""
        self._cache.clear()

    def _remember(self, hub: int, entry: PrimePPV) -> None:
        if self.cache_hubs == 0:
            return
        self._cache.pop(hub, None)
        while len(self._cache) >= self.cache_hubs:
            del self._cache[next(iter(self._cache))]
        self._cache[hub] = entry

    def get_many(self, hubs) -> "dict[int, PrimePPV]":
        """Fetch several hubs, one pipelined request per owning shard."""
        unique = sorted({int(hub) for hub in hubs})
        for hub in unique:
            if hub not in self.hub_shards:
                raise KeyError(hub)
        with self._lock:
            out: dict[int, PrimePPV] = {}
            wanted: dict[int, list[int]] = {}
            for hub in unique:
                entry = self._cache.get(hub)
                if entry is not None:
                    del self._cache[hub]  # re-insert as most recent
                    self._cache[hub] = entry
                    out[hub] = entry
                else:
                    wanted.setdefault(self.hub_shards[hub], []).append(hub)
            if wanted:
                replies = self.fleet.request_many(
                    {
                        shard: {"verb": "fetch_hubs", "hubs": shard_hubs}
                        for shard, shard_hubs in wanted.items()
                    }
                )
                for shard, shard_hubs in wanted.items():
                    payloads = replies[shard]
                    self.shard_fetches[shard] += len(shard_hubs)
                    self.reads += len(shard_hubs)
                    for hub in shard_hubs:
                        entry = _entry_from_payload(
                            hub, payloads[str(hub)]
                        )
                        self._remember(hub, entry)
                        out[hub] = entry
            return out

    def get(self, hub: int) -> PrimePPV:
        """Fetch one hub's prime PPV (through the cache)."""
        return self.get_many([hub])[int(hub)]


class ShardedGraphStore:
    """A :class:`~repro.storage.disk_engine.DiskGraphStore` look-alike
    that fetches cluster adjacency from the owning shards.

    Labels and ``num_clusters`` are global (so ``cluster_of`` answers
    for every node, exactly like a local store); only the adjacency
    payloads are remote, cached under the same LRU residency model —
    ``faults`` counts swap-ins, and the cluster-draining push's
    schedule (hence every score) is residency-independent.
    """

    def __init__(
        self,
        fleet: ShardFleet,
        *,
        labels: np.ndarray,
        cluster_shards: Sequence[int],
        memory_budget: int = DEFAULT_CLUSTER_BUDGET,
        lock: "threading.Lock | None" = None,
    ) -> None:
        if memory_budget < 1:
            raise ValueError("memory_budget must be at least one cluster")
        self.fleet = fleet
        self.labels = np.asarray(labels, dtype=np.int64)
        self.num_nodes = int(self.labels.size)
        self.cluster_shards = [int(shard) for shard in cluster_shards]
        self.num_clusters = len(self.cluster_shards)
        self.memory_budget = memory_budget
        self.faults = 0
        self.shard_fetches = [0] * fleet.num_shards
        self._labels_list: "list[int] | None" = None
        self._cache: "dict[int, tuple[dict, dict]]" = {}
        self._lock = lock if lock is not None else threading.Lock()

    def cluster_of(self, node: int) -> int:
        return int(self.labels[node])

    @property
    def labels_list(self) -> list[int]:
        if self._labels_list is None:
            self._labels_list = self.labels.tolist()
        return self._labels_list

    def close(self) -> None:
        self._cache.clear()

    def _load_cluster(self, cluster: int) -> dict:
        shard = self.cluster_shards[cluster]
        with self._lock:
            payload = self.fleet.request(
                shard, {"verb": "fetch_cluster", "cluster": int(cluster)}
            )
            self.shard_fetches[shard] += 1
        nodes = payload["nodes"]
        offsets = payload["offsets"]
        targets = np.asarray(payload["targets"], dtype=np.int64)
        probs = np.asarray(payload["probs"], dtype=np.float64)
        adjacency = {}
        for position, node in enumerate(nodes):
            start, end = offsets[position], offsets[position + 1]
            adjacency[int(node)] = (targets[start:end], probs[start:end])
        return adjacency

    def resident_cluster(self, cluster: int) -> tuple[dict, dict]:
        """Same LRU contract as the local store (swap in, bump
        :attr:`faults`, most recent last)."""
        entry = self._cache.get(cluster)
        if entry is None:
            self.faults += 1
            entry = (self._load_cluster(cluster), {})
            while len(self._cache) >= self.memory_budget:
                del self._cache[next(iter(self._cache))]
        else:
            del self._cache[cluster]
        self._cache[cluster] = entry
        return entry

    def out_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        return self.resident_cluster(self.cluster_of(node))[0][node]

    def out_neighbors(self, node: int) -> np.ndarray:
        return self.out_edges(node)[0]
