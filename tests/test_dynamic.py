"""Tests for incremental index maintenance on dynamic graphs."""

import numpy as np
import pytest

from repro import FastPPV, StopAfterIterations, build_index, select_hubs
from repro.core.dynamic import (
    add_edges,
    affected_hubs,
    changed_sources,
    rebuild_index,
    remove_edges,
    update_index,
)
from repro.core.exact import exact_ppv
from repro.graph import from_edges


class TestGraphEditing:
    def test_add_edges(self, fig1_graph):
        new = add_edges(fig1_graph, [(2, 0)])
        assert new.has_edge(2, 0)
        assert new.num_edges == fig1_graph.num_edges + 1

    def test_add_duplicate_is_noop(self, fig1_graph):
        new = add_edges(fig1_graph, [(0, 1)])
        assert new == fig1_graph

    def test_remove_edges(self, fig1_graph):
        new = remove_edges(fig1_graph, [(0, 1)])
        assert not new.has_edge(0, 1)
        assert new.num_edges == fig1_graph.num_edges - 1

    def test_remove_missing_is_noop(self, fig1_graph):
        assert remove_edges(fig1_graph, [(7, 0)]) == fig1_graph

    def test_changed_sources(self, fig1_graph):
        new = add_edges(fig1_graph, [(2, 0), (4, 0)])
        assert changed_sources(fig1_graph, new).tolist() == [2, 4]

    def test_changed_sources_requires_same_n(self, fig1_graph):
        other = from_edges([(0, 1)], num_nodes=2)
        with pytest.raises(ValueError):
            changed_sources(fig1_graph, other)


class TestAffectedHubs:
    def test_border_hub_change_does_not_affect(self, fig1_graph):
        # Changing out-edges of a *border* hub leaves other hubs' prime
        # PPVs untouched (borders are never expanded).
        index = build_index(fig1_graph, [1, 3, 5], epsilon=1e-12, clip=0.0)
        # Hub 3 (d) is a border of hub 1 (b); check that a change rooted
        # at node 3 does not invalidate hub 1... it *does* invalidate
        # hub 3 itself (3 is its own source).
        affected = affected_hubs(index, np.array([3]))
        assert affected.tolist() == [3]

    def test_interior_change_affects(self, fig1_graph):
        index = build_index(fig1_graph, [1, 3, 5], epsilon=1e-12, clip=0.0)
        # Node 6 (g) is interior to hub 5 (f)'s prime subgraph.
        affected = affected_hubs(index, np.array([6]))
        assert 5 in affected.tolist()


class TestUpdateIndex:
    @pytest.mark.parametrize(
        "edits",
        [
            [(2, 0)],
            [(4, 0), (4, 3)],
            [(6, 2)],
        ],
    )
    def test_incremental_equals_rebuild_after_add(self, fig1_graph, edits):
        index = build_index(fig1_graph, [1, 3, 5], epsilon=1e-12, clip=0.0)
        new_graph = add_edges(fig1_graph, edits)
        incremental, recomputed = update_index(fig1_graph, new_graph, index)
        rebuilt = rebuild_index(new_graph, index)
        assert recomputed <= index.num_hubs
        for hub in rebuilt.entries:
            a = incremental.entries[hub]
            b = rebuilt.entries[hub]
            np.testing.assert_array_equal(a.nodes, b.nodes)
            np.testing.assert_allclose(a.scores, b.scores, atol=1e-12)
            np.testing.assert_array_equal(a.border_hubs, b.border_hubs)
            np.testing.assert_allclose(a.border_masses, b.border_masses, atol=1e-12)

    def test_incremental_equals_rebuild_after_remove(self, fig1_graph):
        index = build_index(fig1_graph, [1, 3, 5], epsilon=1e-12, clip=0.0)
        new_graph = remove_edges(fig1_graph, [(0, 7)])
        incremental, _ = update_index(fig1_graph, new_graph, index)
        rebuilt = rebuild_index(new_graph, index)
        for hub in rebuilt.entries:
            np.testing.assert_allclose(
                incremental.entries[hub].scores,
                rebuilt.entries[hub].scores,
                atol=1e-12,
            )

    def test_random_batch_on_social_graph(self, small_social):
        hubs = select_hubs(small_social, 25)
        index = build_index(small_social, hubs, clip=0.0)
        rng = np.random.default_rng(3)
        additions = [
            (int(rng.integers(small_social.num_nodes)),
             int(rng.integers(small_social.num_nodes)))
            for _ in range(8)
        ]
        additions = [(s, d) for s, d in additions if s != d]
        new_graph = add_edges(small_social, additions)
        incremental, recomputed = update_index(small_social, new_graph, index)
        rebuilt = rebuild_index(new_graph, index)
        assert recomputed < index.num_hubs  # most hubs untouched
        for hub in rebuilt.entries:
            np.testing.assert_allclose(
                incremental.entries[hub].scores,
                rebuilt.entries[hub].scores,
                atol=1e-10,
            )

    def test_queries_correct_after_update(self, fig1_graph):
        index = build_index(fig1_graph, [1, 3, 5], epsilon=1e-12, clip=0.0)
        new_graph = add_edges(fig1_graph, [(2, 0)])  # creates a cycle
        updated, _ = update_index(fig1_graph, new_graph, index)
        engine = FastPPV(new_graph, updated, delta=0.0)
        result = engine.query(0, stop=StopAfterIterations(60))
        expected = exact_ppv(new_graph, 0)
        np.testing.assert_allclose(result.scores, expected, atol=1e-8)

    def test_untouched_entries_shared(self, small_social):
        # Unaffected entries must be reused by reference, not recomputed.
        hubs = select_hubs(small_social, 25)
        index = build_index(small_social, hubs)
        new_graph = add_edges(small_social, [(0, 99)])
        updated, recomputed = update_index(small_social, new_graph, index)
        shared = sum(
            1
            for hub in index.entries
            if updated.entries[hub] is index.entries[hub]
        )
        assert shared == index.num_hubs - recomputed
