"""Figs. 5-7: FastPPV vs HubRankP vs MonteCarlo under accuracy-moderated
configurations — accuracy (Fig. 6), online time, offline space/time
(Fig. 7), plus the supplementary work-unit comparison.
"""

import pytest

from benchmarks.common import BENCH_QUERIES, BENCH_SCALE, emit
from repro import FastPPV, StopAfterIterations, build_index, select_hubs
from repro.experiments import CONFIGS, livejournal_graph
from repro.experiments.fig06_07_baselines import (
    fig5_table,
    fig6_table,
    fig7_tables,
    fig7_work_table,
    run_baseline_comparison,
)


@pytest.fixture(scope="module")
def comparison():
    return run_baseline_comparison(scale=BENCH_SCALE, num_queries=BENCH_QUERIES)


def test_fig06_07_baseline_comparison(benchmark, comparison):
    online, space, offline = fig7_tables(comparison)
    emit(
        "fig05_configs",
        fig5_table(),
    )
    emit(
        "fig06_accuracy",
        fig6_table(comparison),
    )
    emit("fig07_costs", online, space, offline, fig7_work_table(comparison))

    # Shape assertions (the paper's qualitative claims).
    for name, outcomes in comparison.items():
        fastppv, hubrank, montecarlo = outcomes
        # FastPPV is faster than MonteCarlo at similar-or-better accuracy.
        assert fastppv.online_ms_per_query < montecarlo.online_ms_per_query
        # FastPPV offline precomputation beats both baselines.
        assert fastppv.offline_seconds < montecarlo.offline_seconds
        del hubrank, name

    # Representative online kernel for the timing record: one FastPPV
    # query at config III's parameters.
    config = CONFIGS["III"]
    graph = livejournal_graph(scale=BENCH_SCALE)
    hubs = select_hubs(graph, config.num_hubs)
    index = build_index(graph, hubs)
    engine = FastPPV(graph, index, delta=config.fastppv_delta, online_epsilon=1e-6)
    stop = StopAfterIterations(config.fastppv_eta)
    benchmark(lambda: engine.query(17, stop=stop))
