"""The serving layer: one façade over every FastPPV query engine.

PRs 1-2 grew four engines (``FastPPV``, ``BatchFastPPV``,
``DiskFastPPV``, ``BatchDiskFastPPV``), each with its own workload
spelling.  This package puts them behind one backend-agnostic API:

* :class:`PPVService` — the façade.  ``PPVService.open(index, graph=g)``
  or ``PPVService.open(ppv_store, graph_store=s)`` resolves a backend
  from the registry (``"memory"``, ``"disk"``) and serves
  :class:`QuerySpec` requests on it: ``query`` (sync), ``submit``
  (a :class:`QueryHandle` future), ``query_many`` (ordered burst),
  ``stream`` (per-iteration :class:`QuerySnapshot` delivery).
* A **coalescing micro-batch scheduler**: concurrent submissions are
  admitted into one queue and drained as engine batches, so independent
  clients share the batch engines' amortisation — on disk, two
  concurrent callers share cluster residency instead of thrashing
  faults (:mod:`repro.serving.scheduler`).
* A **popularity-aware cache**: completed results are cached with hit
  counters feeding eviction, shared by both backends and invalidated
  whenever the index state changes (:mod:`repro.serving.cache`).
* The **query-family registry** (:mod:`repro.serving.families`): every
  request is a family-tagged spec (``ppv``, ``top_k``, ``hitting``,
  ``reachability``, or a registered extension), and the
  :class:`QueryFamily` descriptor gives the stack its validation,
  batching, caching, and wire codec — so new analyses get
  coalescing/caching/network for free
  (:func:`~repro.serving.families.register_family`).
* The :class:`~repro.serving.engines.Engine` protocol + registry, the
  extension point for further backends
  (:func:`~repro.serving.engines.register_backend`).

Quickstart::

    from repro.serving import PPVService, QuerySpec

    with PPVService.open(index, graph=graph) as service:
        result = service.query(QuerySpec(7))                  # eta = 2
        topk = service.query(QuerySpec(7, top_k=10))          # certified
        mixed = service.query(QuerySpec((3, 9), weights=(2, 1)))
        for snapshot in service.stream(QuerySpec(7, top_k=10)):
            if snapshot.certified:
                break                                          # anytime!
"""

from repro.serving.cache import PopularityCache
from repro.serving.families import (
    FamilyTask,
    QueryFamily,
    UnsupportedFamilyError,
    available_families,
    register_family,
    resolve_family,
    supported_families,
)
from repro.serving.engines import (
    DiskEngine,
    Engine,
    MemoryEngine,
    available_backends,
    detect_backend,
    register_backend,
    resolve_backend,
)
from repro.serving.scheduler import CoalescingScheduler
from repro.serving.service import LatencyHistogram, PPVService, ServiceStats
from repro.serving.spec import QueryHandle, QuerySnapshot, QuerySpec

__all__ = [
    "PPVService",
    "ServiceStats",
    "QuerySpec",
    "QueryHandle",
    "QuerySnapshot",
    "PopularityCache",
    "CoalescingScheduler",
    "LatencyHistogram",
    "QueryFamily",
    "FamilyTask",
    "UnsupportedFamilyError",
    "register_family",
    "resolve_family",
    "available_families",
    "supported_families",
    "Engine",
    "MemoryEngine",
    "DiskEngine",
    "register_backend",
    "resolve_backend",
    "available_backends",
    "detect_backend",
]
