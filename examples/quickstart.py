"""Quickstart: index a graph, run an incremental PPV query, check accuracy.

Run with:  python examples/quickstart.py
"""

from repro import (
    FastPPV,
    StopAfterIterations,
    build_index,
    exact_ppv,
    select_hubs,
    social_graph,
)
from repro.metrics import evaluate_accuracy


def main() -> None:
    # 1. A graph.  Any DiGraph works; here, a synthetic social network.
    graph = social_graph(num_nodes=2000, seed=42)
    print(f"graph: {graph}")

    # 2. Offline: pick hubs by expected utility (Eq. 7) and precompute
    #    their prime PPVs (Algorithm 1).
    hubs = select_hubs(graph, num_hubs=100)
    index = build_index(graph, hubs)
    print(
        f"index: {index.num_hubs} hubs, "
        f"{index.stats.stored_entries} stored entries, "
        f"{index.stats.megabytes:.2f} MB, "
        f"built in {index.stats.build_seconds:.2f}s"
    )

    # 3. Online: incremental, accuracy-aware query processing (Algorithm 2).
    engine = FastPPV(graph, index)
    query = 123
    result = engine.query(query, stop=StopAfterIterations(2))
    print(f"\nquery node {query}: {result.iterations} iterations, "
          f"{result.seconds * 1000:.1f} ms")
    print("L1 error after each iteration (Eq. 6, no ground truth needed):")
    for level, error in enumerate(result.error_history):
        print(f"  after iteration {level}: {error:.4f}")

    print("\ntop-10 most relevant nodes:")
    for rank, node in enumerate(result.top_k(10), start=1):
        print(f"  {rank:2d}. node {node:5d}  score {result.scores[node]:.5f}")

    # 4. Sanity: compare against the exact PPV.
    exact = exact_ppv(graph, query)
    report = evaluate_accuracy(exact, result.scores)
    print("\naccuracy vs exact PPV (top-10 metrics):")
    for metric, value in report.as_dict().items():
        print(f"  {metric:>13}: {value:.4f}")


if __name__ == "__main__":
    main()
