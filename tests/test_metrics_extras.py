"""Tests for the supplementary ranking metrics."""

import numpy as np
import pytest

from repro.metrics.extras import (
    intersection_similarity,
    ndcg_at_k,
    spearman_footrule,
)


class TestNDCG:
    def test_identical_is_one(self):
        scores = np.array([0.5, 0.3, 0.2, 0.1])
        assert ndcg_at_k(scores, scores.copy(), k=3) == pytest.approx(1.0)

    def test_order_matters(self):
        exact = np.array([0.5, 0.3, 0.2, 0.0])
        swapped = np.array([0.3, 0.5, 0.2, 0.0])  # top two exchanged
        value = ndcg_at_k(exact, swapped, k=3)
        assert 0.9 < value < 1.0

    def test_worst_pick(self):
        exact = np.array([1.0, 0.0, 0.0, 0.0])
        bad = np.array([0.0, 1.0, 1.0, 1.0])
        assert ndcg_at_k(exact, bad, k=1) == pytest.approx(0.0)

    def test_all_zero_exact(self):
        assert ndcg_at_k(np.zeros(4), np.ones(4), k=2) == 1.0

    def test_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b = rng.random(8), rng.random(8)
            assert 0.0 <= ndcg_at_k(a, b, k=5) <= 1.0 + 1e-12


class TestFootrule:
    def test_identical_is_zero(self):
        scores = np.array([0.4, 0.3, 0.2, 0.1])
        assert spearman_footrule(scores, scores.copy(), k=4) == 0.0

    def test_reversal_is_maximal(self):
        exact = np.array([4.0, 3.0, 2.0, 1.0])
        reverse = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_footrule(exact, reverse, k=4) == pytest.approx(1.0)

    def test_single_swap_small(self):
        exact = np.array([4.0, 3.0, 2.0, 1.0])
        swapped = np.array([4.0, 3.0, 1.0, 2.0])
        value = spearman_footrule(exact, swapped, k=4)
        assert 0.0 < value < 0.5

    def test_bounded(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            a, b = rng.random(8), rng.random(8)
            assert 0.0 <= spearman_footrule(a, b, k=5) <= 1.0


class TestIntersectionSimilarity:
    def test_identical_is_one(self):
        scores = np.array([0.4, 0.3, 0.2, 0.1])
        assert intersection_similarity(scores, scores.copy(), k=3) == 1.0

    def test_disjoint_is_zero(self):
        exact = np.array([1.0, 1.0, 0.0, 0.0])
        estimate = np.array([0.0, 0.0, 1.0, 1.0])
        assert intersection_similarity(exact, estimate, k=2) == 0.0

    def test_stricter_than_precision(self):
        # Same set, swapped top two: precision@2 is 1, intersection < 1.
        from repro.metrics import precision_at_k

        exact = np.array([0.5, 0.4, 0.0])
        swapped = np.array([0.4, 0.5, 0.0])
        assert precision_at_k(exact, swapped, k=2) == 1.0
        assert intersection_similarity(exact, swapped, k=2) < 1.0

    def test_bounded(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            a, b = rng.random(8), rng.random(8)
            assert 0.0 <= intersection_similarity(a, b, k=5) <= 1.0
