"""End-to-end behaviour of sharded serving (:mod:`repro.sharding`).

The acceptance bar mirrors the server suite's: results served through a
:class:`ShardRouter` must be **bitwise equal** to the unsharded disk
backend — plain multi-eta queries, certified top-k, weighted multi-node
splices — under eight concurrent clients, at two and three shards.
Plus the partitioner's own contracts, failure semantics (SIGKILL one
shard: structured ``shard_unavailable``, never a hang; survivors and
the front-end keep serving), rolling hot swap across the fleet, and
the router's stats aggregation.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import build_index, select_hubs
from repro.core.query import StopAfterIterations
from repro.server import (
    PPVClient,
    PPVServer,
    ServerConfig,
    ServerError,
    ServerPool,
    protocol,
)
from repro.serving import PPVService, QuerySpec
from repro.serving.engines import available_backends
from repro.serving.service import LatencyHistogram
from repro.sharding import (
    ShardRouter,
    assign_clusters,
    load_shard_map,
    partition_index,
    shard_dir_name,
    shard_service_factory,
)
from repro.storage import (
    DiskGraphStore,
    DiskPPVStore,
    cluster_graph,
    save_index,
)

QUERY_NODES = [3, 7, 11, 19, 23, 42, 57, 99, 123, 222, 301, 388]
TOPK_NODES = [7, 42, 99, 301]


@pytest.fixture(scope="module")
def certifiable_index(small_social):
    """clip=0 so top-k certificates can actually fire."""
    hubs = select_hubs(small_social, num_hubs=40)
    return build_index(small_social, hubs, clip=0.0, epsilon=1e-6)


@pytest.fixture(scope="module")
def sharded_setup(small_social, small_social_index, certifiable_index,
                  tmp_path_factory):
    """Partition roots at 2 and 3 shards, plus the matching unsharded
    disk deployment (same cluster assignment, so the kernels see the
    same segmentation either way)."""
    root = tmp_path_factory.mktemp("sharding")
    assignment = cluster_graph(small_social, 6, seed=1)
    index_path = root / "index.fppv"
    save_index(certifiable_index, index_path)
    index_b_path = root / "index_b.fppv"
    save_index(small_social_index, index_b_path)
    store_dir = root / "clusters"
    DiskGraphStore(small_social, assignment, store_dir)
    parts = {}
    for num_shards in (2, 3):
        part_root = root / f"part{num_shards}"
        partition_index(
            small_social, certifiable_index, num_shards, part_root,
            assignment=assignment,
        )
        parts[num_shards] = part_root
    part_b = root / "part2b"  # a second 2-shard partition, for swaps
    partition_index(
        small_social, small_social_index, 2, part_b, assignment=assignment
    )
    return {
        "root": root,
        "assignment": assignment,
        "index_path": index_path,
        "index_b_path": index_b_path,
        "store_dir": store_dir,
        "parts": parts,
        "part_b": part_b,
    }


def _workload():
    """The specs every equivalence run serves, in order."""
    stop = StopAfterIterations(2)
    specs = [QuerySpec(node, stop=stop) for node in QUERY_NODES]
    specs += [QuerySpec(node, top_k=5) for node in TOPK_NODES]
    specs.append(QuerySpec((3, 9), weights=(2.0, 1.0)))
    return specs


def _reference_payloads(setup, index_path, top=20):
    """The unsharded disk deployment's rendered payloads (bitwise bar)."""
    graph_store = DiskGraphStore.open(setup["store_dir"])
    with PPVService.open(
        str(index_path), backend="disk", graph_store=graph_store,
        delta=0.0, cache_size=0,
    ) as service:
        specs = _workload()
        results = service.query_many(specs)
        return [
            protocol.render_result(spec, result, top=top)
            for spec, result in zip(specs, results)
        ]


# --------------------------------------------------------------------- #
# The offline partitioner


class TestPartitioner:
    def test_assign_clusters_is_lpt(self):
        # Largest first, least-loaded shard, lowest id on ties.
        assert assign_clusters([3, 1, 1, 1], 2) == [0, 1, 1, 1]
        assert assign_clusters([5, 4, 3, 3, 1], 2) == [0, 1, 1, 0, 1]

    def test_assign_clusters_deterministic_and_total(self):
        sizes = [7, 2, 9, 4, 4, 1, 6, 3]
        first = assign_clusters(sizes, 3)
        assert first == assign_clusters(sizes, 3)
        assert len(first) == len(sizes)
        assert set(first) == {0, 1, 2}  # every shard gets work

    def test_assign_clusters_bounds(self):
        with pytest.raises(ValueError):
            assign_clusters([1, 2], 0)
        with pytest.raises(ValueError):
            assign_clusters([1, 2], 3)  # more shards than clusters

    def test_partition_rejects_oversharding(self, small_social,
                                            certifiable_index, tmp_path,
                                            sharded_setup):
        with pytest.raises(ValueError):
            partition_index(
                small_social, certifiable_index, 7, tmp_path / "over",
                assignment=sharded_setup["assignment"],
            )

    def test_manifest_roundtrip_covers_everything(self, sharded_setup,
                                                  certifiable_index):
        for num_shards, part_root in sharded_setup["parts"].items():
            manifest = load_shard_map(part_root)
            assert manifest["num_shards"] == num_shards
            assert manifest["num_nodes"] == 400
            assert len(manifest["shards"]) == num_shards
            hubs: list[int] = []
            clusters: list[int] = []
            nodes = 0
            for shard, entry in enumerate(manifest["shards"]):
                assert entry["shard"] == shard
                assert (part_root / entry["dir"] / "index.fppv").exists()
                hubs.extend(entry["hubs"])
                clusters.extend(entry["clusters"])
                nodes += entry["nodes"]
            # Disjoint, exhaustive: every hub and cluster owned once.
            assert sorted(hubs) == sorted(
                int(h) for h in np.nonzero(certifiable_index.hub_mask)[0]
            )
            assert sorted(clusters) == list(range(manifest["num_clusters"]))
            assert nodes == 400
            # The per-cluster ownership table agrees with the listings.
            for shard, entry in enumerate(manifest["shards"]):
                for cluster in entry["clusters"]:
                    assert manifest["cluster_shards"][cluster] == shard

    def test_shard_dirs_are_ordinary_stores(self, sharded_setup):
        part_root = sharded_setup["parts"][2]
        manifest = load_shard_map(part_root)
        entry = manifest["shards"][0]
        hub = entry["hubs"][0]
        with DiskPPVStore(part_root / entry["dir"] / "index.fppv") as sub:
            with DiskPPVStore(sharded_setup["index_path"]) as full:
                assert sorted(sub.hubs.tolist()) == sorted(entry["hubs"])
                assert sub.num_nodes == full.num_nodes
                # A shard's entry is byte-for-byte the full index's.
                ours, theirs = sub.get(hub), full.get(hub)
                assert np.array_equal(ours.nodes, theirs.nodes)
                assert np.array_equal(ours.scores, theirs.scores)
                assert np.array_equal(ours.border_hubs, theirs.border_hubs)
                assert np.array_equal(
                    ours.border_masses, theirs.border_masses
                )
        graph_store = DiskGraphStore.open(part_root / entry["dir"] / "graph")
        owned = entry["clusters"][0]
        foreign = manifest["shards"][1]["clusters"][0]
        assert graph_store.cluster_arrays(owned)["nodes"].size > 0
        with pytest.raises(ValueError, match="not stored here"):
            graph_store.cluster_arrays(foreign)

    def test_load_shard_map_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_shard_map(tmp_path)
        (tmp_path / "shard_map.json").write_text(
            json.dumps(
                {
                    "version": 1,
                    "num_shards": 1,
                    "shards": [{"shard": 0, "dir": shard_dir_name(0)}],
                }
            )
        )
        with pytest.raises(ValueError):
            load_shard_map(tmp_path)  # named shard dir does not exist

    def test_backends_registered(self):
        backends = available_backends()
        assert "shard" in backends
        assert "sharded" in backends


# --------------------------------------------------------------------- #
# Bitwise equivalence under concurrency (the tentpole's acceptance bar)


class TestShardedEquivalence:
    def _hammer(self, address, per_client_specs, top):
        """One thread per client; returns {client: [result payloads]}."""
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def client_main(client_id: int, specs) -> None:
            try:
                with PPVClient(*address, timeout=60) as client:
                    payloads = []
                    for spec in specs:
                        if spec.top_k is not None:
                            payloads.append(
                                client.query(
                                    spec.nodes[0], top_k=spec.top_k,
                                    budget=spec.top_k_budget, top=top,
                                )
                            )
                        else:
                            nodes = (
                                list(spec.nodes)
                                if spec.is_multi
                                else spec.nodes[0]
                            )
                            kwargs = (
                                {"weights": list(spec.weights)}
                                if spec.is_multi
                                else {}
                            )
                            payloads.append(
                                client.query(nodes, eta=2, top=top, **kwargs)
                            )
                    results[client_id] = payloads
            except BaseException as error:  # pragma: no cover - diagnostics
                errors.append(error)

        threads = [
            threading.Thread(target=client_main, args=(cid, specs))
            for cid, specs in enumerate(per_client_specs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        return results

    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_eight_clients_bitwise_equal_to_unsharded(self, sharded_setup,
                                                      num_shards):
        expected = _reference_payloads(
            sharded_setup, sharded_setup["index_path"]
        )
        specs = _workload()
        with ShardRouter(
            sharded_setup["parts"][num_shards], delta=0.0, cache_size=0
        ) as address:
            results = self._hammer(
                address, [list(specs) for _ in range(8)], top=20
            )
        assert len(results) == 8
        for payloads in results.values():
            # JSON round-trips floats exactly: dict equality is bitwise
            # score equality — certified top-k and splices included.
            assert payloads == expected
        # At least one certificate actually fired (clip=0 index, delta=0)
        # so the certified path is genuinely exercised end to end.
        certified = [p for p in expected if "certified" in p]
        assert len(certified) == len(TOPK_NODES)
        assert any(p["certified"] for p in certified)


# --------------------------------------------------------------------- #
# Role separation on the wire


class TestRoleSeparation:
    def test_shard_refuses_queries_and_serves_fetches(self, sharded_setup):
        part_root = sharded_setup["parts"][2]
        manifest = load_shard_map(part_root)
        entry = manifest["shards"][0]
        pool = ServerPool(
            shard_service_factory(part_root / entry["dir"]),
            workers=1,
            config=ServerConfig(port=0),
        )
        try:
            address = pool.start()
            with PPVClient(*address, timeout=15) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.query(3, eta=2)
                assert excinfo.value.code == protocol.E_INVALID
                assert "shard router" in str(excinfo.value)
                hub = entry["hubs"][0]
                payload = client.fetch_hubs([hub])
                assert str(hub) in payload
                assert payload[str(hub)]["nodes"]
                # Hubs and clusters owned elsewhere are refused, not 404'd
                # into a hang.
                foreign_hub = manifest["shards"][1]["hubs"][0]
                with pytest.raises(ServerError) as excinfo:
                    client.fetch_hubs([foreign_hub])
                assert excinfo.value.code == protocol.E_INVALID
                foreign_cluster = manifest["shards"][1]["clusters"][0]
                with pytest.raises(ServerError) as excinfo:
                    client.fetch_cluster(foreign_cluster)
                assert excinfo.value.code == protocol.E_INVALID
                info = client.shard_info()
                assert info["shard"] == 0
                assert info["num_shards"] == 2
        finally:
            pool.stop()

    def test_plain_server_refuses_fetch_verbs(self, small_social,
                                              small_social_index):
        with PPVService.open(
            small_social_index, graph=small_social
        ) as service:
            server = PPVServer(service)
            with server.background() as address:
                with PPVClient(*address, timeout=15) as client:
                    for call in (
                        lambda: client.fetch_hubs([0]),
                        lambda: client.fetch_cluster(0),
                        lambda: client.shard_info(),
                    ):
                        with pytest.raises(ServerError) as excinfo:
                            call()
                        assert excinfo.value.code == protocol.E_INVALID


# --------------------------------------------------------------------- #
# Failure semantics: SIGKILL one shard


class TestShardKill:
    def test_dead_shard_is_structured_not_a_hang(self, sharded_setup):
        """Kill one shard; traffic that needs it gets ``shard_unavailable``
        promptly, and the router front-end stays responsive."""
        router = ShardRouter(
            sharded_setup["parts"][2], timeout=1.5, delta=0.0,
            cache_size=0, cache_hubs=0, memory_budget=1,
        )
        with router as address:
            manifest = router.manifest
            dead_hub = manifest["shards"][1]["hubs"][0]
            with PPVClient(*address, timeout=60) as client:
                assert client.query(dead_hub, eta=2)["top"]
                router.pools[1].kill_worker(0)
                started = time.monotonic()
                with pytest.raises(ServerError) as excinfo:
                    client.query(dead_hub, eta=2)
                elapsed = time.monotonic() - started
                assert excinfo.value.code == protocol.E_SHARD_UNAVAILABLE
                assert elapsed < 20  # bounded by the fleet timeout, not a hang
                # The connection and the front-end both survive.
                assert client.ping()
                stats = client.stats()
                assert "error" in stats["shards"]
                # A rolling swap cannot complete either — but it fails
                # structurally too.
                with pytest.raises(ServerError) as excinfo:
                    client.swap_index(str(sharded_setup["parts"][2]))
                assert excinfo.value.code == protocol.E_SHARD_UNAVAILABLE

    def test_survivors_keep_serving_after_kill(self, sharded_setup):
        """With router-side residency, queries keep resolving bitwise-
        correct after a shard dies — the fleet degrades, not the data
        it already holds."""
        expected = _reference_payloads(
            sharded_setup, sharded_setup["index_path"]
        )[: len(QUERY_NODES)]
        router = ShardRouter(
            sharded_setup["parts"][2], timeout=1.5, delta=0.0, cache_size=0
        )
        with router as address:
            with PPVClient(*address, timeout=60) as client:
                before = [
                    client.query(node, eta=2, top=20)
                    for node in QUERY_NODES
                ]
                assert before == expected
                router.pools[0].kill_worker(0)
                after = [
                    client.query(node, eta=2, top=20)
                    for node in QUERY_NODES
                ]
                assert after == expected
                assert client.ping()


# --------------------------------------------------------------------- #
# Rolling hot swap across the fleet


class TestRollingSwap:
    def test_swap_rolls_all_shards_and_serves_new_index(self, sharded_setup):
        expected_a = _reference_payloads(
            sharded_setup, sharded_setup["index_path"]
        )
        expected_b = _reference_payloads(
            sharded_setup, sharded_setup["index_b_path"]
        )
        specs = _workload()
        plain = [
            (i, spec.nodes[0])
            for i, spec in enumerate(specs)
            if spec.top_k is None and not spec.is_multi
        ]
        with ShardRouter(
            sharded_setup["parts"][2], delta=0.0, cache_size=0
        ) as address:
            with PPVClient(*address, timeout=60) as client:
                for i, node in plain:
                    assert client.query(node, eta=2, top=20) == expected_a[i]
                reply = client.swap_index(str(sharded_setup["part_b"]))
                assert reply["swapped"] is True
                for i, node in plain:
                    assert client.query(node, eta=2, top=20) == expected_b[i]
                # Swapping back restores the first generation exactly.
                client.swap_index(str(sharded_setup["parts"][2]))
                for i, node in plain:
                    assert client.query(node, eta=2, top=20) == expected_a[i]

    def test_swap_refuses_mismatched_shard_count(self, sharded_setup):
        with ShardRouter(
            sharded_setup["parts"][2], delta=0.0, cache_size=0
        ) as address:
            with PPVClient(*address, timeout=60) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.swap_index(str(sharded_setup["parts"][3]))
                assert excinfo.value.code == protocol.E_INVALID
                # Still serving the original partition afterwards.
                assert client.query(QUERY_NODES[0], eta=2)["top"]


# --------------------------------------------------------------------- #
# Stats aggregation


class TestStatsAggregation:
    def test_latency_histogram_merge(self):
        first, second = LatencyHistogram(), LatencyHistogram()
        first.record(0.001)
        first.record(0.2)
        second.record(0.001)
        merged = LatencyHistogram.merge(
            [first.snapshot(), second.snapshot()]
        )
        assert merged["count"] == 3
        assert sum(merged["counts"]) == 3
        assert merged["total_seconds"] == pytest.approx(0.202)
        assert merged["bounds"] == first.snapshot()["bounds"]

    def test_latency_histogram_merge_empty_and_mismatched(self):
        empty = LatencyHistogram.merge([])
        assert empty["count"] == 0
        assert sum(empty["counts"]) == 0
        odd = LatencyHistogram(bounds=(0.5, 1.0)).snapshot()
        with pytest.raises(ValueError, match="different"):
            LatencyHistogram.merge([LatencyHistogram().snapshot(), odd])

    def test_router_stats_aggregate_the_fleet(self, sharded_setup):
        with ShardRouter(
            sharded_setup["parts"][2], delta=0.0, cache_size=0
        ) as address:
            with PPVClient(*address, timeout=60) as client:
                for node in QUERY_NODES:
                    client.query(node, eta=2)
                stats = client.stats()
        shards = stats["shards"]
        assert shards["num_shards"] == 2
        assert len(shards["per_shard"]) == 2
        total_fetches = 0
        for shard, entry in enumerate(shards["per_shard"]):
            assert entry["shard"] == shard
            assert entry["worker"]["index"] == 0
            assert entry["requests_total"] >= 1
            assert entry["latency"]["count"] == sum(entry["latency"]["counts"])
            total_fetches += entry["hub_fetches"] + entry["cluster_fetches"]
        assert total_fetches > 0
        merged = shards["latency"]
        assert merged["count"] == sum(
            entry["latency"]["count"] for entry in shards["per_shard"]
        )
        assert shards["fetch_balance"] >= 1.0
        # The router's own serving stats ride alongside, unchanged.
        assert stats["service"]["latency"]["count"] >= len(QUERY_NODES)
