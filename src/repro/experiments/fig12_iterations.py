"""Fig. 12: incremental online processing — the eta sweep.

The anytime property in one exhibit: more iterations cost more time and
buy more accuracy, with sharply diminishing returns (Theorem 2's
exponential decay).  Uses a single prebuilt index; only the stopping
condition varies, demonstrating that the accuracy/time trade-off is a
pure *query-time* knob (no offline re-execution — the property the paper
contrasts against all baselines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.index import PPVIndex
from repro.experiments.report import Table
from repro.experiments.runner import MethodOutcome, run_fastppv
from repro.experiments.workloads import Workload
from repro.graph.digraph import DiGraph


@dataclass
class IterationSweepPoint:
    """Results at one iteration budget."""

    eta: int
    outcome: MethodOutcome


def run_iteration_sweep(
    graph: DiGraph,
    workload: Workload,
    index: PPVIndex,
    etas: Sequence[int] = (0, 1, 2),
) -> list[IterationSweepPoint]:
    """Score the workload once per eta over a shared index."""
    return [
        IterationSweepPoint(
            eta=eta,
            outcome=run_fastppv(
                graph, workload, num_hubs=index.num_hubs, eta=eta, index=index
            ),
        )
        for eta in etas
    ]


def fig12_table(points: list[IterationSweepPoint], dataset: str) -> Table:
    """Accuracy and time per iteration budget (Fig. 12)."""
    table = Table(
        title=f"Fig. 12 ({dataset}) — incremental processing by eta",
        headers=["eta", "Kendall", "Precision", "RAG", "L1 sim", "Time (ms)"],
    )
    for point in points:
        accuracy = point.outcome.accuracy
        table.add_row(
            point.eta,
            accuracy.kendall,
            accuracy.precision,
            accuracy.rag,
            accuracy.l1_similarity,
            point.outcome.online_ms_per_query,
        )
    return table
