"""A small synchronous client for the FastPPV TCP protocol.

One :class:`PPVClient` wraps one connection.  It is deliberately plain
— blocking socket I/O, one request/response at a time — because its
consumers are tests, benchmarks and examples that want many independent
*connections* (one client per thread) rather than a multiplexed one;
the server coalesces across connections anyway.

    from repro.server import PPVClient

    with PPVClient(host, port) as client:
        result = client.query(42, eta=2)
        topk = client.query(42, top_k=10)
        for frame in client.stream(42, top_k=10):
            if frame.get("certified"):
                break
        print(client.stats()["server"]["requests_total"])
"""

from __future__ import annotations

import json
import socket
from typing import Iterator, Sequence

from repro.obs.trace import default_tracer
from repro.server import protocol


class ServerError(RuntimeError):
    """A structured error reply (``ok: false``) from the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ProtocolViolation(RuntimeError):
    """The peer broke the wire protocol (not a structured error)."""


class ClientTimeout(TimeoutError):
    """A connect or reply deadline expired.

    After a *read* timeout the connection is unusable — the reply may
    still arrive and would be misread as the answer to the next request
    — so the client marks itself broken and every further request
    raises.  Reconnect with a fresh :class:`PPVClient`.
    """


class PPVClient:
    """One connection to a :class:`~repro.server.PPVServer`.

    Not thread-safe: share nothing, or give each thread its own client.

    Parameters
    ----------
    timeout:
        Read/write deadline in seconds (``None``: block forever).  A
        hung or dead server surfaces as :class:`ClientTimeout` instead
        of blocking ``query()`` indefinitely.
    connect_timeout:
        Deadline for establishing the connection; defaults to
        ``timeout``.  A refused or unreachable server raises the usual
        ``ConnectionError``/``OSError``; a silent one raises
        :class:`ClientTimeout`.
    fault_plan:
        Tests only: a :class:`repro.faults.FaultPlan` with the
        ``client.connect`` / ``client.send`` / ``client.recv`` sites.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 60.0,
        connect_timeout: float | None = None,
        fault_plan=None,
    ) -> None:
        self.fault_plan = fault_plan
        self._timeout = timeout
        self._broken = False
        if connect_timeout is None:
            connect_timeout = timeout
        if fault_plan is not None:
            fault_plan.fire("client.connect", host=host, port=port)
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except socket.timeout:
            raise ClientTimeout(
                f"connect to {host}:{port} timed out "
                f"after {connect_timeout} s"
            ) from None
        self._sock.settimeout(timeout)
        # Request/response over small writes: Nagle + delayed ACK would
        # add tens of milliseconds per round-trip.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        self._closed = False
        # Trace ids of the most recent trace=True query / query_many,
        # for fetching the assembled span tree via trace().
        self.last_trace_id: str | None = None
        self.last_trace_ids: list[str] = []

    # ------------------------------------------------------------------ #
    # Transport

    def __enter__(self) -> "PPVClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def _check_usable(self) -> None:
        if self._broken:
            raise ClientTimeout(
                "connection abandoned after an earlier timeout; "
                "open a fresh PPVClient"
            )

    def send_raw(self, payload: bytes) -> None:
        """Ship raw bytes (protocol tests: malformed/oversized lines)."""
        self._check_usable()
        if self.fault_plan is not None:
            self.fault_plan.fire("client.send")
        try:
            self._sock.sendall(payload)
        except socket.timeout:
            self._broken = True
            raise ClientTimeout(
                f"send stalled for {self._timeout} s"
            ) from None

    def read_message(self) -> dict:
        """Read one response record (whatever its id).

        Raises
        ------
        ClientTimeout
            No reply within the client's ``timeout``; the connection is
            marked broken (see :class:`ClientTimeout`).
        """
        self._check_usable()
        if self.fault_plan is not None:
            self.fault_plan.fire("client.recv")
        try:
            line = self._reader.readline()
        except socket.timeout:
            self._broken = True
            raise ClientTimeout(
                f"no reply within {self._timeout} s"
            ) from None
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            message = json.loads(line)
        except ValueError as error:
            raise ProtocolViolation(f"unparseable reply: {error}") from None
        if not isinstance(message, dict):
            raise ProtocolViolation("reply is not a JSON object")
        return message

    def request(self, body: dict) -> dict:
        """Send one request object and return its success ``result``.

        Fills in ``v`` and ``id`` when absent.  Raises
        :class:`ServerError` on a structured failure reply.
        """
        body, request_id = self._prepare(body)
        self.send_raw(protocol.encode(body))
        message = self._read_reply(request_id)
        return self._unwrap(message)

    def _prepare(self, body: dict) -> tuple[dict, object]:
        body = dict(body)
        body.setdefault("v", protocol.PROTOCOL_VERSION)
        if "id" not in body:
            self._next_id += 1
            body["id"] = self._next_id
        return body, body["id"]

    def _read_reply(self, request_id) -> dict:
        message = self.read_message()
        if message.get("id") != request_id:
            raise ProtocolViolation(
                f"reply for id {message.get('id')!r}, expected {request_id!r}"
            )
        return message

    @staticmethod
    def _unwrap(message: dict) -> dict:
        if message.get("ok"):
            return message.get("result", {})
        error = message.get("error") or {}
        raise ServerError(
            error.get("code", "unknown"), error.get("message", str(message))
        )

    # ------------------------------------------------------------------ #
    # Verbs

    def query(
        self,
        nodes: int | Sequence[int],
        *,
        weights: Sequence[float] | None = None,
        eta: int | None = None,
        target_error: float | None = None,
        time_limit: float | None = None,
        top_k: int | None = None,
        budget: int | None = None,
        top: int | None = None,
        family: str | None = None,
        params: dict | None = None,
        trace: bool = False,
    ) -> dict:
        """Serve one query; returns the result payload (see protocol).

        ``family`` selects the query family (default: ``top_k`` when
        ``top_k`` is given, else ``ppv``); ``params`` carries the
        family's own fields, e.g. ``family="hitting",
        params={"target": 7}``.

        ``trace=True`` opens a ``client.request`` root span and ships
        its context in the request's ``trace`` field; the server (when
        observability-enabled) continues the trace across every hop.
        The trace id lands in :attr:`last_trace_id` — fetch the
        assembled tree with :meth:`trace`.
        """
        body = self._query_body(
            "query", nodes, weights, eta, target_error, time_limit,
            top_k, budget, top, family=family, params=params,
        )
        if not trace:
            return self.request(body)
        span = self._start_trace(body)
        try:
            return self.request(body)
        finally:
            span.end()

    def query_many(
        self,
        nodes_list: Sequence[int | Sequence[int]],
        *,
        window: int = 32,
        eta: int | None = None,
        target_error: float | None = None,
        time_limit: float | None = None,
        top_k: int | None = None,
        budget: int | None = None,
        top: int | None = None,
        family: str | None = None,
        params: dict | None = None,
        trace: bool = False,
    ) -> list[dict]:
        """Serve many queries over this one connection, pipelined.

        Keeps up to ``window`` requests outstanding so consecutive
        queries amortise the round-trip (and coalesce into shared
        engine batches server-side) instead of paying one RTT each.
        Results come back in input order regardless of the completion
        order on the wire.

        A structured error reply raises :class:`ServerError`
        immediately; close the connection afterwards — replies to
        still-outstanding requests are left unread.

        ``trace=True`` gives every query in the burst its own trace
        (ids collected in :attr:`last_trace_ids`, input order); each
        root span ends when its reply arrives.
        """
        if window < 1:
            raise ValueError("window must be at least 1")
        bodies = [
            self._query_body(
                "query", nodes, None, eta, target_error, time_limit,
                top_k, budget, top, family=family, params=params,
            )
            for nodes in nodes_list
        ]
        spans = None
        if trace:
            spans = [self._start_trace(body) for body in bodies]
            self.last_trace_ids = [span.trace_id for span in spans]
        results: list = [None] * len(bodies)
        pending: dict = {}
        sent = 0
        done = 0
        while done < len(bodies):
            while sent < len(bodies) and len(pending) < window:
                body, request_id = self._prepare(bodies[sent])
                pending[request_id] = sent
                self.send_raw(protocol.encode(body))
                sent += 1
            message = self.read_message()
            try:
                position = pending.pop(message.get("id"))
            except KeyError:
                raise ProtocolViolation(
                    f"reply for unknown id {message.get('id')!r}"
                ) from None
            results[position] = self._unwrap(message)
            done += 1
            if spans is not None:
                spans[position].end()
        return results

    def stream(
        self,
        node: int,
        *,
        eta: int | None = None,
        target_error: float | None = None,
        time_limit: float | None = None,
        top_k: int | None = None,
        budget: int | None = None,
        top: int | None = None,
    ) -> Iterator[dict]:
        """Yield per-iteration frames of one streamed query.

        The generator ends after the server's ``done`` record.  Closing
        it early (``break``, ``.close()``) quietly drains the stream's
        remaining records off the socket, so the connection stays
        usable for further requests.
        """
        body = self._query_body(
            "stream", node, None, eta, target_error, time_limit,
            top_k, budget, top,
        )
        body, request_id = self._prepare(body)
        self.send_raw(protocol.encode(body))
        finished = False
        try:
            while True:
                message = self._read_reply(request_id)
                if "frame" in message:
                    yield message["frame"]
                    continue
                finished = True
                self._unwrap(message)  # raises on structured errors
                return
        finally:
            if not finished and not self._closed:
                # Abandoned mid-stream: the terminal record (and any
                # frames before it) are still in flight and would be
                # misread as the reply to the *next* request.
                try:
                    while "frame" in self._read_reply(request_id):
                        pass
                except (ConnectionError, OSError, RuntimeError,
                        ProtocolViolation):
                    pass

    def stats(self) -> dict:
        """Service + server counters of the worker serving us."""
        return self.request({"verb": "stats"})

    def trace(
        self,
        trace_id: str | None = None,
        *,
        limit: int | None = None,
    ) -> dict:
        """Recent trace spans from the serving worker (a shard router
        fans the verb out and merges every shard's spans in).

        ``trace_id`` filters to one trace — typically
        :attr:`last_trace_id` after a ``trace=True`` query.
        """
        body: dict = {"verb": "trace"}
        if trace_id is not None:
            body["trace_id"] = str(trace_id)
        if limit is not None:
            body["limit"] = int(limit)
        return self.request(body)

    def _start_trace(self, body: dict):
        """Open a root span for ``body`` (mutated in place) and record
        its id in :attr:`last_trace_id`."""
        span = default_tracer().start_span(
            "client.request", verb=body.get("verb", "query")
        )
        body["trace"] = protocol.trace_field(span.context())
        self.last_trace_id = span.trace_id
        return span

    def ping(self) -> bool:
        """Round-trip liveness probe."""
        return bool(self.request({"verb": "ping"}).get("pong"))

    def swap_index(self, path: str) -> dict:
        """Hot-swap the serving index from an ``.fppv`` path (or a
        partition root, when talking to a shard router)."""
        return self.request({"verb": "swap_index", "path": str(path)})

    def fetch_hubs(self, hubs: Sequence[int]) -> dict:
        """Shard-internal: raw prime-PPV entries of ``hubs`` (see
        :mod:`repro.sharding`).  Plain servers refuse with ``invalid``."""
        return self.request(
            {"verb": "fetch_hubs", "hubs": [int(hub) for hub in hubs]}
        )

    def fetch_cluster(self, cluster: int) -> dict:
        """Shard-internal: one graph cluster's adjacency arrays."""
        return self.request({"verb": "fetch_cluster", "cluster": int(cluster)})

    def shard_info(self) -> dict:
        """Shard-internal: the serving shard's partition coordinates."""
        return self.request({"verb": "shard_info"})

    def shutdown_server(self) -> None:
        """Ask the serving worker to shut down gracefully."""
        self.request({"verb": "shutdown"})

    @staticmethod
    def _query_body(
        verb, nodes, weights, eta, target_error, time_limit, top_k,
        budget, top, family=None, params=None,
    ) -> dict:
        body: dict = {"verb": verb}
        if family is not None:
            body["family"] = str(family)
        if params:
            # Family parameters travel as top-level request fields (the
            # family's PARAM_NAMES), e.g. {"family": "hitting",
            # "target": 7}.
            body.update(params)
        if isinstance(nodes, (list, tuple)):
            body["nodes"] = [int(n) for n in nodes]
        else:
            body["node"] = int(nodes)
        if weights is not None:
            body["weights"] = [float(w) for w in weights]
        if eta is not None:
            body["eta"] = int(eta)
        if target_error is not None:
            body["target_error"] = float(target_error)
        if time_limit is not None:
            body["time_limit"] = float(time_limit)
        if top_k is not None:
            body["top_k"] = int(top_k)
        if budget is not None:
            body["budget"] = int(budget)
        if top is not None:
            body["top"] = int(top)
        return body
