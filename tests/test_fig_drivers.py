"""Tests for the per-figure experiment drivers (tiny scale).

These validate driver mechanics — row counts, column structure, data
plumbing — not the paper's quantitative claims (the benchmarks assert
those at full scale).
"""

import numpy as np
import pytest

from repro import build_index, select_hubs
from repro.core.hubs import HubPolicy
from repro.experiments import (
    dblp_graph,
    fig5_table,
    fig6_table,
    fig7_tables,
    fig7_work_table,
    fig8_table,
    fig9_table,
    fig10_table,
    fig11_table,
    fig12_table,
    fig13_table,
    fig14_table,
    fig15_table,
    fig16_table,
    livejournal_graph,
    make_workload,
    run_baseline_comparison,
    run_disk_sweep,
    run_hub_sweep,
    run_iteration_sweep,
    run_policy_comparison,
    run_sample_scalability,
    run_snapshot_scalability,
)
from repro.experiments.configs import CONFIGS, Config


@pytest.fixture(scope="module")
def tiny_lj():
    return livejournal_graph(scale=0.08)


@pytest.fixture(scope="module")
def tiny_workload(tiny_lj):
    return make_workload(tiny_lj, num_queries=6, seed=0)


@pytest.fixture(scope="module")
def tiny_index(tiny_lj):
    return build_index(tiny_lj, select_hubs(tiny_lj, 30))


class TestBaselineComparison:
    @pytest.fixture(scope="class")
    def results(self):
        configs = {
            "I": Config(
                name="I", dataset="dblp", num_hubs=20,
                hubrank_push=1e-3, montecarlo_samples=300, fastppv_eta=1,
            ),
            "III": Config(
                name="III", dataset="livejournal", num_hubs=30,
                hubrank_push=1e-3, montecarlo_samples=300, fastppv_eta=2,
            ),
        }
        return run_baseline_comparison(
            scale=0.08, num_queries=5, configs=configs
        )

    def test_three_methods_per_config(self, results):
        for outcomes in results.values():
            assert [o.method for o in outcomes] == [
                "FastPPV", "HubRankP", "MonteCarlo",
            ]

    def test_fig5_covers_default_configs(self):
        table = fig5_table()
        assert table.column("Config") == list(CONFIGS)

    def test_fig6_rows(self, results):
        table = fig6_table(results)
        assert len(table.rows) == 3 * len(results)
        for value in table.column("Precision"):
            assert 0.0 <= value <= 1.0

    def test_fig7_tables(self, results):
        online, space, offline = fig7_tables(results)
        for table in (online, space, offline):
            assert len(table.rows) == len(results)
            assert table.headers == ["Config", "FastPPV", "HubRankP", "MonteCarlo"]

    def test_fig7_work_table(self, results):
        table = fig7_work_table(results)
        for row in table.rows:
            assert all(v > 0 for v in row[1:])


class TestPolicyDriver:
    def test_three_policies(self, tiny_lj, tiny_workload):
        results = run_policy_comparison(tiny_lj, tiny_workload, num_hubs=20)
        assert [r.policy for r in results] == [
            HubPolicy.EXPECTED_UTILITY,
            HubPolicy.PAGERANK,
            HubPolicy.OUT_DEGREE,
        ]
        assert len(fig8_table(results, "x").rows) == 3
        assert len(fig9_table(results, "x").rows) == 3

    def test_random_policy_optional(self, tiny_lj, tiny_workload):
        results = run_policy_comparison(
            tiny_lj, tiny_workload, num_hubs=20, include_random=True
        )
        assert len(results) == 4


class TestHubSweepDriver:
    def test_sweep_rows(self, tiny_lj, tiny_workload):
        points = run_hub_sweep(tiny_lj, tiny_workload, [10, 25])
        assert [p.num_hubs for p in points] == [10, 25]
        assert len(fig10_table(points, "x").rows) == 2
        table11 = fig11_table(points, "x")
        assert table11.column("|H|") == [10, 25]
        for value in table11.column("Total time (s)"):
            assert value > 0


class TestIterationDriver:
    def test_etas(self, tiny_lj, tiny_workload, tiny_index):
        points = run_iteration_sweep(
            tiny_lj, tiny_workload, tiny_index, etas=(0, 2)
        )
        table = fig12_table(points, "x")
        assert table.column("eta") == [0, 2]
        sims = table.column("L1 sim")
        assert sims[1] >= sims[0] - 0.01


class TestScalabilityDriver:
    def test_snapshot_series(self):
        bib = dblp_graph(scale=0.08)
        points = run_snapshot_scalability(
            bib, years=(2002, 2010), num_queries=4
        )
        assert [p.label for p in points] == ["2002", "2010"]
        assert points[0].num_nodes < points[1].num_nodes
        assert len(fig13_table(points, "x").rows) == 2
        assert len(fig14_table(points, "x").rows) == 2
        assert len(fig15_table(points, "x").rows) == 2

    def test_sample_series(self, tiny_lj):
        points = run_sample_scalability(
            tiny_lj, fractions=(0.5, 1.0), num_queries=4
        )
        assert [p.label for p in points] == ["S1", "S2"]
        assert points[0].num_edges < points[1].num_edges


class TestDiskDriver:
    def test_sweep(self, tiny_lj, tiny_index, tmp_path):
        rng = np.random.default_rng(0)
        queries = rng.choice(tiny_lj.num_nodes, size=5, replace=False).tolist()
        points = run_disk_sweep(
            tiny_lj, tiny_index, cluster_counts=(3, 6),
            queries=queries, workdir=str(tmp_path),
        )
        table = fig16_table(points, "x")
        assert table.column("# Clusters") == [3, 6]
        memory = table.column("Memory need (%)")
        assert memory[1] <= memory[0] + 5.0
