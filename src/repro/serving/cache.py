"""Popularity-aware result cache shared by every serving backend.

Promotes the plain LRU that lived inside
:class:`~repro.core.batch.BatchFastPPV` up into the service layer (the
ROADMAP's "cache eviction informed by query popularity" follow-up): each
entry carries a **hit counter**, and eviction removes the entry with the
fewest hits first, breaking ties by least-recent use.  A burst of one-off
queries therefore cannot flush the popular working set the way it would
under pure recency eviction — new entries start at zero hits and are the
first to go unless they prove themselves.

The cache stores defensive copies in both directions (entries are copied
on ``put`` and on every ``get``), so callers can mutate results freely,
and it is invalidated wholesale whenever the service's engine reports a
new cache token (index swap via
:meth:`~repro.serving.PPVService.update_index`, or an in-place index
mutation followed by
:func:`~repro.core.splice.invalidate_splice_cache`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.hitting import HittingEstimate
from repro.core.query import QueryResult
from repro.core.reachability import ReachabilityResult
from repro.core.topk import TopKResult
from repro.storage.disk_engine import DiskQueryResult, DiskTopKResult

DEFAULT_CACHE_SIZE = 256
"""Default capacity of the service-level popularity cache."""


def copy_served(result):
    """Deep-enough copy of any known served result object.

    Covers the four PPV result shapes the engines produce plus the
    ``hitting`` and ``reachability`` family results; the copy shares no
    mutable buffers with the original.
    """
    if isinstance(result, QueryResult):
        return QueryResult(
            query=result.query,
            scores=result.scores.copy(),
            iterations=result.iterations,
            error_history=list(result.error_history),
            hubs_expanded=result.hubs_expanded,
            seconds=result.seconds,
            work_units=result.work_units,
        )
    if isinstance(result, TopKResult):
        return TopKResult(
            nodes=result.nodes.copy(),
            certified=result.certified,
            iterations=result.iterations,
            l1_error=result.l1_error,
            scores=result.scores.copy(),
        )
    if isinstance(result, DiskQueryResult):
        return DiskQueryResult(
            result=copy_served(result.result),
            cluster_faults=result.cluster_faults,
            hub_reads=result.hub_reads,
            truncated=result.truncated,
        )
    if isinstance(result, DiskTopKResult):
        return DiskTopKResult(
            topk=copy_served(result.topk),
            cluster_faults=result.cluster_faults,
            hub_reads=result.hub_reads,
            truncated=result.truncated,
        )
    if isinstance(result, HittingEstimate):
        return HittingEstimate(
            value=result.value,
            remaining_mass=result.remaining_mass,
            iterations=result.iterations,
            history=list(result.history),
        )
    if isinstance(result, ReachabilityResult):
        return ReachabilityResult(
            query=result.query,
            max_length=result.max_length,
            alpha=result.alpha,
            scores=result.scores.copy(),
            truncation_bound=result.truncation_bound,
        )
    raise TypeError(f"unsupported served result type: {type(result)!r}")


@dataclass
class _Entry:
    value: object
    hits: int
    last_used: int


class PopularityCache:
    """Bounded result cache evicting by ``(hits, recency)``.

    Parameters
    ----------
    capacity:
        Maximum entries; 0 disables the cache entirely.

    Notes
    -----
    Thread-safe (the scheduler thread and streaming workers may touch it
    concurrently).  Eviction scans for the minimum ``(hits, last_used)``
    pair — O(capacity) per insert beyond capacity, which is fine at the
    few-hundred-entry scale this cache runs at.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: dict[tuple, _Entry] = {}
        self._clock = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def popularity(self, key: tuple) -> int:
        """Hit count of ``key`` (0 if absent or never hit)."""
        entry = self._entries.get(key)
        return entry.hits if entry is not None else 0

    def get(self, key: tuple):
        """A private copy of the cached result, or ``None`` on a miss.

        A hit bumps the entry's popularity counter and recency stamp.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._clock += 1
            entry.hits += 1
            entry.last_used = self._clock
            self.hits += 1
            return copy_served(entry.value)

    def put(self, key: tuple, value) -> None:
        """Insert a copy of ``value``, evicting the least popular entry
        (ties: least recently used) when over capacity.

        Re-inserting an existing key refreshes its value and recency but
        keeps its earned hit count.
        """
        if self.capacity == 0:
            return
        with self._lock:
            self._clock += 1
            existing = self._entries.get(key)
            if existing is not None:
                existing.value = copy_served(value)
                existing.last_used = self._clock
                return
            self._entries[key] = _Entry(
                value=copy_served(value), hits=0, last_used=self._clock
            )
            while len(self._entries) > self.capacity:
                victim = min(
                    self._entries,
                    key=lambda k: (
                        self._entries[k].hits,
                        self._entries[k].last_used,
                    ),
                )
                del self._entries[victim]
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (hit/miss totals are kept for observability)."""
        with self._lock:
            self._entries.clear()
