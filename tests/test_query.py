"""Unit and convergence tests for the online engine (Algorithm 2)."""

import numpy as np
import pytest

from repro import FastPPV, StopAfterIterations, StopAfterTime, StopAtL1Error, any_of
from repro.core.exact import exact_ppv, exact_ppv_dense_solve
from repro.core.index import build_index
from repro.core.query import QueryState
from repro.core.reachability import brute_force_increment
from tests.conftest import A, ALPHA, FIG3_HUBS


@pytest.fixture(scope="module")
def fig1_engine(fig1_graph):
    index = build_index(fig1_graph, FIG3_HUBS, alpha=ALPHA, epsilon=1e-12, clip=0.0)
    return FastPPV(fig1_graph, index, delta=0.0)


@pytest.fixture(scope="module")
def cyclic_engine(cyclic_graph):
    index = build_index(cyclic_graph, [0, 2], alpha=ALPHA, epsilon=1e-14, clip=0.0)
    return FastPPV(cyclic_graph, index, delta=0.0)


class TestConvergence:
    def test_exact_on_acyclic_example(self, fig1_engine, fig1_graph):
        result = fig1_engine.query(A, stop=StopAfterIterations(10))
        expected = exact_ppv(fig1_graph, A, alpha=ALPHA)
        np.testing.assert_allclose(result.scores, expected, atol=1e-12)

    def test_converges_on_cyclic_graph(self, cyclic_engine, cyclic_graph):
        for query in range(cyclic_graph.num_nodes):
            result = cyclic_engine.query(query, stop=StopAfterIterations(80))
            expected = exact_ppv_dense_solve(cyclic_graph, query, alpha=ALPHA)
            np.testing.assert_allclose(result.scores, expected, atol=1e-8)

    def test_query_at_hub_node(self, cyclic_engine, cyclic_graph):
        # Query is itself a hub: iteration 0 loads from the index and the
        # trivial-tour correction must keep the result exact.
        result = cyclic_engine.query(0, stop=StopAfterIterations(80))
        expected = exact_ppv_dense_solve(cyclic_graph, 0, alpha=ALPHA)
        np.testing.assert_allclose(result.scores, expected, atol=1e-8)

    def test_increment_matches_brute_force(self, fig1_engine, fig1_graph):
        previous = np.zeros(fig1_graph.num_nodes)
        for level in range(3):
            result = fig1_engine.query(A, stop=StopAfterIterations(level))
            increment = result.scores - previous
            expected = brute_force_increment(
                fig1_graph, A, set(FIG3_HUBS), level, max_length=12, alpha=ALPHA
            )
            np.testing.assert_allclose(increment, expected, atol=1e-12)
            previous = result.scores

    def test_social_graph_convergence(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index, delta=0.0)
        expected = exact_ppv(small_social, 11, alpha=small_social_index.alpha)
        result = engine.query(11, stop=StopAfterIterations(30))
        assert np.abs(result.scores - expected).sum() < 0.02


class TestTheorem1Monotonicity:
    def test_scores_monotone_in_iterations(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        previous = None
        for eta in range(4):
            scores = engine.query(7, stop=StopAfterIterations(eta)).scores
            if previous is not None:
                assert np.all(scores >= previous - 1e-15)
            previous = scores

    def test_never_exceeds_exact(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index, delta=0.0)
        exact = exact_ppv(small_social, 3, alpha=small_social_index.alpha)
        result = engine.query(3, stop=StopAfterIterations(5))
        assert np.all(result.scores <= exact + 1e-9)


class TestErrorAccounting:
    def test_error_history_decreasing(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        result = engine.query(5, stop=StopAfterIterations(4))
        history = result.error_history
        assert len(history) == result.iterations + 1
        assert all(b <= a + 1e-12 for a, b in zip(history, history[1:]))

    def test_error_equals_one_minus_mass(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        result = engine.query(5, stop=StopAfterIterations(2))
        assert result.l1_error == pytest.approx(1.0 - result.scores.sum(), abs=1e-12)

    def test_error_matches_true_l1_error(self, small_social, small_social_index):
        # On a dangling-free graph Eq. 6 equals the true L1 error
        # (up to epsilon truncation and delta/clip losses).
        engine = FastPPV(small_social, small_social_index, delta=0.0)
        exact = exact_ppv(small_social, 9, alpha=small_social_index.alpha)
        result = engine.query(9, stop=StopAfterIterations(3))
        true_error = np.abs(exact - result.scores).sum()
        assert result.l1_error == pytest.approx(true_error, abs=1e-2)


class TestStoppingConditions:
    def test_stop_after_iterations(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        assert engine.query(2, stop=StopAfterIterations(0)).iterations == 0
        assert engine.query(2, stop=StopAfterIterations(2)).iterations == 2

    def test_stop_at_l1_error(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index, delta=0.0)
        result = engine.query(2, stop=StopAtL1Error(0.3))
        assert result.l1_error <= 0.3

    def test_stop_after_time_zero_stops_immediately(
        self, small_social, small_social_index
    ):
        engine = FastPPV(small_social, small_social_index)
        result = engine.query(2, stop=StopAfterTime(0.0))
        assert result.iterations == 0

    def test_any_of_composition(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        stop = any_of(StopAtL1Error(1e-9), StopAfterIterations(1))
        result = engine.query(2, stop=stop)
        assert result.iterations <= 1

    def test_default_stop_is_two_iterations(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        assert engine.query(2).iterations == 2

    def test_max_iterations_cap(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index, max_iterations=3)
        result = engine.query(2, stop=StopAtL1Error(0.0))
        assert result.iterations <= 3

    def test_frontier_exhaustion_stops(self, fig1_engine):
        # The acyclic example has maximal hub length 2; asking for 50
        # iterations must terminate after the frontier empties.
        result = fig1_engine.query(A, stop=StopAfterIterations(50))
        assert result.iterations <= 4


class TestDeltaThreshold:
    def test_delta_prunes_hubs(self, small_social, small_social_index):
        eager = FastPPV(small_social, small_social_index, delta=0.0)
        lazy = FastPPV(small_social, small_social_index, delta=0.05)
        q = 13
        assert (
            lazy.query(q, stop=StopAfterIterations(3)).hubs_expanded
            <= eager.query(q, stop=StopAfterIterations(3)).hubs_expanded
        )

    def test_delta_only_reduces_mass(self, small_social, small_social_index):
        eager = FastPPV(small_social, small_social_index, delta=0.0)
        lazy = FastPPV(small_social, small_social_index, delta=0.05)
        q = 13
        assert (
            lazy.query(q, stop=StopAfterIterations(3)).scores.sum()
            <= eager.query(q, stop=StopAfterIterations(3)).scores.sum() + 1e-12
        )

    def test_negative_delta_rejected(self, small_social, small_social_index):
        with pytest.raises(ValueError):
            FastPPV(small_social, small_social_index, delta=-0.1)


class TestQueryResult:
    def test_top_k(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        result = engine.query(4)
        top = result.top_k(10)
        assert top.size == 10
        assert top[0] == 4  # the query node dominates its own PPV
        scores = result.scores[top]
        assert np.all(np.diff(scores) <= 1e-15)

    def test_top_k_exclude_query(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        top = engine.query(4).top_k(10, exclude_query=True)
        assert 4 not in top.tolist()

    def test_on_iteration_callback(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        states: list[QueryState] = []
        engine.query(6, stop=StopAfterIterations(2), on_iteration=states.append)
        assert len(states) == 3  # iteration 0, 1, 2
        assert [s.iteration for s in states] == [0, 1, 2]
        assert states[-1].l1_error <= states[0].l1_error

    def test_seconds_recorded(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        assert engine.query(6).seconds > 0.0


class TestValidation:
    def test_query_out_of_range(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        with pytest.raises(ValueError):
            engine.query(small_social.num_nodes)

    def test_mismatched_index_rejected(self, small_social, fig1_graph):
        index = build_index(fig1_graph, FIG3_HUBS)
        with pytest.raises(ValueError, match="different graph"):
            FastPPV(small_social, index)

    def test_batch_engine_order(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        results = engine.batch_engine.query_many(
            [3, 1, 2], stop=StopAfterIterations(1)
        )
        assert [r.query for r in results] == [3, 1, 2]
