"""Disk-engine batching: cluster faults and hub reads per query vs batch,
and the vectorised splice kernel against the historical per-hub loop.

The scalar disk engine pays its I/O per query: every cluster its prime
subgraph overlaps is faulted in, and every spliced hub costs one index
read.  ``BatchDiskFastPPV`` amortises both — a scheduling wave drains one
cluster for every query that needs it, and each hub payload is read once
per batch — so physical I/O per query falls as the batch grows while the
returned scores stay bitwise identical to scalar serving.

``test_disk_batch_kernel_speedup`` times the vectorised exact kernel
(:func:`repro.core.splice.splice_rounds_exact` plus the list-backed push
loop) against ``kernel="reference"`` — the pre-PR per-hub dict loops kept
as the executable baseline — over the batch-16 workload, and records the
wall-clock speedup in ``benchmarks/results/BENCH_disk_batch.json``
alongside the I/O table.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.common import BENCH_SCALE, emit, emit_json
from repro import StopAfterIterations, build_index, select_hubs, social_graph
from repro.experiments.report import Table
from repro.storage import (
    BatchDiskFastPPV,
    DiskFastPPV,
    DiskGraphStore,
    DiskPPVStore,
    cluster_graph,
    save_index,
)

BATCH_SIZES = (1, 4, 16)
NUM_CLUSTERS = 10
KERNEL_BATCH = 16
KERNEL_REPETITIONS = 3


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    root = tmp_path_factory.mktemp("disk_batch_bench")
    num_nodes = max(800, int(2500 * BENCH_SCALE))
    num_hubs = max(120, int(400 * BENCH_SCALE))
    graph = social_graph(num_nodes=num_nodes, seed=4)
    hubs = select_hubs(graph, num_hubs=num_hubs)
    index = build_index(graph, hubs, epsilon=1e-6)
    index_path = root / "index.fppv"
    save_index(index, index_path)
    assignment = cluster_graph(graph, NUM_CLUSTERS, seed=1)
    rng = np.random.default_rng(0)
    queries = [
        int(q)
        for q in rng.choice(graph.num_nodes, size=max(BATCH_SIZES),
                            replace=False)
    ]
    return root, graph, assignment, index_path, queries


def test_disk_batch_io(setup):
    root, graph, assignment, index_path, queries = setup
    stop = StopAfterIterations(2)

    # Scalar baseline: sequential serving against one (warm) store.
    scalar_store = DiskGraphStore(graph, assignment, root / "scalar")
    with DiskPPVStore(index_path) as ppv_store:
        engine = DiskFastPPV(scalar_store, ppv_store, delta=0.0)
        for query in queries:
            engine.query(query, stop=stop)
        scalar_faults = scalar_store.faults / len(queries)
        scalar_reads = ppv_store.reads / len(queries)

    table = Table(
        title=f"Disk I/O per query ({graph.num_nodes} nodes, "
        f"{NUM_CLUSTERS} clusters, eta=2)",
        headers=["batch", "faults/query", "hub reads/query", "ms/query"],
    )
    table.add_row("scalar", f"{scalar_faults:.1f}", f"{scalar_reads:.1f}", "-")

    faults_at_max = float("inf")
    io_rows = []
    for size in BATCH_SIZES:
        workload = queries[:size]
        store = DiskGraphStore(graph, assignment, root / f"batch{size}")
        with DiskPPVStore(index_path) as ppv_store:
            batch = BatchDiskFastPPV(store, ppv_store, delta=0.0)
            results = batch.query_many(workload, stop=stop)
            faults = store.faults / size
            reads = ppv_store.reads / size
        seconds = max(r.seconds for r in results)
        if size == max(BATCH_SIZES):
            faults_at_max = faults
        io_rows.append(
            {
                "batch": size,
                "faults_per_query": faults,
                "hub_reads_per_query": reads,
                "ms_per_query": seconds / size * 1000,
            }
        )
        table.add_row(
            size, f"{faults:.1f}", f"{reads:.1f}",
            f"{seconds / size * 1000:.1f}",
        )
    emit("disk_batch_io", table)
    emit_json(
        "disk_batch",
        {
            "io": {
                "num_nodes": graph.num_nodes,
                "num_clusters": NUM_CLUSTERS,
                "scalar_faults_per_query": scalar_faults,
                "scalar_hub_reads_per_query": scalar_reads,
                "batched": io_rows,
            }
        },
    )

    # Acceptance: at batch 16 the whole batch must fault strictly less
    # than 16 independent cold queries would.
    single_store = DiskGraphStore(graph, assignment, root / "single")
    with DiskPPVStore(index_path) as ppv_store:
        single = DiskFastPPV(single_store, ppv_store, delta=0.0)
        single.query(queries[0], stop=stop)
    single_faults = single_store.faults
    assert faults_at_max * max(BATCH_SIZES) < max(BATCH_SIZES) * single_faults
    assert faults_at_max < scalar_faults


def test_disk_batch_kernel_speedup(setup):
    root, graph, assignment, index_path, queries = setup
    stop = StopAfterIterations(2)
    workload = queries[:KERNEL_BATCH]

    def best_seconds(kernel: str) -> "tuple[float, list]":
        best = float("inf")
        for repetition in range(KERNEL_REPETITIONS):
            store = DiskGraphStore(
                graph, assignment, root / f"kernel_{kernel}_{repetition}"
            )
            with DiskPPVStore(index_path) as ppv_store:
                engine = BatchDiskFastPPV(
                    store, ppv_store, delta=0.0, kernel=kernel
                )
                started = time.perf_counter()
                results = engine.query_many(workload, stop=stop)
            best = min(best, time.perf_counter() - started)
        return best, results

    reference_seconds, reference_results = best_seconds("reference")
    vectorised_seconds, vectorised_results = best_seconds("vectorised")
    speedup = reference_seconds / vectorised_seconds

    # Equality is part of the bench contract: the speedup is only worth
    # quoting because the answers are bit-for-bit the per-hub loop's.
    for reference, vectorised in zip(reference_results, vectorised_results):
        np.testing.assert_array_equal(reference.scores, vectorised.scores)

    table = Table(
        title=f"Disk splice kernels, batch {KERNEL_BATCH} "
        f"({graph.num_nodes} nodes, {NUM_CLUSTERS} clusters, eta=2)",
        headers=["kernel", "batch ms", "ms/query", "speedup"],
    )
    table.add_row(
        "reference (per-hub loop)",
        f"{reference_seconds * 1000:.1f}",
        f"{reference_seconds / KERNEL_BATCH * 1000:.2f}",
        "1.0x",
    )
    table.add_row(
        "vectorised (exact splice)",
        f"{vectorised_seconds * 1000:.1f}",
        f"{vectorised_seconds / KERNEL_BATCH * 1000:.2f}",
        f"{speedup:.2f}x",
    )
    emit("disk_batch_kernels", table)
    emit_json(
        "disk_batch",
        {
            "kernel_speedup": {
                "batch": KERNEL_BATCH,
                "num_nodes": graph.num_nodes,
                "num_clusters": NUM_CLUSTERS,
                "reference_seconds": reference_seconds,
                "vectorised_seconds": vectorised_seconds,
                "speedup": speedup,
            }
        },
    )

    # Lenient floor at any scale (CI runs this at 0.1); the acceptance
    # target — >= 2x at the default 0.4 scale — is read from
    # BENCH_disk_batch.json.
    assert speedup > 1.2, (
        f"vectorised kernel only {speedup:.2f}x over the per-hub loop"
    )
