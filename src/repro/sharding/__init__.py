"""Hub-sharded scale-out serving (the ``repro.sharding`` subsystem).

Splits a built FastPPV index across shard processes and serves it
through a router that is **bitwise-exact** against an unsharded disk
deployment:

* :mod:`~repro.sharding.partition` — the offline partitioner: whole
  PPR clusters (hence their hubs) per shard, LPT-balanced, written as
  ordinary per-shard ``DiskPPVStore``/``DiskGraphStore`` directories
  plus a ``shard_map.json`` manifest (``repro shard-index``).
* :mod:`~repro.sharding.shard` — the shard process: a data-plane
  engine serving ``fetch_hubs`` / ``fetch_cluster`` / ``shard_info``
  and refusing queries (the ``"shard"`` backend).
* :mod:`~repro.sharding.remote` — the router's fleet client and the
  remote store twins the disk kernels run over.
* :mod:`~repro.sharding.router` — :class:`RouterEngine` (the
  ``"sharded"`` backend) and the :class:`ShardRouter` harness
  (``repro serve --shard-map``).

Importing this package registers the ``"shard"`` and ``"sharded"``
serving backends.
"""

from repro.sharding.partition import (
    assign_clusters,
    load_shard_map,
    partition_index,
    shard_dir_name,
)
from repro.sharding.remote import (
    ShardedGraphStore,
    ShardedPPVStore,
    ShardFleet,
)
from repro.sharding.router import RouterEngine, ShardRouter
from repro.sharding.shard import ShardEngine, shard_service_factory

__all__ = [
    "RouterEngine",
    "ShardEngine",
    "ShardFleet",
    "ShardRouter",
    "ShardedGraphStore",
    "ShardedPPVStore",
    "assign_clusters",
    "load_shard_map",
    "partition_index",
    "shard_dir_name",
    "shard_service_factory",
]
