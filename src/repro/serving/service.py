"""``PPVService`` — the one serving façade over every query engine.

The service owns four things:

* an :class:`~repro.serving.engines.Engine` adapter (resolved through
  the backend registry by :meth:`PPVService.open`),
* the :class:`~repro.serving.scheduler.CoalescingScheduler` that admits
  concurrent ``submit()`` traffic and drains it as engine batches,
* the shared :class:`~repro.serving.cache.PopularityCache` (hit-counter
  eviction, invalidated whenever the engine's cache token changes),
* the family router: every spec resolves through the query-family
  registry (:mod:`repro.serving.families`), and the family descriptor
  owns planning (multi-node PPV specs split into single-node
  sub-queries and recombine via the Linearity Theorem), group
  compatibility, execution, and cacheability.  Coalescing only ever
  groups same-family specs, and every cache key carries the family
  name.

Determinism contract
--------------------
The service adds no numerics: every spec's scores are produced by the
underlying engine's own batch call over the coalesced node list, so a
``query_many`` burst returns scores **bitwise identical** to calling the
engine's ``query_many`` directly on the same list.  When independent
clients coalesce, the batch *composition* differs from what either
client would have run alone; on the disk backend scores are
schedule-independent (bitwise stable by `_PrimePushRun`'s contract), on
the in-memory backend they match any other composition to the batch
engine's usual ~1e-14 reassociation round-off.
"""

from __future__ import annotations

import copy
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.index import PPVIndex
from repro.core.topk import _certificate_holds, top_k_result
from repro.obs import cost_counters

# The service's latency histogram grew into the general-purpose
# repro.obs.Histogram (identical record/snapshot/merge contract); these
# back-compat aliases keep every existing import and wire shape working.
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Histogram as LatencyHistogram,
)
from repro.obs.trace import activate as _activate_span
from repro.serving.cache import DEFAULT_CACHE_SIZE, PopularityCache
from repro.serving.engines import Engine, detect_backend, resolve_backend
from repro.serving.families import (
    FamilyTask,
    QueryFamily,
    UnsupportedFamilyError,
    resolve_family,
    supported_families,
)
from repro.serving.scheduler import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY,
    CoalescingScheduler,
)
from repro.serving.spec import QueryHandle, QuerySnapshot, QuerySpec
from repro.storage.disk_engine import DiskQueryResult, DiskTopKResult

_STREAM_DONE = object()


@dataclass(frozen=True)
class ServiceStats:
    """Counters exposed by :meth:`PPVService.stats`.

    ``queue_depth`` / ``in_flight`` snapshot the scheduler's admission
    state (how much backpressure the service is under right now);
    ``latency`` is a :meth:`LatencyHistogram.snapshot` of submit→resolve
    times over every resolved handle.

    ``families`` breaks submissions and latency out per query family:
    ``{name: {"submitted": n, "latency": <histogram snapshot>}}`` for
    every family this service has been asked for.

    Every nested structure here is a deep copy: callers may mutate a
    snapshot freely without corrupting the live histograms.
    """

    submitted: int
    batches: int
    largest_batch: int
    cache_hits: int
    cache_misses: int
    cache_entries: int
    queue_depth: int = 0
    in_flight: int = 0
    latency: dict = field(default_factory=dict)
    families: dict = field(default_factory=dict)


class _CancellableStop:
    """Wrap a stopping condition with a client-side cancellation flag.

    Used by streaming: closing the snapshot iterator sets the flag, and
    the engine stops at the next iteration boundary instead of running
    the abandoned query to completion.
    """

    __slots__ = ("_inner", "_cancel")

    def __init__(self, inner, cancel: threading.Event) -> None:
        self._inner = inner
        self._cancel = cancel

    def should_stop(self, state) -> bool:
        return self._cancel.is_set() or self._inner.should_stop(state)


class _BatchJob:
    __slots__ = ("spec", "handle", "span")

    def __init__(self, spec: QuerySpec, handle: QueryHandle) -> None:
        self.spec = spec
        self.handle = handle
        # The queue-wait span of a traced request (admission → drain);
        # None whenever the service or the request is untraced.
        self.span = None


class _StreamJob:
    __slots__ = ("spec", "handle", "out", "cancel", "span")

    def __init__(
        self,
        spec: QuerySpec,
        handle: QueryHandle,
        out: "queue.Queue",
        cancel: threading.Event,
    ) -> None:
        self.spec = spec
        self.handle = handle
        self.out = out
        self.cancel = cancel
        self.span = None


class PPVService:
    """One serving façade for all FastPPV engines (see module docstring).

    Build it with :meth:`open`; use it as a context manager (or call
    :meth:`close`) so the drain thread and any owned stores are released.

    Parameters
    ----------
    engine:
        An :class:`~repro.serving.engines.Engine` adapter.
    cache_size:
        Capacity of the popularity-aware result cache (0 disables it).
    max_batch:
        Requests coalesced into one scheduler drain.
    max_delay:
        Seconds a drain holds its batch open for concurrent arrivals,
        or ``"auto"`` to tune the window from the observed arrival rate
        (see :class:`~repro.serving.scheduler.CoalescingScheduler`).
    fault_plan:
        Tests only: a :class:`repro.faults.FaultPlan` forwarded to the
        scheduler (its ``scheduler.execute`` site).  ``None`` keeps the
        hot path hook-free.
    obs:
        A :class:`repro.obs.Observability` bundle.  When given, the
        service exposes its counters (and the scheduler's, cache's and
        engine's) through the bundle's metrics registry, honours trace
        contexts on incoming specs, and records threshold-crossing
        queries into the bundle's slow-query log.  ``None`` (default)
        keeps every hook at one ``is not None`` check.
    """

    def __init__(
        self,
        engine: Engine,
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay: "float | str" = DEFAULT_MAX_DELAY,
        fault_plan=None,
        obs=None,
    ) -> None:
        self.engine = engine
        self.obs = obs
        self.cache = PopularityCache(cache_size)
        self._cache_token = None
        self._scheduler = CoalescingScheduler(
            self._serve_jobs,
            max_batch=max_batch,
            max_delay=max_delay,
            # Second line of defence: if _serve_jobs itself blows through
            # (its own net failing), the scheduler resolves the batch's
            # handles instead of silently dropping them.
            on_error=self._fail_jobs,
            fault_plan=fault_plan,
            obs=obs,
        )
        self.latency = LatencyHistogram()
        self._submitted = 0
        # Per-family submission counts and latency histograms, keyed by
        # family name; grown lazily under the lock as families arrive.
        self._family_lock = threading.Lock()
        self._family_submitted: dict[str, int] = {}
        self._family_latency: dict[str, LatencyHistogram] = {}
        self._closed = False
        # Live streaming jobs, so close() can cancel them instead of
        # letting an abandoned iterator run its query to completion on
        # the drain thread.
        self._streams_lock = threading.Lock()
        self._active_streams: set[_StreamJob] = set()
        if obs is not None:
            self._install_metrics()

    def _install_metrics(self) -> None:
        """Publish the service's existing counters through the obs
        registry as function-backed metrics (read at snapshot time, so
        the serving hot path pays nothing)."""
        registry = self.obs.registry
        registry.counter_func(
            "repro_queries_submitted_total",
            "Queries admitted, by family.",
            self._family_submission_counts,
            labelnames=("family",),
        )
        registry.histogram_func(
            "repro_request_latency_seconds",
            "Submit-to-resolve latency over every resolved handle.",
            self.latency.snapshot,
        )
        registry.histogram_func(
            "repro_family_latency_seconds",
            "Submit-to-resolve latency, by family.",
            self._family_latency_snapshots,
            labelnames=("family",),
        )
        registry.counter_func(
            "repro_cache_hits_total",
            "Result-cache hits.",
            lambda: self.cache.hits,
        )
        registry.counter_func(
            "repro_cache_misses_total",
            "Result-cache misses.",
            lambda: self.cache.misses,
        )
        registry.counter_func(
            "repro_cache_evictions_total",
            "Result-cache evictions.",
            lambda: self.cache.evictions,
        )
        registry.gauge_func(
            "repro_cache_entries",
            "Results currently cached.",
            lambda: len(self.cache),
        )
        self.obs.observe_engine(self.engine)

    def _family_submission_counts(self) -> dict:
        with self._family_lock:
            return {
                (name,): count
                for name, count in self._family_submitted.items()
            }

    def _family_latency_snapshots(self) -> dict:
        with self._family_lock:
            histograms = dict(self._family_latency)
        return {
            (name,): histogram.snapshot()
            for name, histogram in histograms.items()
        }

    # ------------------------------------------------------------------ #
    # Construction / lifecycle

    @classmethod
    def open(
        cls,
        index_or_store,
        backend: str | None = None,
        *,
        graph=None,
        graph_store=None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay: "float | str" = DEFAULT_MAX_DELAY,
        fault_plan=None,
        obs=None,
        **engine_kwargs,
    ) -> "PPVService":
        """Open a service over an index (memory) or stores (disk).

        Parameters
        ----------
        index_or_store:
            What to serve from: a :class:`~repro.core.index.PPVIndex`
            (with ``graph=``) or a ``FastPPV`` engine for the memory
            backend; a :class:`~repro.storage.ppv_store.DiskPPVStore`,
            an ``.fppv`` path (opened and owned by the service), or a
            ``DiskFastPPV`` engine (with ``graph_store=``) for disk.
        backend:
            Registry name; auto-detected from the source type when
            omitted.
        engine_kwargs:
            Forwarded to the backend factory (``delta``,
            ``online_epsilon``, ``fault_budget``, ...).
        """
        name = (
            backend
            if backend is not None
            else detect_backend(index_or_store, graph=graph,
                                graph_store=graph_store)
        )
        factory = resolve_backend(name)
        engine = factory(
            index_or_store, graph=graph, graph_store=graph_store,
            **engine_kwargs,
        )
        return cls(
            engine,
            cache_size=cache_size,
            max_batch=max_batch,
            max_delay=max_delay,
            fault_plan=fault_plan,
            obs=obs,
        )

    def __enter__(self) -> "PPVService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Drain pending requests, stop the scheduler, release stores.

        Idempotent.  Live streaming iterators are cancelled first: their
        queries stop at the next iteration boundary (each open stream
        still receives its terminal sentinel, so a consumer blocked on
        the iterator wakes up and finishes cleanly) rather than running
        abandoned work to completion while ``close`` waits.
        """
        with self._streams_lock:
            if self._closed:
                return
            self._closed = True
            for job in self._active_streams:
                job.cancel.set()
        self._scheduler.close()
        self.engine.close()

    def warm(self) -> None:
        """Materialise one-off backend state (e.g. the matrix lowering)
        outside any timed serving region."""
        self._refresh_cache_token()

    # ------------------------------------------------------------------ #
    # Public request API

    def submit(self, spec: QuerySpec | int) -> QueryHandle:
        """Admit a request and return its future immediately.

        Concurrent submissions coalesce into shared engine batches; call
        :meth:`flush` (or just ``handle.result()`` after a
        ``max_delay``) to force the window closed.
        """
        spec = self._as_spec(spec)
        self._validate(spec)
        handle = QueryHandle(spec)
        self._count_submission(spec)
        self._track_latency(handle)
        job = _BatchJob(spec, handle)
        if self.obs is not None and spec.trace is not None:
            job.span = self.obs.tracer.start_span(
                "service.queue", spec.trace, family=spec.family
            )
        self._scheduler.submit(job)
        return handle

    def query(self, spec: QuerySpec | int):
        """Serve one request synchronously (kicks the batch window)."""
        handle = self.submit(spec)
        self._scheduler.kick()
        return handle.result()

    def query_many(self, specs: Sequence[QuerySpec | int]) -> list:
        """Serve a burst of requests, preserving order.

        The burst is admitted atomically, so (up to ``max_batch``) it
        runs as one coalesced drain whose engine batches contain exactly
        these specs' nodes in order — scores bitwise-equal to calling
        the engine's own batch method directly.
        """
        resolved = [self._as_spec(spec) for spec in specs]
        for spec in resolved:
            self._validate(spec)
        handles = [QueryHandle(spec) for spec in resolved]
        for spec in resolved:
            self._count_submission(spec)
        for handle in handles:
            self._track_latency(handle)
        jobs = [
            _BatchJob(spec, handle)
            for spec, handle in zip(resolved, handles)
        ]
        if self.obs is not None:
            tracer = self.obs.tracer
            for job in jobs:
                if job.spec.trace is not None:
                    job.span = tracer.start_span(
                        "service.queue", job.spec.trace,
                        family=job.spec.family,
                    )
        self._scheduler.submit_many(jobs)
        self._scheduler.kick()
        return [handle.result() for handle in handles]

    def stream(self, spec: QuerySpec | int) -> Iterator[QuerySnapshot]:
        """Serve one request as a stream of per-iteration snapshots.

        Yields a :class:`~repro.serving.QuerySnapshot` after iteration 0
        and after every incremental iteration, built on the engines'
        ``on_iteration`` contract; for ``top_k`` specs each snapshot
        carries the live certificate status, so accuracy-aware clients
        can act the moment their top set certifies.  Closing the
        iterator early cancels the query at the next iteration boundary.

        Streaming bypasses the result cache (snapshot sequences must
        reflect real execution) and is limited to single-node specs.
        """
        spec = self._as_spec(spec)
        if spec.is_multi:
            raise ValueError(
                "streaming is limited to single-node specs; decompose "
                "multi-node sets client-side via the Linearity Theorem"
            )
        family = self._validate(spec)
        if not family.streamable:
            raise ValueError(
                f"family {spec.family!r} does not stream; use query()"
            )
        handle = QueryHandle(spec)
        out: "queue.Queue" = queue.Queue()
        cancel = threading.Event()
        self._count_submission(spec)
        self._track_latency(handle)
        job = _StreamJob(spec, handle, out, cancel)
        if self.obs is not None and spec.trace is not None:
            job.span = self.obs.tracer.start_span(
                "service.queue", spec.trace, family=spec.family
            )
        with self._streams_lock:
            # Checked under the same lock close() takes before
            # cancelling, so a stream can never slip in between close's
            # cancellation sweep and the scheduler actually closing —
            # it either registers in time to be cancelled or raises.
            if self._closed:
                raise RuntimeError("service is closed")
            self._active_streams.add(job)
        try:
            self._scheduler.submit(job)
        except BaseException:
            with self._streams_lock:
                self._active_streams.discard(job)
            raise
        self._scheduler.kick()

        def snapshots() -> Iterator[QuerySnapshot]:
            try:
                while True:
                    item = out.get()
                    if item is _STREAM_DONE:
                        if handle._error is not None:
                            raise handle._error
                        return
                    yield item
            finally:
                cancel.set()

        return snapshots()

    def flush(self, timeout: float | None = None) -> None:
        """Force the coalescing window closed and wait for quiescence."""
        self._scheduler.flush(timeout)

    def update_index(self, index: PPVIndex, graph=None) -> None:
        """Swap in a new index (memory backend) and invalidate the cache.

        The natural partner of :func:`repro.core.dynamic.update_index`,
        which returns a *new* index after a graph change: pass its
        result (and the updated graph) here and the service atomically
        starts serving from it, with every cached PPV from the old index
        dropped.
        """
        replace = getattr(self.engine, "replace_index", None)
        if replace is None:
            raise NotImplementedError(
                f"the {self.engine.backend!r} backend cannot swap indexes "
                "in place"
            )
        self._scheduler.flush()
        replace(index, graph=graph)
        self.cache.clear()

    def swap_path(self, path: str) -> None:
        """Swap the served index to whatever lives at ``path``.

        Engines that know how to reopen themselves from a path (the
        shard router's partition-root swap) do it via their
        ``replace_from_path`` hook; everything else goes through the
        legacy route — load the ``.fppv`` eagerly and
        :meth:`update_index` it — which preserves each backend's
        existing swap semantics (the plain disk backend has no
        ``replace_index`` and keeps refusing with
        ``NotImplementedError``).  Either way in-flight work drains
        first and the result cache is dropped.
        """
        replace = getattr(self.engine, "replace_from_path", None)
        if replace is not None:
            self._scheduler.flush()
            replace(path)
            self.cache.clear()
            return
        from repro.storage.ppv_store import load_index

        self.update_index(load_index(path))

    def _count_submission(self, spec: QuerySpec) -> None:
        self._submitted += 1
        with self._family_lock:
            self._family_submitted[spec.family] = (
                self._family_submitted.get(spec.family, 0) + 1
            )

    def _family_histogram(self, family: str) -> LatencyHistogram:
        with self._family_lock:
            histogram = self._family_latency.get(family)
            if histogram is None:
                histogram = self._family_latency[family] = LatencyHistogram()
        return histogram

    def _track_latency(self, handle: QueryHandle) -> None:
        """Record the handle's submit→resolve latency when it resolves
        (totals plus the per-family breakdown), and feed the slow-query
        log when one is configured."""
        started = time.monotonic()
        per_family = self._family_histogram(handle.spec.family)
        obs = self.obs

        def record(_handle) -> None:
            elapsed = time.monotonic() - started
            self.latency.record(elapsed)
            per_family.record(elapsed)
            if (
                obs is not None
                and obs.slow_log is not None
                and elapsed >= obs.slow_log.threshold
            ):
                obs.slow_log.record(self._slow_entry(handle, elapsed))

        handle.add_done_callback(record)

    def _slow_entry(self, handle: QueryHandle, elapsed: float) -> dict:
        """One slow-query log entry: identity, elapsed time, serving
        breadcrumbs and engine cost counters."""
        spec = handle.spec
        entry: dict = {
            "at": time.time(),
            "family": spec.family,
            "nodes": list(spec.nodes),
            "seconds": elapsed,
        }
        if spec.trace is not None:
            entry["trace"] = spec.trace.trace_id
        if handle._obs is not None:
            entry.update(handle._obs)
        if handle._error is not None:
            entry["error"] = str(handle._error)
        else:
            entry.update(cost_counters(handle._result))
        return entry

    def families(self) -> tuple[str, ...]:
        """Names of the registered families this engine can answer."""
        return supported_families(self.engine)

    def stats(self) -> ServiceStats:
        """A snapshot of the service's serving counters."""
        with self._family_lock:
            family_stats = {
                name: {
                    "submitted": count,
                    "latency": (
                        self._family_latency[name].snapshot()
                        if name in self._family_latency
                        else LatencyHistogram().snapshot()
                    ),
                }
                for name, count in self._family_submitted.items()
            }
        return ServiceStats(
            submitted=self._submitted,
            batches=self._scheduler.batches_served,
            largest_batch=self._scheduler.largest_batch,
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
            cache_entries=len(self.cache),
            queue_depth=self._scheduler.queue_depth,
            in_flight=self._scheduler.in_flight,
            latency=self.latency.snapshot(),
            # snapshot() dicts are already freshly built, but deep-copy
            # anyway so the immutability guarantee in the ServiceStats
            # docstring is structural, not incidental — family entries
            # may grow shared sub-structures in the future.
            families=copy.deepcopy(family_stats),
        )

    # ------------------------------------------------------------------ #
    # Planning and execution (scheduler thread only)

    def _as_spec(self, spec) -> QuerySpec:
        if isinstance(spec, QuerySpec):
            return spec
        return QuerySpec(spec)

    def _validate(self, spec: QuerySpec) -> QueryFamily:
        """Resolve the spec's family and run admission checks.

        Raises ``UnsupportedFamilyError`` (a ``ValueError``) when the
        engine lacks the family's capability, plain ``ValueError`` for
        unknown families or bad nodes/parameters.
        """
        try:
            family = resolve_family(spec.family)
        except KeyError as error:
            raise ValueError(str(error)) from None
        if not family.supports(self.engine):
            raise UnsupportedFamilyError(
                spec.family, getattr(self.engine, "backend", "?")
            )
        for node in spec.nodes:
            if not 0 <= node < self.engine.num_nodes:
                raise ValueError(f"query node {node} out of range")
        family.validate(spec, self.engine)
        return family

    def _refresh_cache_token(self) -> None:
        token = self.engine.cache_token()
        if token is not self._cache_token:
            if self._cache_token is not None:
                self.cache.clear()
            self._cache_token = token

    def _serve_jobs(self, jobs) -> None:
        """Scheduler drain: plan, group, serve, assemble, complete.

        Must leave **every** job's handle resolved (result or error) no
        matter what fails — an unresolved handle would block its client
        forever — hence the outer safety net below.
        """
        try:
            self._serve_jobs_inner(jobs)
        except BaseException as error:
            self._fail_jobs(jobs, error)

    def _fail_jobs(self, jobs, error: BaseException) -> None:
        """Resolve every unresolved handle in ``jobs`` with ``error``."""
        for job in jobs:
            if not job.handle.done():
                job.handle._set_error(error)
            if isinstance(job, _StreamJob):
                with self._streams_lock:
                    self._active_streams.discard(job)
                job.out.put(_STREAM_DONE)

    def _serve_jobs_inner(self, jobs) -> None:
        self._refresh_cache_token()
        batch_jobs = [job for job in jobs if isinstance(job, _BatchJob)]
        stream_jobs = [job for job in jobs if isinstance(job, _StreamJob)]

        # A coalesced drain serves many requests in one pass, so batch
        # work (grouping, kernels) belongs to no single trace.  Span
        # placement: the first traced job's context adopts the
        # batch-level spans (service.batch + engine.run_group kernels);
        # every traced job keeps its own service.queue/service.cache
        # spans, each stamped with the shared batch size.  The batch
        # span is thread-activated around kernel execution so remote
        # stores and fault sites reach the trace via current_span().
        batch_span = None
        if self.obs is not None:
            for job in batch_jobs:
                if job.spec.trace is not None:
                    batch_span = self.obs.tracer.start_span(
                        "service.batch", job.spec.trace,
                        batch_size=len(jobs),
                    )
                    break
        try:
            if batch_span is not None:
                with _activate_span(batch_span):
                    self._serve_batch_jobs(batch_jobs, len(jobs), batch_span)
            else:
                self._serve_batch_jobs(batch_jobs, len(jobs), None)
        finally:
            if batch_span is not None:
                batch_span.end()

        for job in stream_jobs:
            self._run_stream(job)

    def _serve_batch_jobs(
        self, batch_jobs, drain_size: int, batch_span
    ) -> None:
        # Group keys are the family's own key prefixed with the family
        # name, so a coalesced drain only ever batches same-family specs
        # together; cache keys get the same prefix, so families can
        # never serve each other's cached results.
        want_cost_info = (
            self.obs is not None and self.obs.slow_log is not None
        )
        plans: list[tuple[_BatchJob, QueryFamily, list[FamilyTask]]] = []
        groups: dict[
            tuple, tuple[QueryFamily, tuple,
                         list[tuple[QuerySpec, FamilyTask]]]
        ] = {}
        for job in batch_jobs:
            if job.span is not None:
                job.span.end(batch_size=drain_size)
            family = resolve_family(job.spec.family)
            tasks = family.plan(job.spec)
            plans.append((job, family, tasks))
            cache_span = None
            if batch_span is not None and job.spec.trace is not None:
                cache_span = batch_span.child(
                    "service.cache", family=family.name
                )
            cache_hits = 0
            for task in tasks:
                key = family.cache_key(job.spec, task)
                if key is not None:
                    hit = self.cache.get((family.name,) + key)
                    if hit is not None:
                        task.result = hit
                        cache_hits += 1
                        continue
                family_key = family.group_key(job.spec, task)
                full_key = (family.name,) + family_key
                if full_key not in groups:
                    groups[full_key] = (family, family_key, [])
                groups[full_key][2].append((job.spec, task))
            if cache_span is not None:
                cache_span.end(hits=cache_hits, lookups=len(tasks))
            if want_cost_info:
                job.handle._obs = {
                    "batch_size": drain_size,
                    "cache_hits": cache_hits,
                }

        group_errors: dict[tuple, BaseException] = {}
        for full_key, (family, family_key, members) in groups.items():
            kernel_span = None
            if batch_span is not None:
                kernel_span = batch_span.child(
                    "engine.run_group",
                    family=family.name,
                    queries=len(members),
                )
            try:
                if kernel_span is not None:
                    with _activate_span(kernel_span):
                        results = family.run_group(
                            self.engine, family_key, members
                        )
                else:
                    results = family.run_group(
                        self.engine, family_key, members
                    )
            except BaseException as error:
                group_errors[full_key] = error
                continue
            finally:
                if kernel_span is not None:
                    kernel_span.end()
            for (spec, task), result in zip(members, results):
                task.result = result
                cache_key = family.cache_key(spec, task)
                if cache_key is not None:
                    try:
                        self.cache.put((family.name,) + cache_key, result)
                    except TypeError:
                        # A custom backend's result shape copy_served
                        # does not know: serve it, just never cache it.
                        pass

        for job, family, tasks in plans:
            failed = next(
                (
                    group_errors[
                        (family.name,)
                        + family.group_key(job.spec, task)
                    ]
                    for task in tasks
                    if task.result is None
                ),
                None,
            )
            if failed is not None:
                job.handle._set_error(failed)
                continue
            try:
                job.handle._set_result(family.assemble(job.spec, tasks))
            except BaseException as error:
                job.handle._set_error(error)

    def _run_stream(self, job: _StreamJob) -> None:
        """Serve one streaming job, under its own trace span when the
        request was traced (the queue span ends here; a service.stream
        span is activated around the engine call so remote stores and
        fault sites attach to it)."""
        if job.span is not None:
            job.span.end()
            span = job.span.tracer.start_span(
                "service.stream", job.spec.trace, family=job.spec.family
            )
            try:
                with _activate_span(span):
                    self._run_stream_inner(job)
            finally:
                span.end()
            return
        self._run_stream_inner(job)

    def _run_stream_inner(self, job: _StreamJob) -> None:
        spec = job.spec
        k = spec.top_k
        stop = _CancellableStop(spec.resolved_stop(), job.cancel)

        def on_iteration(state) -> None:
            certified = None
            if k is not None and state.scores is not None:
                certified = _certificate_holds(
                    state.scores, k, state.l1_error
                )
            job.out.put(
                QuerySnapshot(
                    iteration=state.iteration,
                    l1_error=state.l1_error,
                    frontier_size=state.frontier_size,
                    scores=state.scores.copy(),
                    certified=certified,
                )
            )

        try:
            result = self.engine.query_stream(
                spec.nodes[0], stop, on_iteration
            )
            if k is not None:
                if isinstance(result, DiskQueryResult):
                    result = DiskTopKResult(
                        topk=top_k_result(result.result, k),
                        cluster_faults=result.cluster_faults,
                        hub_reads=result.hub_reads,
                        truncated=result.truncated,
                    )
                else:
                    result = top_k_result(result, k)
            job.handle._set_result(result)
        except BaseException as error:
            job.handle._set_error(error)
        finally:
            with self._streams_lock:
                self._active_streams.discard(job)
            job.out.put(_STREAM_DONE)
