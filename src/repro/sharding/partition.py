"""Offline partitioning: split a built index across hub shards.

The unit of partitioning is the **PPR cluster**
(:mod:`repro.storage.clustering`), not the individual hub: a cluster's
nodes — and therefore its hubs — always land on the same shard, so a
shard owns whole regions of the graph and the cluster residency of the
prime-subgraph push stays shard-local.  Clusters are assigned to shards
greedily (largest cluster first onto the least-loaded shard), which is
deterministic and keeps shards balanced by node count.

One partition root looks like::

    root/
      shard_map.json          # the global partition manifest
      shard_00/
        shard.json            # this shard's coordinates (self-describing)
        index.fppv            # sub-index: the shard's hubs' prime PPVs
        graph/                # partial DiskGraphStore: the shard's clusters
      shard_01/
        ...

Each ``index.fppv`` is an ordinary
:class:`~repro.storage.ppv_store.DiskPPVStore` file whose directory
lists only the owned hubs (``num_nodes`` stays global), and each
``graph/`` is an ordinary :class:`~repro.storage.disk_engine.
DiskGraphStore` directory built with the ``clusters=`` subset (labels
and ``num_clusters`` stay global).  A shard process therefore reuses
the existing store readers unchanged; nothing about the on-disk formats
is shard-specific beyond which records are present.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.core.index import PPVIndex
from repro.storage.clustering import ClusterAssignment, cluster_graph
from repro.storage.disk_engine import DiskGraphStore
from repro.storage.ppv_store import save_index

SHARD_MAP_NAME = "shard_map.json"
SHARD_META_NAME = "shard.json"


def shard_dir_name(shard: int) -> str:
    """Directory name of one shard under the partition root."""
    return f"shard_{shard:02d}"


def assign_clusters(
    sizes: "np.ndarray | list[int]", num_shards: int
) -> list[int]:
    """Greedy balanced cluster→shard assignment.

    Clusters are placed largest first onto the currently least-loaded
    shard (ties: lowest shard id), which is the classic LPT heuristic —
    deterministic, and within 4/3 of the optimal makespan.  Returns the
    shard id of every cluster.
    """
    sizes = [int(size) for size in sizes]
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if num_shards > len(sizes):
        raise ValueError(
            f"cannot split {len(sizes)} clusters across {num_shards} "
            "shards; lower --shards or raise the cluster count"
        )
    order = sorted(range(len(sizes)), key=lambda c: (-sizes[c], c))
    loads = [0] * num_shards
    shards = [0] * len(sizes)
    for cluster in order:
        shard = min(range(num_shards), key=lambda s: (loads[s], s))
        shards[cluster] = shard
        loads[shard] += sizes[cluster]
    return shards


def partition_index(
    graph,
    index: PPVIndex,
    num_shards: int,
    root: "str | os.PathLike[str]",
    *,
    assignment: ClusterAssignment | None = None,
    num_clusters: int | None = None,
    seed: int = 0,
) -> dict:
    """Split ``index`` (and the graph) into ``num_shards`` shard dirs.

    Parameters
    ----------
    graph:
        The graph the index was built on.
    index:
        The built :class:`~repro.core.index.PPVIndex`.
    num_shards:
        How many shards to produce (each becomes one serving process
        group).
    root:
        Partition root directory (created if needed).
    assignment:
        A :class:`~repro.storage.clustering.ClusterAssignment` to reuse
        — pass the one an existing disk deployment was built with so
        the sharded and unsharded stores segment identically.  When
        omitted, one is computed with ``cluster_graph(graph,
        num_clusters, seed=seed)``.
    num_clusters:
        Cluster count when computing a fresh assignment (default
        ``max(8, 2 * num_shards)``).

    Returns the manifest dict (also written to ``shard_map.json``).
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    if assignment is None:
        if num_clusters is None:
            num_clusters = max(8, 2 * num_shards)
        assignment = cluster_graph(graph, num_clusters, seed=seed)
    cluster_shards = assign_clusters(assignment.sizes(), num_shards)

    labels = assignment.labels
    hubs = sorted(index.entries)
    hub_shards = {
        hub: cluster_shards[int(labels[hub])] for hub in hubs
    }

    shards_meta = []
    for shard in range(num_shards):
        shard_dir = root / shard_dir_name(shard)
        shard_dir.mkdir(parents=True, exist_ok=True)
        owned_clusters = [
            cluster
            for cluster, owner in enumerate(cluster_shards)
            if owner == shard
        ]
        owned_hubs = [hub for hub in hubs if hub_shards[hub] == shard]

        # Sub-index: owned entries only, hub mask full-length so
        # num_nodes stays global in the .fppv header.
        sub_mask = np.zeros(index.hub_mask.size, dtype=bool)
        sub_mask[owned_hubs] = True
        sub_index = PPVIndex(
            alpha=index.alpha,
            epsilon=index.epsilon,
            clip=index.clip,
            hub_mask=sub_mask,
            entries={hub: index.entries[hub] for hub in owned_hubs},
        )
        index_bytes = save_index(sub_index, shard_dir / "index.fppv")

        store = DiskGraphStore(
            graph, assignment, shard_dir / "graph", clusters=owned_clusters
        )
        graph_bytes = store.total_bytes

        meta = {
            "shard": shard,
            "num_shards": num_shards,
            "num_nodes": int(graph.num_nodes),
            "num_clusters": int(assignment.num_clusters),
            "alpha": index.alpha,
            "epsilon": index.epsilon,
            "clip": index.clip,
            "cluster_shards": cluster_shards,
            "clusters": owned_clusters,
            "hubs": owned_hubs,
            "index_bytes": index_bytes,
            "graph_bytes": graph_bytes,
        }
        (shard_dir / SHARD_META_NAME).write_text(json.dumps(meta))
        shards_meta.append(
            {
                "shard": shard,
                "dir": shard_dir_name(shard),
                "clusters": owned_clusters,
                "hubs": owned_hubs,
                "nodes": int(sum(assignment.sizes()[owned_clusters])),
                "index_bytes": index_bytes,
                "graph_bytes": graph_bytes,
            }
        )

    manifest = {
        "version": 1,
        "num_shards": num_shards,
        "num_nodes": int(graph.num_nodes),
        "num_clusters": int(assignment.num_clusters),
        "num_hubs": len(hubs),
        "alpha": index.alpha,
        "epsilon": index.epsilon,
        "clip": index.clip,
        "cluster_shards": cluster_shards,
        "shards": shards_meta,
    }
    (root / SHARD_MAP_NAME).write_text(json.dumps(manifest))
    return manifest


def load_shard_map(root: "str | os.PathLike[str]") -> dict:
    """Read and sanity-check a partition root's ``shard_map.json``.

    Raises
    ------
    FileNotFoundError
        No manifest at ``root``.
    ValueError
        A manifest that names shard directories which do not exist.
    """
    root = Path(root)
    path = root / SHARD_MAP_NAME
    if not path.exists():
        raise FileNotFoundError(f"no {SHARD_MAP_NAME} under {root}")
    manifest = json.loads(path.read_text())
    for entry in manifest["shards"]:
        shard_dir = root / entry["dir"]
        if not (shard_dir / "index.fppv").exists():
            raise ValueError(f"shard directory {shard_dir} is incomplete")
    return manifest
