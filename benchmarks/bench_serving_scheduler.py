"""Serving façade: coalesced submission throughput and shared residency.

Two acceptance claims for :class:`~repro.serving.PPVService`:

* **Memory backend** — submitting a burst through the façade
  (``query_many``, one coalesced scheduler drain) must be at least as
  fast as submitting the same queries one at a time (``query`` per
  node, each a batch of one), because the drain hands the whole burst
  to the sparse-matrix batch engine.
* **Disk backend** — two *concurrent* clients submitting to one service
  must pay fewer physical cluster faults per query than the same two
  clients served *sequentially*, because coalesced batches share
  cluster residency through the cluster-grouped disk scheduler.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from benchmarks.common import BENCH_SCALE, emit, emit_json
from repro import (
    FastPPV,
    StopAfterIterations,
    build_index,
    select_hubs,
    social_graph,
)
from repro.experiments.report import Table
from repro.serving import PPVService, QuerySpec
from repro.storage import (
    DiskFastPPV,
    DiskGraphStore,
    DiskPPVStore,
    cluster_graph,
    save_index,
)

DELTA = 1e-4
ONLINE_EPSILON = 1e-5
NUM_CLUSTERS = 8
CLIENT_QUERIES = 8


@pytest.fixture(scope="module")
def setup():
    num_nodes = max(1000, int(4000 * BENCH_SCALE))
    num_hubs = max(100, int(400 * BENCH_SCALE))
    graph = social_graph(num_nodes=num_nodes, seed=11)
    hubs = select_hubs(graph, num_hubs=num_hubs)
    index = build_index(graph, hubs, epsilon=1e-6)
    rng = np.random.default_rng(0)
    queries = [
        int(q)
        for q in rng.choice(graph.num_nodes, size=64, replace=False)
    ]
    return graph, index, queries


def _best_seconds(run, repetitions: int = 3) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def test_coalesced_submission_throughput(setup):
    graph, index, queries = setup
    stop = StopAfterIterations(2)
    specs = [QuerySpec(q, stop=stop) for q in queries]

    scalar = FastPPV(graph, index, delta=DELTA, online_epsilon=ONLINE_EPSILON)
    table = Table(
        title=f"Facade submission throughput ({graph.num_nodes} nodes, "
        f"{index.num_hubs} hubs, eta=2, {len(queries)} queries)",
        headers=["path", "q/s"],
    )

    # Cache off everywhere: this measures execution paths, not repeats.
    with PPVService.open(
        index, graph=graph, delta=DELTA, online_epsilon=ONLINE_EPSILON,
        cache_size=0,
    ) as service:
        service.warm()
        scalar_seconds = _best_seconds(
            lambda: [scalar.query(q, stop=stop) for q in queries]
        )
        loop_seconds = _best_seconds(
            lambda: [service.query(spec) for spec in specs]
        )
        coalesced_seconds = _best_seconds(
            lambda: service.query_many(specs)
        )

    rate = lambda seconds: len(queries) / seconds
    table.add_row("scalar engine loop", f"{rate(scalar_seconds):.0f}")
    table.add_row("facade, one query() at a time", f"{rate(loop_seconds):.0f}")
    table.add_row("facade, coalesced query_many()", f"{rate(coalesced_seconds):.0f}")
    emit("serving_scheduler_throughput", table)
    emit_json(
        "serving_scheduler",
        {
            "throughput": {
                "num_nodes": graph.num_nodes,
                "num_hubs": int(index.num_hubs),
                "num_queries": len(queries),
                "scalar_qps": rate(scalar_seconds),
                "facade_loop_qps": rate(loop_seconds),
                "facade_coalesced_qps": rate(coalesced_seconds),
            }
        },
    )

    # Acceptance: coalesced submission at least matches the scalar
    # submission loop (at full scale it rides the batch engine's ~3-4x).
    assert rate(coalesced_seconds) >= rate(scalar_seconds), (
        f"coalesced {rate(coalesced_seconds):.0f} q/s below scalar loop "
        f"{rate(scalar_seconds):.0f} q/s"
    )


def test_concurrent_disk_clients_share_residency(setup, tmp_path):
    graph, index, queries = setup
    stop = StopAfterIterations(2)
    index_path = tmp_path / "index.fppv"
    save_index(index, index_path)
    assignment = cluster_graph(graph, NUM_CLUSTERS, seed=1)
    client_a = queries[:CLIENT_QUERIES]
    client_b = queries[CLIENT_QUERIES : 2 * CLIENT_QUERIES]
    total = len(client_a) + len(client_b)

    # Sequential baseline: client A finishes before client B starts,
    # every query alone against the store (nothing to amortise).
    store = DiskGraphStore(graph, assignment, tmp_path / "sequential")
    with DiskPPVStore(index_path) as ppv_store:
        engine = DiskFastPPV(store, ppv_store, delta=DELTA)
        for q in client_a + client_b:
            engine.query(q, stop=stop)
        sequential_faults = store.faults / total
        sequential_reads = ppv_store.reads / total

    # Concurrent clients: both submit into one facade; a generous
    # coalescing window lets the scheduler drain both bursts as shared
    # cluster-grouped batches.
    store = DiskGraphStore(graph, assignment, tmp_path / "concurrent")
    with DiskPPVStore(index_path) as ppv_store:
        with PPVService.open(
            ppv_store, graph_store=store, delta=DELTA,
            cache_size=0, max_delay=0.05,
        ) as service:
            results: dict[str, list] = {}

            def client(name: str, nodes: list[int]) -> None:
                handles = [
                    service.submit(QuerySpec(q, stop=stop)) for q in nodes
                ]
                results[name] = [handle.result() for handle in handles]

            threads = [
                threading.Thread(target=client, args=("a", client_a)),
                threading.Thread(target=client, args=("b", client_b)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        concurrent_faults = store.faults / total
        concurrent_reads = ppv_store.reads / total

    table = Table(
        title=f"Two disk clients, {CLIENT_QUERIES} queries each "
        f"({graph.num_nodes} nodes, {NUM_CLUSTERS} clusters, eta=2)",
        headers=["serving", "faults/query", "hub reads/query"],
    )
    table.add_row(
        "sequential", f"{sequential_faults:.1f}", f"{sequential_reads:.1f}"
    )
    table.add_row(
        "concurrent (coalesced)",
        f"{concurrent_faults:.1f}",
        f"{concurrent_reads:.1f}",
    )
    emit("serving_scheduler_disk", table)
    emit_json(
        "serving_scheduler",
        {
            "disk_residency": {
                "num_nodes": graph.num_nodes,
                "num_clusters": NUM_CLUSTERS,
                "queries_per_client": CLIENT_QUERIES,
                "sequential_faults_per_query": sequential_faults,
                "sequential_reads_per_query": sequential_reads,
                "concurrent_faults_per_query": concurrent_faults,
                "concurrent_reads_per_query": concurrent_reads,
            }
        },
    )

    # Acceptance: coalescing concurrent clients must beat serving them
    # one after the other, and answers must match the sequential run.
    assert concurrent_faults < sequential_faults
    for name, nodes in (("a", client_a), ("b", client_b)):
        fresh = DiskGraphStore(graph, assignment, tmp_path / f"check_{name}")
        with DiskPPVStore(index_path) as ppv_store:
            engine = DiskFastPPV(fresh, ppv_store, delta=DELTA)
            for node, served in zip(nodes, results[name]):
                reference = engine.query(node, stop=stop)
                np.testing.assert_array_equal(
                    served.scores, reference.scores
                )
