"""Tests for the path-length schedule (power iteration as anytime PPV)."""

import numpy as np
import pytest

from repro import FastPPV, StopAfterIterations, StopAtL1Error, build_index
from repro.core.exact import exact_ppv_dense_solve
from repro.core.schedule_length import LengthScheduledPPV, length_partition_mass
from tests.conftest import ALPHA, FIG3_HUBS


@pytest.fixture(scope="module")
def engine(cyclic_graph):
    return LengthScheduledPPV(cyclic_graph, alpha=ALPHA)


class TestLengthSchedule:
    def test_converges_to_exact(self, engine, cyclic_graph):
        result = engine.query(0, stop=StopAfterIterations(300))
        expected = exact_ppv_dense_solve(cyclic_graph, 0, alpha=ALPHA)
        np.testing.assert_allclose(result.scores, expected, atol=1e-9)

    def test_level_masses_are_analytic(self, engine):
        # On a dangling-free graph the increment of level i carries exactly
        # alpha (1-alpha)^i mass — the S^i identity of the Theorem 2 proof.
        result = engine.query(1, stop=StopAfterIterations(10))
        history = result.error_history
        for level in range(len(history) - 1):
            gained = history[level] - history[level + 1]
            assert gained == pytest.approx(
                length_partition_mass(level + 1, ALPHA), abs=1e-12
            )

    def test_error_is_exact_geometric(self, engine):
        result = engine.query(2, stop=StopAfterIterations(7))
        for level, error in enumerate(result.error_history):
            assert error == pytest.approx((1 - ALPHA) ** (level + 1), abs=1e-12)

    def test_accuracy_aware_stopping(self, engine):
        result = engine.query(0, stop=StopAtL1Error(0.05))
        assert result.l1_error <= 0.05

    def test_monotone_underestimate(self, engine, cyclic_graph):
        exact = exact_ppv_dense_solve(cyclic_graph, 0, alpha=ALPHA)
        previous = np.zeros(cyclic_graph.num_nodes)
        for eta in (0, 2, 5):
            scores = engine.query(0, stop=StopAfterIterations(eta)).scores
            assert np.all(scores >= previous - 1e-15)
            assert np.all(scores <= exact + 1e-12)
            previous = scores

    def test_invalid_inputs(self, cyclic_graph):
        with pytest.raises(ValueError):
            LengthScheduledPPV(cyclic_graph, alpha=1.0)
        engine = LengthScheduledPPV(cyclic_graph)
        with pytest.raises(ValueError):
            engine.query(99)

    def test_hub_schedule_beats_length_schedule_per_iteration(self, fig1_graph):
        # The ablation claim: at equal iteration counts, hub-length
        # partitions cover far more mass (every hub-free tour of any
        # length lands in iteration 0).
        index = build_index(fig1_graph, FIG3_HUBS, epsilon=1e-12, clip=0.0)
        hub_engine = FastPPV(fig1_graph, index, delta=0.0)
        length_engine = LengthScheduledPPV(fig1_graph, alpha=ALPHA)
        for eta in (0, 1, 2):
            hub_error = hub_engine.query(0, stop=StopAfterIterations(eta)).l1_error
            length_error = length_engine.query(
                0, stop=StopAfterIterations(eta)
            ).l1_error
            assert hub_error <= length_error + 1e-12


class TestLevelMass:
    def test_level_zero(self):
        assert length_partition_mass(0, 0.15) == pytest.approx(0.15)

    def test_geometric_decay(self):
        masses = [length_partition_mass(i, 0.15) for i in range(10)]
        assert sum(masses) == pytest.approx(1 - 0.85**10, abs=1e-12)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            length_partition_mass(-1)
