"""Unit contracts of :mod:`repro.obs`: the metrics registry (kinds,
labels, idempotent registration, snapshot/merge, Prometheus rendering),
the tracer (ring bound, context propagation, thread-local activation,
JSONL log), and the slow-query log.

The histogram-merge edge cases here back the fleet aggregation paths:
``Histogram.merge`` is what the shard router folds per-shard latency
with, so empty fleets, mismatched bucket edges and dead shards must
behave exactly as the legacy ``LatencyHistogram.merge`` did.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observability,
    SlowQueryLog,
    Tracer,
    activate,
    cost_counters,
    current_span,
    render_prometheus,
    span_tree,
)
from repro.serving.service import LatencyHistogram


# --------------------------------------------------------------------- #
# Metric kinds


def test_counter_inc_and_value():
    counter = Counter("c", "help")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    assert counter.samples() == [{"labels": [], "value": 3.5}]


def test_labelled_counter_children():
    counter = Counter("c", "", labelnames=("family",))
    counter.labels("ppv").inc()
    counter.labels("ppv").inc()
    counter.labels("top_k").inc(5)
    assert counter.samples() == [
        {"labels": ["ppv"], "value": 2},
        {"labels": ["top_k"], "value": 5},
    ]
    with pytest.raises(ValueError):
        counter.inc()  # labelled metric: must go through labels()
    with pytest.raises(ValueError):
        counter.labels("a", "b")  # wrong label arity


def test_gauge_set_and_dec():
    gauge = Gauge("g")
    gauge.set(10)
    gauge.dec(3)
    assert gauge.value == 7


def test_histogram_record_and_snapshot():
    hist = Histogram(bounds=(0.1, 1.0))
    hist.record(0.05)
    hist.record(0.5)
    hist.record(5.0)
    snap = hist.snapshot()
    assert snap["bounds"] == [0.1, 1.0]
    assert snap["counts"] == [1, 1, 1]
    assert snap["count"] == 3
    assert snap["total_seconds"] == pytest.approx(5.55)


def test_histogram_is_the_legacy_latency_histogram():
    # Back-compat alias: the serving module re-exports Histogram under
    # its pre-obs name, with the positional-bounds __init__ intact.
    assert LatencyHistogram is Histogram
    assert LatencyHistogram().bounds == DEFAULT_LATENCY_BOUNDS


# --------------------------------------------------------------------- #
# Histogram.merge edge cases (fleet aggregation)


def test_merge_of_nothing_is_empty_default_bounds():
    merged = Histogram.merge([])
    assert merged["bounds"] == list(DEFAULT_LATENCY_BOUNDS)
    assert merged["count"] == 0
    assert sum(merged["counts"]) == 0


def test_merge_empty_with_empty():
    a, b = Histogram((0.5, 1.0)).snapshot(), Histogram((0.5, 1.0)).snapshot()
    merged = Histogram.merge([a, b])
    assert merged["bounds"] == [0.5, 1.0]
    assert merged["counts"] == [0, 0, 0]
    assert merged["count"] == 0
    assert merged["total_seconds"] == 0.0


def test_merge_mismatched_bounds_raises():
    a = Histogram((0.5, 1.0)).snapshot()
    b = Histogram((0.5, 2.0)).snapshot()
    with pytest.raises(ValueError, match="different"):
        Histogram.merge([a, b])


def test_merge_disjoint_bounds_raises():
    a = Histogram((0.1, 0.2)).snapshot()
    b = Histogram((5.0, 10.0)).snapshot()
    with pytest.raises(ValueError, match="different"):
        Histogram.merge([a, b])


def test_merge_after_snapshot_is_stable():
    # A merged snapshot must not alias its inputs: recording into the
    # source histograms after the merge leaves the merged dict alone.
    source = Histogram((1.0,))
    source.record(0.5)
    snap = source.snapshot()
    merged = Histogram.merge([snap, snap])
    before = json.dumps(merged, sort_keys=True)
    source.record(0.5)
    source.record(2.0)
    assert json.dumps(merged, sort_keys=True) == before
    assert merged["count"] == 2


def test_fleet_aggregation_with_dead_shard():
    # The router merges whatever shards answered; a dead shard simply
    # contributes no snapshot, and totals reflect the survivors.
    shard_a = Histogram((1.0,))
    shard_a.record(0.5)
    shard_b = Histogram((1.0,))
    shard_b.record(0.5)
    shard_b.record(3.0)
    replies = [shard_a.snapshot(), shard_b.snapshot()]  # shard C is dead
    merged = Histogram.merge(replies)
    assert merged["count"] == 3
    assert merged["counts"] == [2, 1]


# --------------------------------------------------------------------- #
# Registry


def test_registry_registration_is_idempotent():
    registry = MetricsRegistry()
    first = registry.counter("hits", "help text")
    again = registry.counter("hits", "different help")
    assert first is again
    assert registry.names() == ("hits",)


def test_registry_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("metric")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("metric")
    with pytest.raises(ValueError, match="already registered"):
        registry.histogram("metric")


def test_function_backed_metrics_read_at_snapshot_time():
    registry = MetricsRegistry()
    state = {"reads": 0}
    registry.counter_func("reads_total", "reads", lambda: state["reads"])
    registry.gauge_func(
        "per_shard",
        "per-shard reads",
        lambda: {("0",): state["reads"], ("1",): 2 * state["reads"]},
        labelnames=("shard",),
    )
    state["reads"] = 7
    snap = registry.snapshot()
    assert snap["reads_total"]["samples"] == [{"labels": [], "value": 7}]
    assert snap["per_shard"]["samples"] == [
        {"labels": ["0"], "value": 7},
        {"labels": ["1"], "value": 14},
    ]


def test_histogram_func_wraps_existing_snapshot():
    registry = MetricsRegistry()
    latency = Histogram((1.0,))
    latency.record(0.5)
    registry.histogram_func("latency", "", latency.snapshot)
    sample = registry.snapshot()["latency"]["samples"][0]
    assert sample["histogram"]["count"] == 1


def test_registry_snapshot_merge_sums_and_folds():
    def worker_snapshot(hits, depth, seconds):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc(hits)
        registry.gauge("queue_depth").set(depth)
        hist = registry.histogram("latency", bounds=(1.0,))
        for value in seconds:
            hist.record(value)
        return registry.snapshot()

    merged = MetricsRegistry.merge(
        [
            worker_snapshot(3, 2, [0.5]),
            worker_snapshot(4, 1, [0.5, 2.0]),
        ]
    )
    assert merged["hits_total"]["samples"] == [{"labels": [], "value": 7}]
    assert merged["queue_depth"]["samples"] == [{"labels": [], "value": 3}]
    hist = merged["latency"]["samples"][0]["histogram"]
    assert hist["count"] == 3
    assert hist["counts"] == [2, 1]


def test_registry_merge_type_conflict_raises():
    a = MetricsRegistry()
    a.counter("metric").inc()
    b = MetricsRegistry()
    b.histogram("metric").record(0.5)
    with pytest.raises(ValueError, match="cannot merge metric"):
        MetricsRegistry.merge([a.snapshot(), b.snapshot()])


def test_render_prometheus_exposition():
    registry = MetricsRegistry()
    registry.counter("requests_total", "Requests.").inc(5)
    registry.counter(
        "fetches_total", "Per-shard.", labelnames=("shard",)
    ).labels("0").inc(2)
    hist = registry.histogram("latency_seconds", "Latency.", bounds=(0.1, 1.0))
    hist.record(0.05)
    hist.record(0.5)
    text = render_prometheus(registry.snapshot())
    assert "# HELP requests_total Requests.\n" in text
    assert "# TYPE requests_total counter\n" in text
    assert "requests_total 5\n" in text
    assert 'fetches_total{shard="0"} 2\n' in text
    # Cumulative buckets with le labels, +Inf overflow, _sum and _count.
    assert 'latency_seconds_bucket{le="0.1"} 1\n' in text
    assert 'latency_seconds_bucket{le="1.0"} 2\n' in text
    assert 'latency_seconds_bucket{le="+Inf"} 2\n' in text
    assert "latency_seconds_count 2\n" in text


# --------------------------------------------------------------------- #
# Tracing


def test_span_lifecycle_and_context_propagation():
    tracer = Tracer()
    root = tracer.start_span("client.request", verb="query")
    child = tracer.start_span("server.query", root.context(), worker=0)
    grandchild = child.child("service.batch", batch_size=4)
    grandchild.end()
    child.end()
    root.end()
    spans = tracer.spans(trace_id=root.trace_id)
    assert [s["name"] for s in spans] == [
        "service.batch", "server.query", "client.request",
    ]
    assert {s["trace"] for s in spans} == {root.trace_id}
    by_name = {s["name"]: s for s in spans}
    assert by_name["server.query"]["parent"] == root.span_id
    assert by_name["service.batch"]["parent"] == child.span_id
    assert by_name["client.request"]["parent"] is None
    assert by_name["client.request"]["duration"] >= 0.0


def test_span_events_and_idempotent_end():
    tracer = Tracer()
    span = tracer.start_span("work")
    span.event("fault", site="ppv_store.read", hit=3)
    span.end()
    span.end()  # second end is a no-op, not a duplicate record
    assert len(tracer) == 1
    record = tracer.spans()[0]
    assert record["events"][0]["name"] == "fault"
    assert record["events"][0]["site"] == "ppv_store.read"


def test_tracer_ring_is_bounded():
    tracer = Tracer(capacity=4)
    for index in range(10):
        tracer.start_span(f"span-{index}").end()
    assert len(tracer) == 4
    assert [s["name"] for s in tracer.spans()] == [
        "span-6", "span-7", "span-8", "span-9",
    ]
    assert [s["name"] for s in tracer.spans(limit=2)] == [
        "span-8", "span-9",
    ]


def test_tracer_jsonl_log(tmp_path):
    path = tmp_path / "spans.jsonl"
    tracer = Tracer(log_path=path)
    tracer.start_span("logged", family="ppv").end()
    tracer.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(records) == 1
    assert records[0]["name"] == "logged"
    assert records[0]["attrs"] == {"family": "ppv"}


def test_activate_sets_thread_local_current_span():
    tracer = Tracer()
    assert current_span() is None
    outer = tracer.start_span("outer")
    inner = tracer.start_span("inner", outer.context())
    with activate(outer):
        assert current_span() is outer
        with activate(inner):
            assert current_span() is inner
        assert current_span() is outer
    assert current_span() is None


def test_current_span_is_per_thread():
    tracer = Tracer()
    span = tracer.start_span("main-thread")
    seen = []
    with activate(span):
        thread = threading.Thread(target=lambda: seen.append(current_span()))
        thread.start()
        thread.join()
    assert seen == [None]


def test_span_tree_orphans_become_roots():
    tracer = Tracer()
    root = tracer.start_span("root")
    child = tracer.start_span("child", root.context())
    child.end()
    root.end()
    orphan = {
        "trace": root.trace_id, "span": "ffff", "parent": "gone",
        "name": "orphan", "start": 0.0,
    }
    roots, children = span_tree(tracer.spans() + [orphan])
    assert {r["name"] for r in roots} == {"root", "orphan"}
    assert [c["name"] for c in children[root.span_id]] == ["child"]


# --------------------------------------------------------------------- #
# Slow-query log + cost accounting


def test_slow_query_log_ring_and_span_attachment(tmp_path):
    tracer = Tracer()
    span = tracer.start_span("service.batch")
    span.end()
    log = SlowQueryLog(0.1, capacity=2, path=tmp_path / "slow.jsonl")
    log.record({"family": "ppv", "seconds": 0.5, "trace": span.trace_id})
    log.record({"family": "ppv", "seconds": 0.7})
    log.record({"family": "top_k", "seconds": 0.9})
    assert len(log) == 2  # capacity bound: oldest entry dropped
    entries = log.entries(tracer=tracer)
    assert [e["seconds"] for e in entries] == [0.7, 0.9]
    assert all("at" in e for e in entries)
    # The dropped entry still made it to the JSONL sink.
    log.close()
    lines = (tmp_path / "slow.jsonl").read_text().splitlines()
    assert len(lines) == 3

    fresh = SlowQueryLog(0.1)
    fresh.record({"seconds": 0.5, "trace": span.trace_id})
    traced = fresh.entries(tracer=tracer)[0]
    assert [s["name"] for s in traced["spans"]] == ["service.batch"]


def test_cost_counters_duck_typing():
    class DiskResult:
        cluster_faults = 3
        hub_reads = 7
        truncated = False

    class Inner:
        iterations = 2

    class Wrapped:
        result = Inner()
        cluster_faults = 1

    assert cost_counters(DiskResult()) == {
        "cluster_faults": 3, "hub_reads": 7, "truncated": False,
    }
    assert cost_counters(Wrapped()) == {"iterations": 2, "cluster_faults": 1}
    assert cost_counters(object()) == {}


def test_observability_bundle_defaults():
    obs = Observability()
    assert obs.slow_log is None
    other = Observability()
    assert obs.registry is not other.registry  # private per instance
    assert obs.tracer is not other.tracer
    configured = Observability(slow_query_seconds=0.25)
    assert configured.slow_log is not None
    assert configured.slow_log.threshold == 0.25
