"""Unit tests for prime subgraphs / prime PPVs (Definition 2)."""

import numpy as np
import pytest

from repro.core.exact import exact_ppv_dense_solve
from repro.core.prime import PrimePPV, prime_ppv, prime_subgraph_nodes
from repro.core.reachability import brute_force_increment
from repro.graph import from_edges
from tests.conftest import A, ALPHA, B, C, D, E, F, FIG3_HUBS, G, H


def dense_prime(graph, source, hub_mask, **kwargs):
    return prime_ppv(graph, source, hub_mask, **kwargs).to_dense(graph.num_nodes)


class TestPrimePPVCorrectness:
    def test_matches_brute_force_level0(self, fig1_graph, fig1_hub_mask):
        got = dense_prime(fig1_graph, A, fig1_hub_mask, alpha=ALPHA, epsilon=1e-12)
        expected = brute_force_increment(
            fig1_graph, A, set(FIG3_HUBS), 0, max_length=10, alpha=ALPHA
        )
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_matches_brute_force_from_hub_source(self, fig1_graph, fig1_hub_mask):
        # Source is itself a hub: its initial expansion must still happen.
        got = dense_prime(fig1_graph, D, fig1_hub_mask, alpha=ALPHA, epsilon=1e-12)
        expected = brute_force_increment(
            fig1_graph, D, set(FIG3_HUBS), 0, max_length=10, alpha=ALPHA
        )
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_cyclic_hub_absorbs_returning_mass(self):
        # 0 -> 1 -> 0 cycle with node 0 a hub: mass returning to 0 must be
        # scored once and recorded as border mass, not re-expanded.
        graph = from_edges([(0, 1), (1, 0)], num_nodes=2)
        hub_mask = np.array([True, False])
        result = prime_ppv(graph, 0, hub_mask, alpha=ALPHA, epsilon=1e-15)
        # Tours with no interior hubs from 0: (0), (0,1), (0,1,0) — longer
        # ones revisit 0 in the interior.
        r_0 = ALPHA + ALPHA * (1 - ALPHA) ** 2  # (0) and (0,1,0)
        r_1 = ALPHA * (1 - ALPHA)  # (0,1)
        assert result.score_of(0) == pytest.approx(r_0, abs=1e-12)
        assert result.score_of(1) == pytest.approx(r_1, abs=1e-12)
        assert result.border_hubs.tolist() == [0]
        assert result.border_masses[0] == pytest.approx((1 - ALPHA) ** 2, abs=1e-12)

    def test_no_hubs_gives_full_ppv(self, cyclic_graph):
        hub_mask = np.zeros(cyclic_graph.num_nodes, dtype=bool)
        got = dense_prime(cyclic_graph, 0, hub_mask, alpha=ALPHA, epsilon=1e-14)
        expected = exact_ppv_dense_solve(cyclic_graph, 0, alpha=ALPHA)
        np.testing.assert_allclose(got, expected, atol=1e-9)
        assert prime_ppv(
            cyclic_graph, 0, hub_mask, alpha=ALPHA
        ).border_hubs.size == 0

    def test_all_hubs_gives_one_step(self, fig1_graph):
        # Every node a hub: only the trivial tour and direct edges survive.
        hub_mask = np.ones(fig1_graph.num_nodes, dtype=bool)
        result = prime_ppv(fig1_graph, A, hub_mask, alpha=ALPHA, epsilon=1e-14)
        assert result.score_of(A) == pytest.approx(ALPHA)
        for nbr in fig1_graph.out_neighbors(A):
            expected = ALPHA * (1 - ALPHA) / fig1_graph.out_degree(A)
            assert result.score_of(int(nbr)) == pytest.approx(expected)

    def test_border_masses_relate_to_scores(self, fig1_graph, fig1_hub_mask):
        # For a non-source border hub h: score(h) == alpha * border_mass(h).
        result = prime_ppv(fig1_graph, A, fig1_hub_mask, alpha=ALPHA, epsilon=1e-14)
        for hub, mass in zip(result.border_hubs, result.border_masses):
            assert result.score_of(int(hub)) == pytest.approx(ALPHA * mass, abs=1e-12)

    def test_fig3_border_hubs_of_a(self, fig1_graph, fig1_hub_mask):
        # From a, the directly reachable hubs without crossing another hub
        # are b, d and f (g is not a hub, so f->g->d also reaches d).
        result = prime_ppv(fig1_graph, A, fig1_hub_mask, alpha=ALPHA)
        assert result.border_hubs.tolist() == sorted(FIG3_HUBS)


class TestEpsilonTruncation:
    def test_large_epsilon_shrinks_support(self, small_social):
        hub_mask = np.zeros(small_social.num_nodes, dtype=bool)
        fine = prime_ppv(small_social, 0, hub_mask, epsilon=1e-10)
        coarse = prime_ppv(small_social, 0, hub_mask, epsilon=1e-3)
        assert coarse.nodes.size <= fine.nodes.size
        assert coarse.mass <= fine.mass + 1e-12

    def test_truncation_error_small(self, small_social):
        hub_mask = np.zeros(small_social.num_nodes, dtype=bool)
        result = prime_ppv(small_social, 0, hub_mask, epsilon=1e-8)
        # With no hubs, the prime PPV is the full PPV up to truncation.
        assert result.mass == pytest.approx(1.0, abs=1e-3)

    def test_invalid_epsilon(self, fig1_graph, fig1_hub_mask):
        with pytest.raises(ValueError):
            prime_ppv(fig1_graph, A, fig1_hub_mask, epsilon=0.0)


class TestPrimePPVStructure:
    def test_support_sorted_unique(self, small_social_index):
        for entry in small_social_index.entries.values():
            assert np.all(np.diff(entry.nodes) > 0)
            assert np.all(np.diff(entry.border_hubs) > 0)

    def test_to_dense_and_score_of_agree(self, fig1_graph, fig1_hub_mask):
        result = prime_ppv(fig1_graph, A, fig1_hub_mask, alpha=ALPHA)
        dense = result.to_dense(fig1_graph.num_nodes)
        for node in range(fig1_graph.num_nodes):
            assert dense[node] == pytest.approx(result.score_of(node))

    def test_score_of_missing_is_zero(self, fig1_graph, fig1_hub_mask):
        result = prime_ppv(fig1_graph, E, fig1_hub_mask, alpha=ALPHA)
        # E is dangling: only the trivial tour exists.
        assert result.score_of(A) == 0.0
        assert result.score_of(E) == pytest.approx(ALPHA)

    def test_nbytes_positive(self, fig1_graph, fig1_hub_mask):
        assert prime_ppv(fig1_graph, A, fig1_hub_mask).nbytes > 0

    def test_source_out_of_range(self, fig1_graph, fig1_hub_mask):
        with pytest.raises(ValueError):
            prime_ppv(fig1_graph, 99, fig1_hub_mask)

    def test_wrong_mask_shape(self, fig1_graph):
        with pytest.raises(ValueError):
            prime_ppv(fig1_graph, A, np.zeros(3, dtype=bool))


class TestPrimeSubgraphNodes:
    def test_source_always_included(self, fig1_graph, fig1_hub_mask):
        nodes = prime_subgraph_nodes(fig1_graph, A, fig1_hub_mask)
        assert A in nodes.tolist()

    def test_hubs_block_exploration(self, fig1_graph, fig1_hub_mask):
        # From a, node e is reachable only through hubs b or d, so it is
        # outside the prime subgraph; g is reachable via non-hub f... no,
        # f is a hub, so g is blocked as well.
        nodes = set(prime_subgraph_nodes(fig1_graph, A, fig1_hub_mask).tolist())
        assert E not in nodes
        assert G not in nodes
        assert {A, B, C, D, F, H} == nodes


class TestSingleSourceLockstep:
    """prime_ppv is a wrapper over prime_push_many: the lockstep between
    the scalar and batched kernels is structural, pinned bit-for-bit."""

    def _assert_bitwise_row(self, graph, source, hub_mask, **kwargs):
        from repro.core.prime import prime_push_many

        single = prime_ppv(graph, source, hub_mask, **kwargs)
        scores, border, edges = prime_push_many(
            graph, np.array([source]), hub_mask, **kwargs
        )
        # Exact equality, not allclose: one kernel, one summation order.
        np.testing.assert_array_equal(
            single.to_dense(graph.num_nodes), scores[0]
        )
        dense_border = np.zeros(graph.num_nodes)
        dense_border[single.border_hubs] = single.border_masses
        np.testing.assert_array_equal(dense_border, border[0])
        assert single.edges_touched == int(edges[0])

    def test_fig1_sources_bitwise(self, fig1_graph, fig1_hub_mask):
        for source in (A, D, E, H):
            self._assert_bitwise_row(
                fig1_graph, source, fig1_hub_mask, alpha=ALPHA, epsilon=1e-12
            )

    def test_social_graph_bitwise(self, small_social, small_social_index):
        for source in (0, 57, 200, int(small_social_index.hubs[0])):
            self._assert_bitwise_row(
                small_social, source, small_social_index.hub_mask
            )

    def test_sparse_support_matches_dense_row(self, small_social,
                                              small_social_index):
        result = prime_ppv(small_social, 3, small_social_index.hub_mask)
        assert np.all(result.scores > 0.0)
        assert np.all(np.diff(result.nodes) > 0)
        assert np.all(np.diff(result.border_hubs) > 0)


class TestWorkAccounting:
    def test_edges_touched_positive(self, fig1_graph, fig1_hub_mask):
        result = prime_ppv(fig1_graph, A, fig1_hub_mask, alpha=ALPHA)
        assert result.edges_touched > 0

    def test_more_hubs_less_work(self, small_social):
        from repro.core.hubs import select_hubs

        few = np.zeros(small_social.num_nodes, dtype=bool)
        few[select_hubs(small_social, 10)] = True
        many = np.zeros(small_social.num_nodes, dtype=bool)
        many[select_hubs(small_social, 100)] = True
        source = next(
            q for q in range(small_social.num_nodes) if not many[q]
        )
        work_few = prime_ppv(small_social, source, few).edges_touched
        work_many = prime_ppv(small_social, source, many).edges_touched
        assert work_many <= work_few

    def test_clip_preserves_edges_touched(self, fig1_graph, fig1_hub_mask):
        from repro.core.index import clip_prime_ppv

        raw = prime_ppv(fig1_graph, A, fig1_hub_mask, alpha=ALPHA)
        clipped = clip_prime_ppv(raw, 0.05)
        assert clipped.edges_touched == raw.edges_touched
