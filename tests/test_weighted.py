"""Tests for weighted graphs across the whole stack.

The paper's framework "works for a general graph"; weighted edges are the
natural database use case (ObjectRank-style typed relationships).  Weights
flow through one place — ``DiGraph.edge_probabilities`` — so these tests
exercise every kernel against analytic expectations and against the
unweighted equivalence (all-equal weights must change nothing).
"""

import numpy as np
import pytest

from repro import FastPPV, StopAfterIterations, build_index, from_edges
from repro.baselines import HubRankP, MonteCarlo
from repro.baselines.push import forward_push
from repro.core.exact import exact_ppv, exact_ppv_dense_solve
from repro.core.hitting import exact_hitting, scheduled_hitting
from repro.core.prime import prime_ppv
from repro.core.reachability import tour_reachability
from repro.graph import GraphBuilder, from_weighted_edges

ALPHA = 0.15


@pytest.fixture()
def weighted_triangle():
    # 0 -> 1 (weight 3), 0 -> 2 (weight 1), 1 -> 0, 2 -> 0.
    return from_weighted_edges([(0, 1, 3.0), (0, 2, 1.0), (1, 0, 1.0), (2, 0, 1.0)])


class TestWeightedDiGraph:
    def test_is_weighted_flags(self, weighted_triangle, fig1_graph):
        assert weighted_triangle.is_weighted
        assert not fig1_graph.is_weighted
        assert fig1_graph.weights is None

    def test_edge_probabilities_normalised(self, weighted_triangle):
        probs = weighted_triangle.edge_probabilities
        assert probs[0] == pytest.approx(0.75)  # 0 -> 1
        assert probs[1] == pytest.approx(0.25)  # 0 -> 2
        assert weighted_triangle.edge_probability(0, 1) == pytest.approx(0.75)

    def test_unweighted_probabilities_uniform(self, fig1_graph):
        probs = fig1_graph.edge_probabilities
        start = fig1_graph.indptr[0]
        degree = fig1_graph.out_degree(0)
        np.testing.assert_allclose(
            probs[start : start + degree], 1.0 / degree
        )

    def test_missing_edge_probability_raises(self, weighted_triangle):
        with pytest.raises(ValueError, match="no edge"):
            weighted_triangle.edge_probability(1, 2)

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            from_weighted_edges([(0, 1, 0.0)])
        with pytest.raises(ValueError):
            from_weighted_edges([(0, 1, -2.0)])

    def test_parallel_edges_sum_weights(self):
        builder = GraphBuilder(num_nodes=2)
        builder.add_edge(0, 1, 1.0)
        builder.add_edge(0, 1, 2.0)
        graph = builder.build()
        assert graph.num_edges == 1
        assert graph.weights[0] == pytest.approx(3.0)

    def test_reverse_carries_weights(self, weighted_triangle):
        rev = weighted_triangle.reverse()
        assert rev.is_weighted
        # Edge 0 -> 1 (weight 3) becomes 1 -> 0 with the same raw weight.
        start = rev.indptr[1]
        row = rev.indices[start : rev.indptr[2]]
        position = int(np.nonzero(row == 0)[0][0])
        assert rev.weights[start + position] == pytest.approx(3.0)

    def test_subgraph_carries_weights(self, weighted_triangle):
        sub, node_map = weighted_triangle.subgraph([0, 1])
        assert sub.is_weighted
        assert node_map.tolist() == [0, 1]
        assert sub.edge_probability(0, 1) == pytest.approx(1.0)  # only edge left

    def test_equality_considers_weights(self):
        a = from_weighted_edges([(0, 1, 1.0), (1, 0, 1.0)])
        b = from_weighted_edges([(0, 1, 2.0), (1, 0, 1.0)])
        c = from_edges([(0, 1), (1, 0)])
        assert a != b
        assert a != c

    def test_transition_matrix_weighted(self, weighted_triangle):
        matrix = weighted_triangle.transition_matrix().toarray()
        assert matrix[0, 1] == pytest.approx(0.75)
        assert matrix[0, 2] == pytest.approx(0.25)


class TestWeightedEquivalence:
    """All-equal weights must reproduce the unweighted results exactly."""

    def make_pair(self):
        edges = [(0, 1), (1, 2), (2, 0), (0, 2), (2, 1)]
        unweighted = from_edges(edges)
        weighted = from_weighted_edges([(s, d, 7.0) for s, d in edges])
        return unweighted, weighted

    def test_exact_ppv_equal(self):
        unweighted, weighted = self.make_pair()
        np.testing.assert_allclose(
            exact_ppv(unweighted, 0), exact_ppv(weighted, 0), atol=1e-12
        )

    def test_forward_push_equal(self):
        unweighted, weighted = self.make_pair()
        a, _ = forward_push(unweighted, 0, threshold=1e-8)
        b, _ = forward_push(weighted, 0, threshold=1e-8)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_prime_ppv_equal(self):
        unweighted, weighted = self.make_pair()
        mask = np.array([False, True, False])
        a = prime_ppv(unweighted, 0, mask, epsilon=1e-12)
        b = prime_ppv(weighted, 0, mask, epsilon=1e-12)
        np.testing.assert_allclose(
            a.to_dense(3), b.to_dense(3), atol=1e-12
        )

    def test_montecarlo_equal(self):
        unweighted, weighted = self.make_pair()
        a = MonteCarlo(unweighted, num_hubs=0, samples_per_query=500, seed=5)
        b = MonteCarlo(weighted, num_hubs=0, samples_per_query=500, seed=5)
        # Distributions agree statistically (same walk law, different
        # sampling code path).
        diff = np.abs(a.query(0).scores - b.query(0).scores).sum()
        assert diff < 0.15


class TestWeightedPPV:
    def test_exact_solvers_agree(self, weighted_triangle):
        power = exact_ppv(weighted_triangle, 0, alpha=ALPHA)
        solve = exact_ppv_dense_solve(weighted_triangle, 0, alpha=ALPHA)
        np.testing.assert_allclose(power, solve, atol=1e-10)

    def test_weight_shifts_scores(self, weighted_triangle):
        scores = exact_ppv(weighted_triangle, 0, alpha=ALPHA)
        # Node 1 receives 3x the step probability of node 2.
        assert scores[1] > scores[2]
        assert scores[1] / scores[2] == pytest.approx(3.0, rel=0.01)

    def test_tour_reachability_weighted(self, weighted_triangle):
        value = tour_reachability(weighted_triangle, (0, 1), ALPHA)
        assert value == pytest.approx(ALPHA * (1 - ALPHA) * 0.75)

    def test_fastppv_converges_weighted(self, weighted_triangle):
        index = build_index(
            weighted_triangle, [1], alpha=ALPHA, epsilon=1e-14, clip=0.0
        )
        engine = FastPPV(weighted_triangle, index, delta=0.0)
        result = engine.query(0, stop=StopAfterIterations(80))
        expected = exact_ppv_dense_solve(weighted_triangle, 0, alpha=ALPHA)
        np.testing.assert_allclose(result.scores, expected, atol=1e-9)

    def test_fastppv_larger_weighted_graph(self, small_social):
        # Attach random weights to a real-ish topology and check the
        # engine still converges to the weighted exact PPV.
        rng = np.random.default_rng(0)
        triples = [
            (s, d, float(rng.uniform(0.5, 4.0))) for s, d in small_social.edges()
        ]
        graph = from_weighted_edges(triples, num_nodes=small_social.num_nodes)
        from repro.core.hubs import select_hubs

        hubs = select_hubs(graph, 30)
        index = build_index(graph, hubs, clip=0.0)
        engine = FastPPV(graph, index, delta=0.0)
        result = engine.query(9, stop=StopAfterIterations(25))
        expected = exact_ppv(graph, 9)
        assert np.abs(result.scores - expected).sum() < 0.01

    def test_hubrank_weighted(self, weighted_triangle):
        engine = HubRankP(weighted_triangle, num_hubs=1, push_threshold=1e-8)
        result = engine.query(0)
        expected = exact_ppv(weighted_triangle, 0)
        assert np.abs(result.scores - expected).sum() < 1e-4


class TestWeightedHitting:
    def test_exact_weighted_hitting(self, weighted_triangle):
        # f_1(0) with first-step probability 0.75 plus the 0->2->0->...
        # detour; must exceed the unweighted value.
        weighted = exact_hitting(weighted_triangle, 0, 1, beta=0.85)
        unweighted = exact_hitting(
            from_edges([(0, 1), (0, 2), (1, 0), (2, 0)]), 0, 1, beta=0.85
        )
        assert weighted > unweighted

    def test_scheduled_matches_exact_weighted(self, weighted_triangle):
        mask = np.array([False, False, True])
        estimate = scheduled_hitting(
            weighted_triangle, 0, 1, mask, beta=0.85, max_levels=80,
            epsilon=1e-12,
        )
        expected = exact_hitting(weighted_triangle, 0, 1, beta=0.85)
        assert estimate.value == pytest.approx(expected, abs=1e-6)
