"""Dynamic index maintenance meets the serving stack.

:func:`repro.core.dynamic.update_index` produces a refreshed index
after a graph change; these tests drive its two serving on-ramps:

* :meth:`PPVService.update_index` — the in-process hot swap, including
  under concurrent load (results match the old world or the new one,
  never a blend);
* the TCP ``swap_index`` verb — which loads a saved ``.fppv`` and swaps
  it into the worker's service behind the admission gate.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import FastPPV, StopAfterIterations, build_index, select_hubs
from repro.core.dynamic import add_edges, update_index
from repro.server import PPVClient, PPVServer, ServerError
from repro.serving import PPVService, QuerySpec
from repro.storage import save_index

ETA = 2
NEW_EDGES = [(4, 7), (7, 5), (2, 0)]


@pytest.fixture(scope="module")
def worlds(request):
    """(old graph, old index, new graph, refreshed index)."""
    fig1 = request.getfixturevalue("fig1_graph")
    old_index = build_index(fig1, select_hubs(fig1, num_hubs=3))
    new_graph = add_edges(fig1, NEW_EDGES)
    new_index, recomputed = update_index(fig1, new_graph, old_index)
    assert recomputed >= 1  # the change must actually touch hubs
    return fig1, old_index, new_graph, new_index


def _oracle(graph, index, node: int) -> np.ndarray:
    result = FastPPV(graph, index).query(
        node, stop=StopAfterIterations(ETA)
    )
    return result.scores


def _spec(node: int) -> QuerySpec:
    return QuerySpec(node, stop=StopAfterIterations(ETA))


class TestServiceUpdateIndex:
    def test_refreshed_index_serves_new_graph_results(self, worlds):
        old_graph, old_index, new_graph, new_index = worlds
        with PPVService.open(old_index, graph=old_graph) as service:
            before = service.query(_spec(4)).scores
            assert np.allclose(
                before, _oracle(old_graph, old_index, 4), atol=1e-12
            )
            service.update_index(new_index, graph=new_graph)
            after = service.query(_spec(4)).scores
            assert np.allclose(
                after, _oracle(new_graph, new_index, 4), atol=1e-12
            )
            # The edge (4, 7) we added is visible: node 4 now reaches 7.
            assert after[7] > 0

    def test_update_invalidates_cached_results(self, worlds):
        old_graph, old_index, new_graph, new_index = worlds
        with PPVService.open(old_index, graph=old_graph) as service:
            first = service.query(_spec(4)).scores
            cached = service.query(_spec(4)).scores  # cache hit
            assert np.array_equal(first, cached)
            assert service.stats().cache_hits >= 1
            service.update_index(new_index, graph=new_graph)
            refreshed = service.query(_spec(4)).scores
            assert not np.allclose(refreshed, first, atol=1e-12)

    def test_swap_under_load_never_blends_worlds(self, worlds):
        """Hammer queries from threads while swapping back and forth:
        every result equals one world's oracle exactly — an answer
        mixing the old graph with the new index (or vice versa) would
        match neither."""
        old_graph, old_index, new_graph, new_index = worlds
        nodes = list(range(old_graph.num_nodes))
        oracles = {
            node: (
                _oracle(old_graph, old_index, node),
                _oracle(new_graph, new_index, node),
            )
            for node in nodes
        }
        service = PPVService.open(old_index, graph=old_graph, cache_size=0)
        stop = threading.Event()
        mismatches: list = []

        def hammer() -> None:
            i = 0
            while not stop.is_set():
                node = nodes[i % len(nodes)]
                i += 1
                try:
                    scores = service.query(_spec(node)).scores
                except RuntimeError:
                    return  # service closed under us: structured, fine
                old_ok = np.allclose(scores, oracles[node][0], atol=1e-9)
                new_ok = np.allclose(scores, oracles[node][1], atol=1e-9)
                if not (old_ok or new_ok):
                    mismatches.append(node)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(6):
                service.update_index(new_index, graph=new_graph)
                service.update_index(old_index, graph=old_graph)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            service.close()
        assert not mismatches


class TestServerSwapIndex:
    def test_swap_refreshed_index_over_tcp(self, worlds, tmp_path):
        """The full dynamic loop over the wire: refresh the index after
        a graph change, save it, hot-swap it into a live server."""
        old_graph, old_index, new_graph, new_index = worlds
        path = tmp_path / "refreshed.fppv"
        save_index(new_index, path)
        service = PPVService.open(old_index, graph=old_graph)
        server = PPVServer(service)
        with server.background() as (host, port):
            with PPVClient(host, port) as client:
                # Node 0 routes through the recomputed hub primes,
                # so the swap is observable in its scores.
                before = client.query(0, eta=ETA, top=8)
                reply = client.swap_index(str(path))
                assert reply["swapped"] is True
                after = client.query(0, eta=ETA, top=8)
                # The server swaps the *index* only; the engine keeps
                # its graph, so the post-swap oracle is (old graph,
                # refreshed index).
                oracle = _oracle(old_graph, new_index, 0)
                for node, score in after["top"]:
                    assert abs(oracle[int(node)] - float(score)) <= 1e-9
                assert after["top"] != before["top"]
                stats = client.stats()
                assert stats["server"]["swaps_total"] == 1
        service.close()

    def test_swap_missing_path_is_structured_error(self, worlds, tmp_path):
        old_graph, old_index, _new_graph, _new_index = worlds
        service = PPVService.open(old_index, graph=old_graph)
        server = PPVServer(service)
        with server.background() as (host, port):
            with PPVClient(host, port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.swap_index(str(tmp_path / "nope.fppv"))
                assert excinfo.value.code == "invalid"
                # The failed swap left the old index serving.
                payload = client.query(4, eta=ETA, top=8)
                oracle = _oracle(old_graph, old_index, 4)
                for node, score in payload["top"]:
                    assert abs(oracle[int(node)] - float(score)) <= 1e-9
        service.close()
