"""Figs. 10-11: the number-of-hubs sweep — online accuracy/time and
offline space/time."""

import pytest

from benchmarks.common import BENCH_QUERIES, BENCH_SCALE, emit
from repro import build_index, select_hubs
from repro.experiments import dblp_graph, livejournal_graph, make_workload
from repro.experiments.fig10_11_hubs import fig10_table, fig11_table, run_hub_sweep


def _counts(base: int) -> list[int]:
    return [max(5, int(base * BENCH_SCALE * f)) for f in (0.5, 1.0, 2.0, 4.0)]


@pytest.fixture(scope="module")
def sweeps():
    runs = {}
    for name, graph, base in (
        ("DBLP", dblp_graph(scale=BENCH_SCALE).graph, 150),
        ("LiveJournal", livejournal_graph(scale=BENCH_SCALE), 300),
    ):
        workload = make_workload(graph, num_queries=BENCH_QUERIES, seed=0)
        runs[name] = (graph, run_hub_sweep(graph, workload, _counts(base)))
    return runs


def test_fig10_11_hub_count(benchmark, sweeps):
    tables = []
    for name, (graph, points) in sweeps.items():
        tables.append(fig10_table(points, name))
        tables.append(fig11_table(points, name))
        # Shape assertions: query time decreases (or stays flat) with more
        # hubs; accuracy stays robust (precision within 0.12 of the best).
        times = [p.outcome.online_ms_per_query for p in points]
        assert times[-1] <= times[0] * 1.25
        precisions = [p.outcome.accuracy.precision for p in points]
        assert min(precisions) >= max(precisions) - 0.12
        del graph
    emit("fig10_11_hub_count", *tables)

    # Timing record: index build at the largest DBLP hub count.
    graph = sweeps["DBLP"][0]
    hubs = select_hubs(graph, _counts(150)[-1])
    benchmark(lambda: build_index(graph, hubs))
