"""Workload-aware hub selection.

Expected utility (Eq. 7) weights a node's discriminating power by its
*global* PageRank — the stationary traffic of a uniform random surfer.
When the query workload is known and skewed (most applications: a few
heavy users, a trending topic), the traffic that matters is the
*personalized* traffic of walks started at logged queries.  This module
replaces the popularity factor with exactly that:

    EU_log(v) = traffic_log(v) * out_degree(v)

where ``traffic_log(v)`` is the mean not-yet-stopped visit mass at ``v``
over walks from the logged queries — estimated with one coarse forward
push per (sampled) log entry, so selection stays cheap.  With a uniform
log over all nodes this converges to Eq. 7's PageRank weighting, which is
why the paper's uniform-workload evaluation can use the global score.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.push import forward_push
from repro.graph.digraph import DiGraph
from repro.graph.pagerank import DEFAULT_ALPHA


def workload_traffic(
    graph: DiGraph,
    query_log: np.ndarray | list[int],
    alpha: float = DEFAULT_ALPHA,
    push_threshold: float = 1e-5,
    max_log_samples: int = 200,
    seed: int = 0,
) -> np.ndarray:
    """Per-node expected visit mass of walks from the logged queries.

    A walk's eventual stop distribution from query ``q`` is ``r_q``; its
    *visit* distribution (counting pass-throughs, which is what hub
    sharing exploits) is ``r_q / alpha``.  We estimate ``r_q`` by forward
    push at ``push_threshold`` and average over (at most
    ``max_log_samples`` sampled) log entries.
    """
    log = np.asarray(query_log, dtype=np.int64)
    if log.size == 0:
        raise ValueError("query log must not be empty")
    if log.min() < 0 or log.max() >= graph.num_nodes:
        raise ValueError("query log contains out-of-range nodes")
    if log.size > max_log_samples:
        rng = np.random.default_rng(seed)
        log = rng.choice(log, size=max_log_samples, replace=False)
    traffic = np.zeros(graph.num_nodes)
    for query in log:
        estimate, _ = forward_push(
            graph, int(query), alpha=alpha, threshold=push_threshold
        )
        traffic += estimate
    traffic /= alpha * log.size
    return traffic


def select_hubs_for_workload(
    graph: DiGraph,
    query_log: np.ndarray | list[int],
    num_hubs: int,
    alpha: float = DEFAULT_ALPHA,
    push_threshold: float = 1e-5,
    max_log_samples: int = 200,
    seed: int = 0,
) -> np.ndarray:
    """Top ``num_hubs`` nodes by workload expected utility.

    Returns a sorted ``int64`` array, like
    :func:`repro.core.hubs.select_hubs`.
    """
    if num_hubs < 0:
        raise ValueError("num_hubs must be non-negative")
    num_hubs = min(num_hubs, graph.num_nodes)
    if num_hubs == 0:
        return np.empty(0, dtype=np.int64)
    traffic = workload_traffic(
        graph,
        query_log,
        alpha=alpha,
        push_threshold=push_threshold,
        max_log_samples=max_log_samples,
        seed=seed,
    )
    utility = traffic * graph.out_degrees
    order = np.lexsort((np.arange(graph.num_nodes), -utility))
    return np.sort(order[:num_hubs].astype(np.int64))
