"""Tests for the command-line interface (driven through ``main(argv)``)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    code = main(
        ["generate", "social", "--nodes", "300", "--seed", "1", "--out", str(path)]
    )
    assert code == 0
    return path


@pytest.fixture()
def index_file(graph_file, tmp_path):
    path = tmp_path / "graph.fppv"
    code = main(
        ["index", str(graph_file), "--hubs", "25", "--out", str(path)]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_edge_list(self, graph_file, capsys):
        assert graph_file.exists()
        content = graph_file.read_text()
        assert content.startswith("#")
        assert len(content.splitlines()) > 100

    def test_bibliographic_kind(self, tmp_path, capsys):
        path = tmp_path / "bib.txt"
        code = main(
            ["generate", "bibliographic", "--nodes", "300", "--out", str(path)]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out

    def test_erdos_renyi_kind(self, tmp_path):
        path = tmp_path / "er.txt"
        assert main(["generate", "erdos-renyi", "--nodes", "100", "--out", str(path)]) == 0

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "nonsense", "--out", str(tmp_path / "x.txt")])


class TestInfo:
    def test_prints_stats(self, graph_file, capsys):
        assert main(["info", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out
        assert "edges" in out
        assert "reciprocity" in out
        assert "effective diameter" in out


class TestIndex:
    def test_builds_and_reports(self, graph_file, tmp_path, capsys):
        path = tmp_path / "idx.fppv"
        code = main(["index", str(graph_file), "--hubs", "20", "--out", str(path)])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "indexed 20 hubs" in out

    def test_policy_flag(self, graph_file, tmp_path):
        path = tmp_path / "idx.fppv"
        code = main(
            [
                "index", str(graph_file), "--hubs", "10",
                "--policy", "pagerank", "--out", str(path),
            ]
        )
        assert code == 0


class TestQuery:
    def test_query_prints_ranking(self, graph_file, index_file, capsys):
        code = main(
            ["query", str(graph_file), str(index_file), "7", "--top", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query 7" in out
        assert "L1 error" in out
        # 5 ranked lines with scores.
        ranked = [line for line in out.splitlines() if ". node" in line]
        assert len(ranked) == 5
        # The query node itself tops its own PPV.
        assert "node        7" in ranked[0]

    def test_accuracy_target_flag(self, graph_file, index_file, capsys):
        code = main(
            [
                "query", str(graph_file), str(index_file), "7",
                "--target-error", "0.9",
            ]
        )
        assert code == 0

    def test_mismatched_index_fails(self, index_file, tmp_path, capsys):
        other = tmp_path / "other.txt"
        main(["generate", "social", "--nodes", "100", "--out", str(other)])
        code = main(["query", str(other), str(index_file), "3"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestTopKQuery:
    def test_single_query_certifies(self, graph_file, index_file, capsys):
        code = main(
            ["query", str(graph_file), str(index_file), "7", "--top-k", "5",
             "--delta", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-5" in out
        ranked = [line for line in out.splitlines() if ". node" in line]
        assert len(ranked) == 5

    def test_batched_top_k(self, graph_file, index_file, capsys):
        code = main(
            ["query", str(graph_file), str(index_file), "7", "9", "11",
             "--top-k", "4", "--delta", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("top-4") == 3

    def test_eta_becomes_certificate_budget(self, graph_file, index_file,
                                            capsys):
        # eta=0 forbids incremental iterations: the result is whatever
        # iteration 0 gives, reported as certified or not.
        code = main(
            ["query", str(graph_file), str(index_file), "7",
             "--top-k", "5", "--eta", "0", "--delta", "0"]
        )
        assert code == 0
        assert "0 iterations" in capsys.readouterr().out

    def test_incompatible_with_time_limit(self, graph_file, index_file,
                                          capsys):
        code = main(
            ["query", str(graph_file), str(index_file), "7",
             "--top-k", "5", "--time-limit", "1.0"]
        )
        assert code == 2
        assert "top-k" in capsys.readouterr().err

    def test_clipped_index_hint(self, graph_file, index_file, capsys):
        # The default index clips stored entries, flooring the reachable
        # error: when nothing certifies the CLI must say why.
        code = main(
            ["query", str(graph_file), str(index_file), "7",
             "--top-k", "3", "--delta", "0", "--eta", "0"]
        )
        assert code == 0
        captured = capsys.readouterr()
        if "UNCERTIFIED" in captured.out:
            assert "--clip 0" in captured.err


class TestDiskQuery:
    def test_single_query(self, graph_file, index_file, tmp_path, capsys):
        code = main(
            ["disk-query", str(graph_file), str(index_file), "7",
             "--clusters", "4", "--workdir", str(tmp_path / "c1")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query 7" in out
        assert "faults" in out
        assert "physical I/O for 1 queries" in out

    def test_batched_queries_report_physical_io(self, graph_file, index_file,
                                                tmp_path, capsys):
        code = main(
            ["disk-query", str(graph_file), str(index_file), "7", "9", "11",
             "--clusters", "4", "--workdir", str(tmp_path / "c2")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("hub reads") >= 3
        assert "physical I/O for 3 queries" in out

    def test_mismatched_index_fails(self, index_file, tmp_path, capsys):
        other = tmp_path / "other.txt"
        main(["generate", "social", "--nodes", "100", "--out", str(other)])
        code = main(
            ["disk-query", str(other), str(index_file), "3",
             "--workdir", str(tmp_path / "c3")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestServe:
    def _responses(self, capsys):
        import json

        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        return [json.loads(line) for line in lines], captured.err

    def test_jsonl_loop_in_request_order(self, graph_file, index_file,
                                         tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"id": 1, "node": 7}\n'
            '{"id": 2, "nodes": [3, 9], "weights": [2, 1]}\n'
            "\n"
            '{"id": 3, "node": 12, "top_k": 4}\n'
            '{"id": 4, "node": 7, "target_error": 0.5}\n'
        )
        code = main(
            ["serve", str(graph_file), str(index_file),
             "--requests", str(requests), "--top", "3"]
        )
        assert code == 0
        responses, err = self._responses(capsys)
        assert [r["id"] for r in responses] == [1, 2, 3, 4]
        assert responses[0]["nodes"] == [7]
        assert len(responses[0]["top"]) == 3
        assert responses[1]["nodes"] == [3, 9]
        assert responses[2]["certified"] in (True, False)
        assert len(responses[2]["top"]) == 4
        assert responses[3]["l1_error"] <= 0.5
        # The summary goes to stderr, keeping stdout pure JSONL.
        assert "served 4 requests" in err

    def test_bad_requests_answered_in_place(self, graph_file, index_file,
                                            tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"id": "bad-node", "node": 999999}\n'
            '{"id": "no-node"}\n'
            "not json at all\n"
            '{"id": "ok", "node": 3}\n'
        )
        code = main(
            ["serve", str(graph_file), str(index_file),
             "--requests", str(requests)]
        )
        assert code == 0
        responses, _err = self._responses(capsys)
        assert "out of range" in responses[0]["error"]
        assert "node" in responses[1]["error"]
        assert "error" in responses[2]
        assert responses[3]["iterations"] == 2

    def test_disk_backend_reports_io(self, graph_file, index_file,
                                     tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"id": 1, "node": 7}\n{"id": 2, "node": 9}\n')
        code = main(
            ["serve", str(graph_file), str(index_file),
             "--requests", str(requests), "--backend", "disk",
             "--clusters", "4", "--workdir", str(tmp_path / "clusters")]
        )
        assert code == 0
        responses, _err = self._responses(capsys)
        assert all("cluster_faults" in r and "hub_reads" in r
                   for r in responses)

    def test_mismatched_index_fails(self, index_file, tmp_path, capsys):
        other = tmp_path / "other.txt"
        main(["generate", "social", "--nodes", "100", "--out", str(other)])
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"id": 1, "node": 1}\n')
        code = main(
            ["serve", str(other), str(index_file),
             "--requests", str(requests)]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_stdio_refuses_tcp_only_verbs(self, graph_file, index_file,
                                          tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"id": 1, "verb": "stats"}\n{"id": 2, "node": 3}\n'
        )
        code = main(
            ["serve", str(graph_file), str(index_file),
             "--requests", str(requests)]
        )
        assert code == 0
        responses, _err = self._responses(capsys)
        assert "only available over --tcp" in responses[0]["error"]
        assert responses[1]["iterations"] == 2

    def test_explicit_stdio_flag_and_auto_delay(self, graph_file,
                                                index_file, tmp_path,
                                                capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"id": 1, "node": 7}\n')
        code = main(
            ["serve", str(graph_file), str(index_file), "--stdio",
             "--requests", str(requests), "--max-delay", "auto",
             "--cache-size", "0"]
        )
        assert code == 0
        responses, _err = self._responses(capsys)
        assert responses[0]["iterations"] == 2

    def test_workers_require_tcp(self, graph_file, index_file, capsys):
        code = main(
            ["serve", str(graph_file), str(index_file), "--workers", "2"]
        )
        assert code == 2
        assert "--workers needs --tcp" in capsys.readouterr().err

    def test_bad_tcp_address_rejected(self, graph_file, index_file,
                                      capsys):
        code = main(
            ["serve", str(graph_file), str(index_file), "--tcp", "7474"]
        )
        assert code == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_bad_max_inflight_rejected(self, graph_file, index_file,
                                       capsys):
        code = main(
            ["serve", str(graph_file), str(index_file),
             "--tcp", "127.0.0.1:0", "--max-inflight", "0"]
        )
        assert code == 2
        assert "--max-inflight" in capsys.readouterr().err

    def test_bad_max_delay_rejected(self, graph_file, index_file):
        with pytest.raises(SystemExit):
            main(
                ["serve", str(graph_file), str(index_file),
                 "--max-delay", "sometimes"]
            )

    def test_stdio_and_tcp_are_mutually_exclusive(self, graph_file,
                                                  index_file):
        with pytest.raises(SystemExit):
            main(
                ["serve", str(graph_file), str(index_file), "--stdio",
                 "--tcp", "127.0.0.1:0"]
            )


class TestAutotune:
    def test_recommends(self, graph_file, capsys):
        code = main(["autotune", str(graph_file), "--queries", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended number of hubs" in out
        assert "<== best" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_prog_name(self):
        # Matches the console-script entry point in pyproject.toml.
        assert build_parser().prog == "repro"


class TestValidate:
    def test_clean_index_passes(self, graph_file, index_file, capsys):
        code = main(["validate", str(graph_file), str(index_file)])
        assert code == 0
        assert "index OK" in capsys.readouterr().out

    def test_stale_index_fails(self, index_file, tmp_path, capsys):
        # Validate against a *different* graph than the index was built on.
        other = tmp_path / "other.txt"
        main(["generate", "social", "--nodes", "300", "--seed", "9",
              "--out", str(other)])
        code = main(["validate", str(other), str(index_file), "--sample", "25"])
        assert code == 1
        assert "PROBLEM" in capsys.readouterr().err
