"""Sparse-matrix lowering of the PPV index (the batch splice kernel).

The online engine's inner loop (Algorithm 2, lines 8-12) splices the prime
PPV of every frontier hub into the running estimate.  Done one hub at a
time this is a Python loop over dict entries; done for a *batch* of
queries it is two sparse matrix products.  This module lowers a
:class:`~repro.core.index.PPVIndex` into that matrix form, built once and
cached on the index:

* ``scores`` — CSR ``(H, n)``: row ``r`` is the (clipped) prime PPV of hub
  ``hub_ids[r]`` **with the trivial-tour correction folded in**: the hub's
  own entry is stored as ``r^0_h(h) - alpha`` so that splicing a frontier
  arrival mass ``m`` via ``m @ scores`` reproduces the scalar engine's
  ``estimate += m * entry.scores; estimate[h] -= alpha * m`` in a single
  product (see :mod:`repro.core.query` for why the zero-length tour is
  removed).
* ``borders`` — CSR ``(H, H)``: row ``r`` holds the border arrival masses
  of hub ``hub_ids[r]``, with columns in *hub-row* space, so one frontier
  iteration of Theorem 4 for a whole batch is ``frontier @ borders``.
* ``work`` — per-hub splice cost (``nodes.size + border_hubs.size``), the
  scale-independent work units the scalar engine accounts per expansion.

With the two matrices, one FastPPV iteration over a batch of ``B`` queries
whose frontiers are stacked into a CSR matrix ``F`` of shape ``(B, H)`` is::

    estimate += (F_gated @ scores).toarray()   # splice + trivial-tour fix
    frontier  =  F_gated @ borders             # next arrival masses

where ``F_gated`` keeps only the entries passing the per-query ``delta``
gate of Algorithm 2, line 9.

The lowering is cached on the ``PPVIndex`` instance (attribute
``_splice_matrix``); indexes are treated as immutable once queried —
:func:`repro.core.dynamic.update_index` returns a *new* index, so the
cache can never go stale through the supported update path.  Call
:func:`invalidate_splice_cache` after mutating ``index.entries`` in place.

Exact (order-preserving) form
-----------------------------
The matmul form above reassociates floating-point sums, which is fine for
the in-memory engine's ~1e-14 contract but not for the disk engines,
whose batch path promises scores **bitwise equal** to the scalar
per-query loop.  For those, the same lowering discipline is applied in an
order-preserving shape: :class:`SpliceBlock` assembles *fetched* prime
PPVs (a scheduling wave's working set) into append-only CSR blocks, and
:func:`splice_rounds_exact` executes each incremental round over a batch
as two sparse gather-multiply-scatter products whose per-element
accumulation order is exactly the scalar loop's — see
:func:`lower_entry` for why the trivial-tour correction is appended as a
trailing row element there instead of merged into the hub's own score.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import sparse

from repro.core.index import PPVIndex
from repro.core.prime import PrimePPV
from repro.core.query import QueryState, StoppingCondition

_CACHE_ATTR = "_splice_matrix"

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_F64 = np.zeros(0, dtype=np.float64)


@dataclass(frozen=True)
class SpliceMatrix:
    """Matrix form of a PPV index (see module docstring).

    Attributes
    ----------
    hub_ids:
        Sorted hub node ids; position in this array is the hub's *row*
        in both matrices (and its column in ``borders``).
    scores:
        CSR ``(H, n)`` of clipped prime-PPV scores, trivial-tour
        corrected (the hub's own column holds ``score - alpha``).
    borders:
        CSR ``(H, H)`` of border arrival masses in hub-row space.
    work:
        ``int64 (H,)``: per-hub work units of one splice
        (``nodes.size + border_hubs.size``).
    """

    hub_ids: np.ndarray
    scores: sparse.csr_matrix
    borders: sparse.csr_matrix
    work: np.ndarray

    @property
    def num_hubs(self) -> int:
        """Number of hub rows."""
        return self.hub_ids.size

    @property
    def num_nodes(self) -> int:
        """Number of graph nodes (columns of ``scores``)."""
        return self.scores.shape[1]

    def rows_of(self, hubs: np.ndarray) -> np.ndarray:
        """Map hub node ids to matrix rows.

        Raises
        ------
        KeyError
            If any of ``hubs`` is not an indexed hub.
        """
        hubs = np.asarray(hubs, dtype=np.int64)
        if hubs.size == 0:
            return np.zeros(0, dtype=np.int64)
        if self.hub_ids.size == 0:
            raise KeyError(f"nodes {hubs.tolist()} are not indexed hubs")
        rows = np.searchsorted(self.hub_ids, hubs)
        clipped = np.minimum(rows, self.hub_ids.size - 1)
        valid = self.hub_ids[clipped] == hubs
        if not valid.all():
            missing = hubs[~valid]
            raise KeyError(f"nodes {missing.tolist()} are not indexed hubs")
        return rows


def lower_entry(
    entry: PrimePPV, alpha: float, exact: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Lower one prime PPV into a score row ``(columns, values)``.

    The scalar engine splices an arrival mass ``m`` as two operations:
    ``estimate[entry.nodes] += m * entry.scores`` followed by the
    trivial-tour correction ``estimate[hub] -= alpha * m``.  Both lowered
    forms fold the correction into the row so a splice is one product;
    they differ in *where*:

    ``exact=False`` (matmul form)
        The hub's own value is stored as ``score - alpha``.  One fused
        multiply reassociates the scalar engine's two operations —
        within its usual ~1e-14 round-off, not bitwise.

    ``exact=True`` (order-preserving form)
        A trailing ``(hub, -alpha)`` element is appended instead, so a
        *sequential* scatter-add over the row reproduces the scalar
        loop's operations in their original order: ``m * (-alpha)`` is
        bitwise ``-(alpha * m)`` and IEEE addition of a negated value is
        bitwise subtraction, hence bit-for-bit equality.

    Raises
    ------
    ValueError
        In matmul form, if the entry lacks its own score (clipped above
        ``alpha``) — the merge would silently lose the correction.
    """
    if exact:
        columns = np.empty(entry.nodes.size + 1, dtype=np.int64)
        columns[:-1] = entry.nodes
        columns[-1] = entry.source
        values = np.empty(entry.scores.size + 1, dtype=np.float64)
        values[:-1] = entry.scores
        values[-1] = -alpha
        return columns, values
    values = entry.scores.astype(np.float64, copy=True)
    own = np.searchsorted(entry.nodes, entry.source)
    if own >= entry.nodes.size or entry.nodes[own] != entry.source:
        raise ValueError(
            f"hub {entry.source} entry lacks its own score; was it "
            "clipped above alpha?"
        )
    values[own] -= alpha
    return entry.nodes, values


def build_splice_matrix(index: PPVIndex) -> SpliceMatrix:
    """Lower ``index`` into :class:`SpliceMatrix` form (no caching).

    Raises
    ------
    ValueError
        If the index has a hub in its mask with no stored entry, or an
        entry whose border hubs are not themselves indexed — either would
        make a batch splice silently diverge from the scalar engine.
    """
    hub_ids = np.asarray(sorted(index.entries), dtype=np.int64)
    mask_hubs = np.nonzero(index.hub_mask)[0]
    if not np.array_equal(hub_ids, mask_hubs):
        raise ValueError(
            "index entries do not cover the hub mask; the batch engine "
            "needs a prime PPV stored for every hub"
        )
    n = index.hub_mask.size
    alpha = index.alpha

    score_cols: list[np.ndarray] = []
    score_vals: list[np.ndarray] = []
    score_lens = np.zeros(hub_ids.size, dtype=np.int64)
    border_cols: list[np.ndarray] = []
    border_vals: list[np.ndarray] = []
    border_lens = np.zeros(hub_ids.size, dtype=np.int64)
    work = np.zeros(hub_ids.size, dtype=np.int64)

    for row, hub in enumerate(hub_ids.tolist()):
        entry = index.entries[hub]
        # Fold the trivial-tour correction of Algorithm 2 into the row
        # (matmul form; the disk engines use the exact form instead).
        columns, values = lower_entry(entry, alpha, exact=False)
        score_cols.append(columns)
        score_vals.append(values)
        score_lens[row] = entry.nodes.size

        border_rows = np.searchsorted(hub_ids, entry.border_hubs)
        if entry.border_hubs.size and not np.array_equal(
            hub_ids[border_rows], entry.border_hubs
        ):
            raise ValueError(f"hub {hub} has border hubs outside the index")
        border_cols.append(border_rows)
        border_vals.append(entry.border_masses)
        border_lens[row] = entry.border_hubs.size
        work[row] = entry.nodes.size + entry.border_hubs.size

    def assemble(cols, vals, lens, width) -> sparse.csr_matrix:
        indptr = np.zeros(hub_ids.size + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
        data = (
            np.concatenate(vals) if vals else np.zeros(0)
        )
        indices = (
            np.concatenate(cols).astype(np.int64)
            if cols
            else np.zeros(0, dtype=np.int64)
        )
        matrix = sparse.csr_matrix(
            (data, indices, indptr), shape=(hub_ids.size, width)
        )
        matrix.eliminate_zeros()
        return matrix

    return SpliceMatrix(
        hub_ids=hub_ids,
        scores=assemble(score_cols, score_vals, score_lens, n),
        borders=assemble(border_cols, border_vals, border_lens, hub_ids.size),
        work=work,
    )


def splice_matrix(index: PPVIndex) -> SpliceMatrix:
    """The cached :class:`SpliceMatrix` of ``index`` (built on first use)."""
    cached = getattr(index, _CACHE_ATTR, None)
    if cached is None:
        cached = build_splice_matrix(index)
        setattr(index, _CACHE_ATTR, cached)
    return cached


def invalidate_splice_cache(index: PPVIndex) -> None:
    """Drop the cached lowering (call after mutating ``index.entries``)."""
    if hasattr(index, _CACHE_ATTR):
        delattr(index, _CACHE_ATTR)


# --------------------------------------------------------------------- #
# Exact (order-preserving) lowering: the disk engines' splice kernel.


class _GrowableRows:
    """Append-only CSR row storage over amortised-doubling buffers.

    A :class:`SpliceBlock` grows every scheduling wave; rebuilding the
    concatenation from per-row arrays would copy the whole block per
    round (worst-case quadratic in total fetched payload).  Doubling
    buffers make each :meth:`add` amortised O(row nnz), and :meth:`csr`
    returns zero-copy views.
    """

    __slots__ = ("_indices", "_data", "_nnz", "_ends", "_indptr")

    def __init__(self) -> None:
        self._indices = np.empty(1024, dtype=np.int64)
        self._data = np.empty(1024, dtype=np.float64)
        self._nnz = 0
        self._ends: list[int] = [0]
        self._indptr: np.ndarray | None = None

    def add(self, columns: np.ndarray, values: np.ndarray) -> None:
        end = self._nnz + columns.size
        if end > self._indices.size:
            capacity = max(end, 2 * self._indices.size)
            indices = np.empty(capacity, dtype=np.int64)
            indices[: self._nnz] = self._indices[: self._nnz]
            data = np.empty(capacity, dtype=np.float64)
            data[: self._nnz] = self._data[: self._nnz]
            self._indices, self._data = indices, data
        self._indices[self._nnz : end] = columns
        self._data[self._nnz : end] = values
        self._nnz = end
        self._ends.append(end)
        self._indptr = None

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, indices, data)`` views of the rows added so far."""
        if self._indptr is None:
            self._indptr = np.asarray(self._ends, dtype=np.int64)
        return self._indptr, self._indices[: self._nnz], self._data[: self._nnz]


class SpliceBlock:
    """Append-only CSR block of fetched prime PPVs (exact splice form).

    The disk engines cannot lower the whole index up front — hub payloads
    arrive from the :class:`~repro.storage.ppv_store.DiskPPVStore` wave
    by wave — so this block grows as hubs are fetched: :meth:`add`
    appends one hub's score row (:func:`lower_entry` ``exact=True``: the
    trivial-tour correction is a trailing ``(hub, -alpha)`` element) and
    its border row (columns are raw hub *node ids*; unlike
    :class:`SpliceMatrix` the border targets need not be resident yet).

    :meth:`gather` slices any row sequence back out as one concatenated
    ``(columns, values, lengths)`` triple per matrix — the input of the
    two scatter-add products in :func:`splice_rounds_exact` — without a
    per-row Python loop.
    """

    def __init__(self, alpha: float, num_nodes: int) -> None:
        self.alpha = alpha
        self.num_nodes = num_nodes
        self._row_lookup = np.full(num_nodes, -1, dtype=np.int64)
        self._num_rows = 0
        self._scores = _GrowableRows()
        self._borders = _GrowableRows()

    @property
    def num_rows(self) -> int:
        """Number of hub rows appended so far."""
        return self._num_rows

    def __contains__(self, hub: int) -> bool:
        return self._row_lookup[hub] >= 0

    def add(self, entry: PrimePPV) -> None:
        """Append one fetched prime PPV as a new row (idempotent)."""
        hub = int(entry.source)
        if self._row_lookup[hub] >= 0:
            return
        self._row_lookup[hub] = self._num_rows
        self._num_rows += 1
        columns, values = lower_entry(entry, self.alpha, exact=True)
        self._scores.add(columns, values)
        self._borders.add(
            entry.border_hubs.astype(np.int64, copy=False),
            entry.border_masses.astype(np.float64, copy=False),
        )

    def missing(self, hubs: np.ndarray) -> np.ndarray:
        """The subset of ``hubs`` without a row yet, first-need order,
        deduplicated."""
        absent = hubs[self._row_lookup[hubs] < 0]
        if absent.size == 0:
            return absent
        _, first = np.unique(absent, return_index=True)
        return absent[np.sort(first)]

    def rows_of(self, hubs: np.ndarray) -> np.ndarray:
        """Map hub node ids to block rows (all must be resident)."""
        rows = self._row_lookup[hubs]
        if rows.size and rows.min() < 0:
            raise KeyError(
                f"hubs {hubs[rows < 0].tolist()} are not in the block"
            )
        return rows

    @staticmethod
    def _take(indptr, indices, data, rows) -> tuple:
        """Concatenate CSR rows in the given (possibly repeated) order."""
        lens = indptr[rows + 1] - indptr[rows]
        total = int(lens.sum())
        if total == 0:
            return _EMPTY_I64, _EMPTY_F64, lens
        before = np.zeros(lens.size, dtype=np.int64)
        np.cumsum(lens[:-1], out=before[1:])
        take = np.repeat(indptr[rows] - before, lens) + np.arange(total)
        return indices[take], data[take], lens

    def gather(self, rows: np.ndarray) -> tuple:
        """Concatenated score and border rows for ``rows``, in order.

        Returns ``(score_cols, score_vals, score_lens, border_cols,
        border_vals, border_lens)`` where the ``lens`` arrays give each
        row's element count within the concatenation.
        """
        return (
            *self._take(*self._scores.csr(), rows),
            *self._take(*self._borders.csr(), rows),
        )


def splice_rounds_exact(
    estimates: np.ndarray,
    frontiers: "list[tuple[np.ndarray, np.ndarray]]",
    stop: StoppingCondition,
    alpha: float,
    delta: float,
    max_iterations: int,
    block: SpliceBlock,
    ensure: Callable[[np.ndarray], None],
    started: float,
    on_iteration: "Callable[[int, QueryState], None] | None" = None,
) -> "list[tuple[int, list[float], int, int, float]]":
    """Algorithm 2's incremental rounds for a batch, bitwise-exact.

    The vectorised twin of the disk engines' historical per-hub dict loop
    (kept as ``repro.storage.disk_engine._splice_rounds_reference``):
    each round stacks the delta-gated ``(query, hub)`` pairs of every
    in-flight query, gathers their block rows, and applies the two
    products as **sequential scatter-adds** (``np.add.at``) whose
    element order is (query, frontier position, row element) — the exact
    operation order of the scalar loop, so scores, error histories and
    next frontiers are bit-for-bit identical to running it per query
    (queries never share accumulation targets; see :func:`lower_entry`
    for the trivial-tour element).  The next frontier keeps the dict
    loop's *first-touch* hub order via ``np.unique(..., return_index=True)``.

    Parameters
    ----------
    estimates:
        ``(B, n)`` C-contiguous float64, mutated in place; row ``i`` is
        query ``i``'s running estimate (iteration 0 already applied).
    frontiers:
        Per query, ``(hub ids int64, arrival masses float64)`` in the
        scalar dict's iteration order; consumed and replaced.
    stop / alpha / delta / max_iterations:
        As in the scalar engines; ``stop`` is evaluated per query per
        round and must be stateless to mean the same thing it does
        scalar-side.
    block / ensure:
        The resident-row block and a callable that must make every hub
        id array passed to it resident (``ensure(missing)`` — fetch and
        :meth:`SpliceBlock.add`).
    on_iteration:
        Optional ``(query position, QueryState)`` callback, invoked once
        per executed iteration per query, iteration 0 included.

    Returns
    -------
    Per query: ``(iterations, error_history, hubs_expanded,
    requested_reads, seconds)`` where ``requested_reads`` counts the
    gated expansions — one scalar ``fetch`` call each — and ``seconds``
    is the time from ``started`` until the query retired.
    """
    batch, num_nodes = estimates.shape
    flat_estimates = estimates.reshape(-1)
    # Border accumulator in (query, node id) space; zeroed lazily after
    # each readout so one allocation serves every round.
    accumulator = np.zeros(batch * num_nodes)
    iterations = [0] * batch
    hubs_expanded = [0] * batch
    requested = [0] * batch
    seconds = [0.0] * batch
    error_history = [
        [1.0 - float(estimates[i].sum())] for i in range(batch)
    ]

    def state_of(i: int) -> QueryState:
        return QueryState(
            iteration=iterations[i],
            l1_error=error_history[i][-1],
            elapsed_seconds=time.perf_counter() - started,
            frontier_size=frontiers[i][0].size,
            scores=estimates[i],
        )

    if on_iteration is not None:
        for i in range(batch):
            on_iteration(i, state_of(i))

    active = list(range(batch))
    while active:
        runnable = []
        for i in active:
            if (
                frontiers[i][0].size == 0
                or iterations[i] >= max_iterations
                or stop.should_stop(state_of(i))
            ):
                seconds[i] = time.perf_counter() - started
            else:
                runnable.append(i)
        active = runnable
        if not runnable:
            break

        # Per-(query, hub) delta gate (Algorithm 2, line 9), then one
        # stacked fetch for every hub the round needs.
        kept: list[tuple[np.ndarray, np.ndarray]] = []
        for i in runnable:
            hubs, masses = frontiers[i]
            keep = alpha * masses > delta
            kept.append((hubs[keep], masses[keep]))
        needed = np.concatenate([hubs for hubs, _ in kept])
        if needed.size:
            absent = block.missing(needed)
            if absent.size:
                ensure(absent)

        # Stack the surviving (query, hub) pairs of the whole round and
        # apply the two products as order-preserving scatter-adds.
        counts = np.array([hubs.size for hubs, _ in kept], dtype=np.int64)
        if needed.size:
            all_rows = block.rows_of(needed)
            all_masses = np.concatenate([masses for _, masses in kept])
            (
                score_cols, score_vals, score_lens,
                border_cols, border_vals, border_lens,
            ) = block.gather(all_rows)
            offsets = np.repeat(
                np.asarray(runnable, dtype=np.int64) * num_nodes, counts
            )
            np.add.at(
                flat_estimates,
                np.repeat(offsets, score_lens) + score_cols,
                np.repeat(all_masses, score_lens) * score_vals,
            )
            np.add.at(
                accumulator,
                np.repeat(offsets, border_lens) + border_cols,
                np.repeat(all_masses, border_lens) * border_vals,
            )
            # Per-query border segments of the stacked arrays.
            per_query_border = np.zeros(len(runnable), dtype=np.int64)
            np.add.at(
                per_query_border,
                np.repeat(np.arange(len(runnable)), counts),
                border_lens,
            )
            segment_ends = np.cumsum(per_query_border)
        for position, i in enumerate(runnable):
            iterations[i] += 1
            expanded = int(counts[position])
            hubs_expanded[i] += expanded
            requested[i] += expanded
            next_hubs, next_masses = _EMPTY_I64, _EMPTY_F64
            if expanded:
                end = int(segment_ends[position])
                segment = border_cols[end - int(per_query_border[position]):end]
                if segment.size:
                    # First-touch order = the scalar dict's insertion order.
                    _, first = np.unique(segment, return_index=True)
                    next_hubs = segment[np.sort(first)]
                    base = i * num_nodes
                    next_masses = accumulator[base + next_hubs]
                    accumulator[base + next_hubs] = 0.0
            frontiers[i] = (next_hubs, next_masses)
            error_history[i].append(1.0 - float(estimates[i].sum()))
            if on_iteration is not None:
                on_iteration(i, state_of(i))

    return [
        (
            iterations[i],
            error_history[i],
            hubs_expanded[i],
            requested[i],
            seconds[i],
        )
        for i in range(batch)
    ]
