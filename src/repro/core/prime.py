"""Prime subgraphs and prime PPVs (Definition 2, Algorithm 1's inner step).

The prime PPV of a node ``v`` aggregates the reachability of exactly the
tours in ``T^0(v)`` — tours from ``v`` that pass through *no interior hub*.
The paper extracts the prime subgraph by depth-first search (backtracking
at hub nodes and at nodes whose reachability falls below ``epsilon``) and
runs power iteration on it.  We compute the identical quantity directly
with a level-synchronous *push*: probability mass starts at ``v`` and flows
along out-edges; a hub absorbs any mass that arrives (it is a *border* of
the prime subgraph), every other node keeps ``alpha`` of the arriving mass
as score and forwards the rest; mass below ``epsilon`` is scored but not
forwarded (the "faraway node" cut-off).

Beyond the score vector the push also yields the **border arrival masses**
— for each border hub ``h``, the total probability of walking from ``v`` to
``h`` without stopping and without crossing another hub.  These are the
quantities the online engine splices in Theorem 4: extending a partition by
one hub multiplies the *arrival* mass (not the score, which already
includes the ``alpha`` stop factor) into the hub's own prime PPV.  Keeping
arrival masses explicit also fixes a subtle double-count in Eq. 12 as
printed: a tour that *ends* at a hub must not be re-counted through the
zero-length "trivial tour" inside ``r^0_h(h)``; arrival masses exclude it
by construction (the initial unit of mass at the push source is expanded,
never recorded as an arrival).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.pagerank import DEFAULT_ALPHA

DEFAULT_EPSILON = 1e-8
"""Reachability cut-off for prime-subgraph exploration (Sect. 5.1)."""

_DENSE_AGGREGATION_LIMIT = 1 << 23
"""Batched-push rounds aggregate with a dense ``sources x nodes`` bincount
buffer when it fits under this size *and* the round is dense enough to
amortise scanning it; sparse or huge rounds use sort-based grouping."""


@dataclass(frozen=True)
class PrimePPV:
    """Sparse prime PPV of one source node.

    Attributes
    ----------
    source:
        The node the tours start from.
    nodes:
        Sorted node ids with non-zero score (the prime subgraph, borders
        included).
    scores:
        Scores aligned with ``nodes``; entry for node ``p`` is
        ``r^0_source(p)``, the summed reachability of hub-interior-free
        tours from ``source`` to ``p``.
    border_hubs:
        Sorted hub ids reachable without crossing another hub —
        ``H'(source)``, the neighbouring hubs of Definition 2.
    border_masses:
        Arrival masses aligned with ``border_hubs``: the probability of a
        non-stopping, hub-interior-free walk from ``source`` ending its
        segment at that hub.  ``score_at_hub = alpha * border_mass`` plus
        nothing else, except when ``source`` itself is the hub.
    edges_touched:
        Edge traversals the push performed — the scale-independent work
        measure reported alongside wall-clock time in the benchmarks.
    """

    source: int
    nodes: np.ndarray
    scores: np.ndarray
    border_hubs: np.ndarray
    border_masses: np.ndarray
    edges_touched: int = 0

    def to_dense(self, num_nodes: int) -> np.ndarray:
        """Dense score vector of length ``num_nodes``."""
        dense = np.zeros(num_nodes)
        dense[self.nodes] = self.scores
        return dense

    def score_of(self, node: int) -> float:
        """Score of one node (0.0 if outside the support)."""
        position = np.searchsorted(self.nodes, node)
        if position < self.nodes.size and self.nodes[position] == node:
            return float(self.scores[position])
        return 0.0

    @property
    def mass(self) -> float:
        """Total scored probability mass (L1 norm of the vector)."""
        return float(self.scores.sum())

    @property
    def nbytes(self) -> int:
        """Approximate in-memory footprint."""
        return (
            self.nodes.nbytes
            + self.scores.nbytes
            + self.border_hubs.nbytes
            + self.border_masses.nbytes
        )


def _max_rounds(alpha: float, epsilon: float) -> int:
    """Rounds after which all residual mass is provably below ``epsilon``.

    Total residual after ``k`` rounds is at most ``(1 - alpha)^k``, so
    ``k = log(epsilon) / log(1 - alpha)`` bounds the level-synchronous push.
    """
    if epsilon <= 0.0:
        raise ValueError("epsilon must be positive")
    return max(4, int(math.ceil(math.log(epsilon) / math.log(1.0 - alpha))) + 4)


def prime_ppv(
    graph: DiGraph,
    source: int,
    hub_mask: np.ndarray,
    alpha: float = DEFAULT_ALPHA,
    epsilon: float = DEFAULT_EPSILON,
) -> PrimePPV:
    """Compute the prime PPV of ``source`` by level-synchronous push.

    Parameters
    ----------
    graph:
        The full graph (the prime subgraph is discovered on the fly).
    source:
        Start node.  May itself be a hub: the *initial* unit of mass is
        always expanded (a tour's starting position never counts towards
        hub length), but mass that cycles back is absorbed like at any
        other hub.
    hub_mask:
        Boolean array of length ``n`` marking hub nodes.
    alpha:
        Teleport probability.
    epsilon:
        Expansion cut-off: arriving mass below this is scored but not
        forwarded.

    Notes
    -----
    Work per round is linear in the touched edges; the number of rounds is
    bounded by ``log(epsilon) / log(1 - alpha)``.  The computation is exact
    up to the ``epsilon`` truncation (identical in kind to the paper's DFS
    cut-off).

    This is a thin wrapper over :func:`prime_push_many` with a batch of
    one, so the scalar and batched engines share one kernel and their
    summation-order lockstep is structural rather than documented.  The
    output is bit-for-bit identical to a *batch-of-one*
    ``prime_push_many`` call (pinned by ``tests/test_prime.py``); rows
    of multi-source calls can differ by ~1e-16 relative because the
    dense aggregation path's round choices depend on batch composition
    (see the equivalence note in :func:`prime_push_many`).
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source node {source} out of range")
    scores, border, edges_touched = prime_push_many(
        graph,
        np.array([source], dtype=np.int64),
        hub_mask,
        alpha=alpha,
        epsilon=epsilon,
    )
    row = scores[0]
    border_row = border[0]
    # Every touched node keeps alpha of a strictly positive arrival mass,
    # so the support is exactly the non-zero entries of the dense row.
    support = np.nonzero(row)[0].astype(np.int64)
    border_hubs = np.nonzero(border_row)[0].astype(np.int64)
    return PrimePPV(
        source=source,
        nodes=support,
        scores=row[support],
        border_hubs=border_hubs,
        border_masses=border_row[border_hubs],
        edges_touched=int(edges_touched[0]),
    )


def prime_push_many(
    graph: DiGraph,
    sources: np.ndarray,
    hub_mask: np.ndarray,
    alpha: float = DEFAULT_ALPHA,
    epsilon: float = DEFAULT_EPSILON,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Level-synchronous prime push for a *batch* of sources at once.

    Semantically identical to calling :func:`prime_ppv` per source, but
    the per-round numpy dispatch cost is amortised across the batch: the
    residual frontier carries ``(source row, node, mass)`` triples keyed
    by ``row * n + node`` and every round expands all sources together.
    Large rounds aggregate arrival masses with a dense scatter-add
    (sequential summation) where the single-source push reduces pairwise,
    so the returned scores match ``prime_ppv(graph, s, ...).to_dense(n)``
    to floating-point round-off (~1e-16 relative) rather than bitwise —
    well inside the batch engine's 1e-12 equivalence contract.

    Returns
    -------
    (scores, border, edges_touched):
        ``scores``: dense ``(len(sources), n)`` prime-PPV rows.
        ``border``: dense ``(len(sources), n)`` border arrival masses
        (non-zero only at hub columns).
        ``edges_touched``: ``int64 (len(sources),)`` per-source edge
        traversals.
    """
    n = graph.num_nodes
    sources = np.asarray(sources, dtype=np.int64)
    if sources.size and (sources.min() < 0 or sources.max() >= n):
        raise ValueError("source node out of range")
    if hub_mask.shape != (n,):
        raise ValueError("hub_mask must have one entry per node")
    indptr, indices = graph.indptr, graph.indices
    out_degrees = graph.out_degrees
    edge_probabilities = graph.edge_probabilities

    num_sources = sources.size
    scores = np.zeros((num_sources, n))
    border = np.zeros((num_sources, n))
    edges_touched = np.zeros(num_sources, dtype=np.int64)
    if num_sources == 0:
        return scores, border, edges_touched

    active_row = np.arange(num_sources, dtype=np.int64)
    active_node = sources.copy()
    masses = np.ones(num_sources)
    first_round = True

    scores_flat = scores.reshape(-1)
    border_flat = border.reshape(-1)
    for _ in range(_max_rounds(alpha, epsilon)):
        flat = active_row * n + active_node
        scores_flat[flat] += alpha * masses

        absorbed = hub_mask[active_node]
        if first_round:
            # The initial unit at each source always expands.
            absorbed = absorbed & (active_node != sources[active_row])
        border_flat[flat[absorbed]] += masses[absorbed]

        expand = ~absorbed & (masses >= epsilon) & (out_degrees[active_node] > 0)
        expand_rows = active_row[expand]
        expand_nodes = active_node[expand]
        expand_masses = masses[expand]
        first_round = False
        if expand_nodes.size == 0:
            break

        counts = out_degrees[expand_nodes]
        starts = indptr[expand_nodes]
        total = int(counts.sum())
        np.add.at(edges_touched, expand_rows, counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        edge_ids = np.repeat(starts, counts) + offsets
        targets = indices[edge_ids].astype(np.int64)
        shares = (
            (1.0 - alpha)
            * np.repeat(expand_masses, counts)
            * edge_probabilities[edge_ids]
        )
        # Aggregate per (source row, target) pair.  The sort path reduces
        # exactly like the single-source push (bitwise identical); the
        # dense path's sequential scatter-add reassociates the same sums
        # (~1e-17 deviations — see the docstring's equivalence note).
        keys = np.repeat(expand_rows, counts) * n + targets
        buffer_size = num_sources * n
        if (
            buffer_size <= _DENSE_AGGREGATION_LIMIT
            and keys.size * 16 >= buffer_size
        ):
            bins = np.bincount(keys, weights=shares, minlength=buffer_size)
            group_keys = np.nonzero(bins)[0]
            masses = bins[group_keys]
        else:
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            sorted_shares = shares[order]
            boundaries = np.nonzero(np.diff(sorted_keys))[0] + 1
            group_starts = np.concatenate(
                (np.zeros(1, dtype=np.int64), boundaries)
            )
            group_keys = sorted_keys[group_starts]
            masses = np.add.reduceat(sorted_shares, group_starts)
        active_row = group_keys // n
        active_node = group_keys % n

    return scores, border, edges_touched


def prime_subgraph_nodes(
    graph: DiGraph,
    source: int,
    hub_mask: np.ndarray,
    alpha: float = DEFAULT_ALPHA,
    epsilon: float = DEFAULT_EPSILON,
) -> np.ndarray:
    """Node set of the prime subgraph ``G'(source)`` (Definition 2).

    The interior plus the border hubs — i.e. everything a hub-interior-free
    walk of reachability at least ``epsilon`` can touch.  Used by the
    disk-based engine (Sect. 5.3) to know which clusters a query touches.
    """
    result = prime_ppv(graph, source, hub_mask, alpha=alpha, epsilon=epsilon)
    return result.nodes
