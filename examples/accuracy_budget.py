"""The accuracy/time dial: anytime processing under different budgets.

Demonstrates the paper's headline property — the trade-off between
accuracy and latency is controlled *at query time*, with the L1 error
measurable after every iteration (Eq. 6) and bounded a priori by
Theorem 2.  No offline re-execution is ever needed.

Run with:  python examples/accuracy_budget.py
"""

import time

from repro import (
    FastPPV,
    StopAfterIterations,
    StopAfterTime,
    StopAtL1Error,
    build_index,
    l1_error_bound,
    select_hubs,
    social_graph,
)


def main() -> None:
    graph = social_graph(num_nodes=4000, seed=3)
    hubs = select_hubs(graph, num_hubs=250)
    index = build_index(graph, hubs)
    # delta=0 disables frontier pruning so an accuracy target can always
    # be reached; production deployments keep a small delta for speed.
    engine = FastPPV(graph, index, delta=0.0)
    query = 1234

    print("anytime curve (one query, growing iteration budget):")
    print(f"{'eta':>4} {'L1 error':>10} {'Thm. 2 bound':>13} {'ms':>8}")
    for eta in range(7):
        started = time.perf_counter()
        result = engine.query(query, stop=StopAfterIterations(eta))
        elapsed = (time.perf_counter() - started) * 1000
        bound = l1_error_bound(eta, index.alpha)
        print(f"{eta:>4} {result.l1_error:>10.4f} {bound:>13.4f} {elapsed:>8.2f}")

    print("\naccuracy-target stopping (L1 error <= 0.02):")
    result = engine.query(query, stop=StopAtL1Error(0.02))
    print(
        f"  reached {result.l1_error:.4f} after {result.iterations} iterations"
    )

    print("\ndeadline stopping (0.5 ms budget):")
    result = engine.query(query, stop=StopAfterTime(0.0005))
    print(
        f"  within the deadline: {result.iterations} iterations, "
        f"L1 error {result.l1_error:.4f}"
    )


if __name__ == "__main__":
    main()
