"""The PPVService façade: backend registry, equivalence with direct
engine calls (pinned bitwise), coalescing, handles, and streaming."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import (
    BatchFastPPV,
    FastPPV,
    PPVService,
    QuerySpec,
    StopAfterIterations,
    StopAfterTime,
    StopAtL1Error,
    any_of,
    build_index,
    select_hubs,
)
from repro.core.linearity import combine_results, multi_node_ppv, normalise_weights
from repro.serving import engines as serving_engines
from repro.serving.engines import (
    available_backends,
    detect_backend,
    register_backend,
)
from repro.storage import (
    DiskFastPPV,
    DiskGraphStore,
    DiskPPVStore,
    cluster_graph,
    save_index,
)

STOP = StopAfterIterations(2)


@pytest.fixture(scope="module")
def certifiable_index(small_social):
    """clip=0 so top-k certificates can actually fire."""
    hubs = select_hubs(small_social, num_hubs=40)
    return build_index(small_social, hubs, clip=0.0, epsilon=1e-6)


@pytest.fixture(scope="module")
def disk_setup(small_social, small_social_index, tmp_path_factory):
    root = tmp_path_factory.mktemp("serving_disk")
    index_path = root / "index.fppv"
    save_index(small_social_index, index_path)
    assignment = cluster_graph(small_social, 5, seed=1)
    return root, small_social, assignment, index_path


@pytest.fixture()
def memory_service(small_social, small_social_index):
    with PPVService.open(
        small_social_index, graph=small_social, delta=1e-4
    ) as service:
        yield service


class TestOpenAndRegistry:
    def test_auto_detects_memory(self, small_social, small_social_index):
        with PPVService.open(small_social_index, graph=small_social) as service:
            assert service.engine.backend == "memory"
            assert service.engine.num_nodes == small_social.num_nodes

    def test_opens_from_fastppv_engine(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index, delta=1e-3)
        with PPVService.open(engine) as service:
            assert service.engine.backend == "memory"
            # Engine parameters carry over into the adapter.
            assert service.engine._scalar.delta == 1e-3

    def test_auto_detects_disk(self, disk_setup):
        root, graph, assignment, index_path = disk_setup
        store = DiskGraphStore(graph, assignment, root / "detect")
        with PPVService.open(str(index_path), graph_store=store) as service:
            assert service.engine.backend == "disk"
            result = service.query(QuerySpec(3, stop=STOP))
            assert result.scores.size == graph.num_nodes
        # Owned store (opened from the path) is closed with the service.
        assert service.engine.ppv_store._handle.closed

    def test_memory_needs_graph(self, small_social_index):
        with pytest.raises(ValueError, match="graph="):
            PPVService.open(small_social_index)

    def test_disk_rejects_graph_kwarg(self, disk_setup, small_social):
        root, graph, assignment, index_path = disk_setup
        with pytest.raises(ValueError, match="graph_store="):
            PPVService.open(str(index_path), backend="disk", graph=small_social)

    def test_unknown_backend(self, small_social, small_social_index):
        with pytest.raises(KeyError, match="unknown backend"):
            PPVService.open(
                small_social_index, backend="gpu", graph=small_social
            )

    def test_detect_needs_a_hint(self):
        with pytest.raises(TypeError, match="cannot infer"):
            detect_backend(object())

    def test_available_backends(self):
        names = available_backends()
        assert "memory" in names and "disk" in names

    def test_register_custom_backend(self, small_social, small_social_index):
        built = {}

        def factory(source, *, graph=None, graph_store=None, **kwargs):
            built["source"] = source
            return serving_engines.MemoryEngine(graph, source, **kwargs)

        register_backend("custom", factory)
        try:
            with PPVService.open(
                small_social_index, backend="custom", graph=small_social
            ) as service:
                assert built["source"] is small_social_index
                result = service.query(QuerySpec(2, stop=STOP))
                assert result.iterations == 2
        finally:
            del serving_engines._BACKENDS["custom"]


class TestMemoryEquivalence:
    def test_query_many_bitwise_equal_to_engine(self, small_social,
                                                small_social_index,
                                                memory_service):
        nodes = [9, 4, 120, 77, 300, 41, 17, 250]
        for stop in [STOP, StopAtL1Error(0.05),
                     any_of(StopAfterIterations(3), StopAtL1Error(0.01))]:
            served = memory_service.query_many(
                [QuerySpec(n, stop=stop) for n in nodes]
            )
            direct = BatchFastPPV(
                small_social, small_social_index, delta=1e-4, cache_size=0
            ).query_many(nodes, stop=stop)
            for a, b in zip(served, direct):
                np.testing.assert_array_equal(a.scores, b.scores)
                assert a.iterations == b.iterations
                assert a.error_history == b.error_history
                assert a.work_units == b.work_units

    def test_top_k_specs_match_engine(self, small_social, certifiable_index):
        nodes = [5, 30, 200]
        with PPVService.open(
            certifiable_index, graph=small_social, delta=0.0
        ) as service:
            served = service.query_many(
                [QuerySpec(n, top_k=5, top_k_budget=30) for n in nodes]
            )
        direct = BatchFastPPV(
            small_social, certifiable_index, delta=0.0, cache_size=0
        ).query_top_k_many(nodes, k=5, max_iterations=30)
        assert any(r.certified for r in served)
        for a, b in zip(served, direct):
            np.testing.assert_array_equal(a.nodes, b.nodes)
            np.testing.assert_array_equal(a.scores, b.scores)
            assert a.certified == b.certified
            assert a.iterations == b.iterations

    def test_non_batch_safe_stop_keeps_scalar_semantics(
            self, small_social, small_social_index, memory_service):
        stop = any_of(StopAfterIterations(2), StopAfterTime(1e9))
        served = memory_service.query(QuerySpec(7, stop=stop))
        scalar = FastPPV(small_social, small_social_index, delta=1e-4)
        reference = scalar.query(7, stop=stop)
        np.testing.assert_array_equal(served.scores, reference.scores)
        assert served.iterations == reference.iterations

    def test_plain_int_is_a_spec(self, memory_service):
        result = memory_service.query(5)
        assert result.query == 5
        assert result.iterations == 2  # the paper's default eta

    def test_out_of_range_rejected_at_submit(self, memory_service,
                                             small_social):
        with pytest.raises(ValueError, match="out of range"):
            memory_service.submit(QuerySpec(small_social.num_nodes))

    def test_mixed_kinds_in_one_burst(self, small_social, certifiable_index):
        with PPVService.open(
            certifiable_index, graph=small_social, delta=0.0
        ) as service:
            plain, topk, multi = service.query_many([
                QuerySpec(3, stop=STOP),
                QuerySpec(8, top_k=4),
                QuerySpec((3, 8), weights=(1.0, 3.0), stop=STOP),
            ])
        assert plain.iterations == 2
        assert hasattr(topk, "certified")
        assert multi.query == 3
        assert multi.scores.shape == (small_social.num_nodes,)


class TestDiskEquivalence:
    def test_bitwise_equal_to_scalar_disk_engine(self, disk_setup):
        root, graph, assignment, index_path = disk_setup
        nodes = [9, 4, 120, 77]
        store = DiskGraphStore(graph, assignment, root / "facade")
        with DiskPPVStore(index_path) as ppv_store:
            with PPVService.open(
                ppv_store, graph_store=store, delta=0.0
            ) as service:
                served = service.query_many(
                    [QuerySpec(n, stop=STOP) for n in nodes]
                )
        reference_store = DiskGraphStore(graph, assignment, root / "scalar")
        with DiskPPVStore(index_path) as ppv_store:
            scalar = DiskFastPPV(reference_store, ppv_store, delta=0.0)
            for node, result in zip(nodes, served):
                reference = scalar.query(node, stop=STOP)
                np.testing.assert_array_equal(
                    result.scores, reference.scores
                )
                # Facade faults are the batch engine's budget-independent
                # drain count, an upper bound on the scalar engine's
                # physical faults (consecutive drains of one resident
                # cluster are free there) — see the disk_engine docstring.
                assert result.cluster_faults >= reference.cluster_faults
                assert result.hub_reads == reference.hub_reads
                assert result.truncated == reference.truncated

    def test_disk_top_k(self, disk_setup):
        root, graph, assignment, index_path = disk_setup
        store = DiskGraphStore(graph, assignment, root / "topk")
        with DiskPPVStore(index_path) as ppv_store:
            with PPVService.open(
                ppv_store, graph_store=store, delta=0.0
            ) as service:
                result = service.query(QuerySpec(9, top_k=5))
        assert result.topk.nodes.size == 5
        assert result.hub_reads > 0


class TestCoalescing:
    def test_flush_forces_the_window_closed(self, small_social,
                                            small_social_index):
        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4,
            max_delay=30.0,
        ) as service:
            handle = service.submit(QuerySpec(5, stop=STOP))
            with pytest.raises(TimeoutError):
                handle.result(timeout=0.05)
            assert not handle.done()
            service.flush()
            assert handle.done()
            assert handle.result().query == 5

    def test_concurrent_submissions_coalesce(self, small_social,
                                             small_social_index):
        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4,
            max_delay=0.2, cache_size=0,
        ) as service:
            barrier = threading.Barrier(2)
            outcome: dict[str, list] = {}

            def client(name: str, nodes: list[int]) -> None:
                barrier.wait()
                handles = [
                    service.submit(QuerySpec(n, stop=STOP)) for n in nodes
                ]
                outcome[name] = [handle.result() for handle in handles]

            threads = [
                threading.Thread(target=client, args=("a", list(range(8)))),
                threading.Thread(
                    target=client, args=("b", list(range(20, 28)))
                ),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats()
        # Both clients' bursts shared scheduler drains...
        assert stats.largest_batch > 8
        # ... and every result still matches a dedicated scalar query.
        scalar = FastPPV(small_social, small_social_index, delta=1e-4)
        for name, nodes in (("a", range(8)), ("b", range(20, 28))):
            for node, result in zip(nodes, outcome[name]):
                reference = scalar.query(node, stop=STOP)
                np.testing.assert_allclose(
                    result.scores, reference.scores, atol=1e-12
                )

    def test_max_batch_splits_drains(self, small_social, small_social_index):
        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4,
            max_batch=4, cache_size=0,
        ) as service:
            results = service.query_many(
                [QuerySpec(n, stop=STOP) for n in range(10)]
            )
            assert len(results) == 10
            assert service.stats().batches >= 3

    def test_engine_error_fails_only_its_group(self, small_social,
                                               small_social_index,
                                               monkeypatch):
        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4,
            max_delay=10.0,
        ) as service:
            original = service.engine.query_batch

            def failing(nodes, stop):
                if isinstance(stop, StopAtL1Error):
                    raise RuntimeError("backend exploded")
                return original(nodes, stop)

            monkeypatch.setattr(service.engine, "query_batch", failing)
            bad = service.submit(QuerySpec(3, stop=StopAtL1Error(0.01)))
            good = service.submit(QuerySpec(4, stop=STOP))
            service.flush()
            with pytest.raises(RuntimeError, match="backend exploded"):
                bad.result()
            assert good.result().query == 4

    def test_unknown_result_shape_served_uncached(self, small_social,
                                                  small_social_index,
                                                  monkeypatch):
        # A custom backend may return result shapes copy_served cannot
        # copy; they must be served (uncached), never strand the handle.
        class Opaque:
            def __init__(self, inner):
                self.inner = inner

        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4
        ) as service:
            original = service.engine.query_batch
            monkeypatch.setattr(
                service.engine,
                "query_batch",
                lambda nodes, stop: [
                    Opaque(r) for r in original(nodes, stop)
                ],
            )
            result = service.query(QuerySpec(5, stop=STOP))
            assert isinstance(result, Opaque)
            assert service.stats().cache_entries == 0

    def test_planner_failure_resolves_every_handle(self, small_social,
                                                   small_social_index,
                                                   monkeypatch):
        # If the drain itself blows up before per-group handling (here:
        # the cache-token refresh), no handle may be left blocking.
        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4,
            max_delay=10.0,
        ) as service:
            monkeypatch.setattr(
                service.engine,
                "cache_token",
                lambda: (_ for _ in ()).throw(RuntimeError("token broke")),
            )
            handle = service.submit(QuerySpec(3, stop=STOP))
            service.flush()
            with pytest.raises(RuntimeError, match="token broke"):
                handle.result(timeout=5)

    def test_drain_level_failure_resolves_handles_and_flush_raises(
            self, small_social, small_social_index):
        # If the drain callback itself dies (beyond the service's own
        # net), the scheduler's on_error must resolve the batch's
        # handles and flush() must re-raise instead of swallowing.
        with PPVService.open(
            small_social_index, graph=small_social, max_delay=10.0,
        ) as service:
            def exploding(jobs):
                raise RuntimeError("drain died")

            service._scheduler._execute = exploding
            handle = service.submit(QuerySpec(3, stop=STOP))
            with pytest.raises(RuntimeError, match="drain died"):
                service.flush(timeout=5)
            with pytest.raises(RuntimeError, match="drain died"):
                handle.result(timeout=5)

    def test_submit_after_close_raises(self, small_social,
                                       small_social_index):
        service = PPVService.open(small_social_index, graph=small_social)
        service.query(QuerySpec(3))
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(QuerySpec(4))


class TestStreaming:
    def test_snapshot_sequence_matches_scalar_run(self, small_social,
                                                  small_social_index,
                                                  memory_service):
        snapshots = list(memory_service.stream(QuerySpec(7, stop=STOP)))
        scalar = FastPPV(small_social, small_social_index, delta=1e-4)
        reference = scalar.query(7, stop=STOP)
        assert len(snapshots) == reference.iterations + 1
        assert [s.iteration for s in snapshots] == list(
            range(reference.iterations + 1)
        )
        np.testing.assert_array_equal(
            snapshots[-1].scores, reference.scores
        )
        np.testing.assert_allclose(
            [s.l1_error for s in snapshots], reference.error_history
        )
        # Errors only shrink (monotone mass accumulation).
        errors = [s.l1_error for s in snapshots]
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_snapshots_are_stable_copies(self, memory_service):
        snapshots = list(memory_service.stream(QuerySpec(7, stop=STOP)))
        # Frames must not alias one engine buffer: each is a snapshot in
        # time, so mass only grows frame over frame.
        assert snapshots[0].scores.sum() < snapshots[-1].scores.sum()

    def test_certificate_status_streams(self, small_social,
                                        certifiable_index):
        with PPVService.open(
            certifiable_index, graph=small_social, delta=0.0
        ) as service:
            snapshots = list(service.stream(QuerySpec(7, top_k=3)))
        assert all(s.certified is not None for s in snapshots)
        assert snapshots[-1].certified  # fired (that is why it stopped)
        assert not snapshots[0].certified

    def test_early_break_cancels(self, small_social, small_social_index):
        with PPVService.open(
            small_social_index, graph=small_social, delta=0.0
        ) as service:
            stream = service.stream(
                QuerySpec(7, stop=StopAfterIterations(50))
            )
            seen = 0
            for _snapshot in stream:
                seen += 1
                if seen == 2:
                    break
            stream.close()
            # The service is still healthy and serves new traffic.
            assert service.query(QuerySpec(3, stop=STOP)).iterations == 2

    def test_multi_node_stream_rejected(self, memory_service):
        with pytest.raises(ValueError, match="single-node"):
            memory_service.stream(QuerySpec((1, 2)))

    def test_disk_streaming(self, disk_setup):
        root, graph, assignment, index_path = disk_setup
        store = DiskGraphStore(graph, assignment, root / "stream")
        with DiskPPVStore(index_path) as ppv_store:
            with PPVService.open(
                ppv_store, graph_store=store, delta=0.0
            ) as service:
                snapshots = list(service.stream(QuerySpec(9, stop=STOP)))
        assert [s.iteration for s in snapshots] == list(range(len(snapshots)))
        assert snapshots[-1].l1_error <= snapshots[0].l1_error

    def test_disk_snapshots_match_scalar_on_iteration(self, disk_setup):
        # The streamed sequence is exactly the scalar disk engine's
        # on_iteration contract: one snapshot per executed iteration,
        # iteration 0 included, bitwise-equal states.
        root, graph, assignment, index_path = disk_setup
        store = DiskGraphStore(graph, assignment, root / "stream_eq")
        with DiskPPVStore(index_path) as ppv_store:
            with PPVService.open(
                ppv_store, graph_store=store, delta=0.0
            ) as service:
                snapshots = list(service.stream(QuerySpec(4, stop=STOP)))
        states = []
        reference_store = DiskGraphStore(
            graph, assignment, root / "stream_eq_ref"
        )
        with DiskPPVStore(index_path) as ppv_store:
            scalar = DiskFastPPV(reference_store, ppv_store, delta=0.0)
            reference = scalar.query(
                4,
                stop=STOP,
                on_iteration=lambda s: states.append(
                    (s.iteration, s.l1_error, s.frontier_size)
                ),
            )
        assert len(snapshots) == reference.result.iterations + 1
        assert len(snapshots) == len(states)
        assert [s.iteration for s in snapshots] == [s[0] for s in states]
        assert [s.l1_error for s in snapshots] == [s[1] for s in states]
        assert [s.frontier_size for s in snapshots] == [
            s[2] for s in states
        ]
        np.testing.assert_array_equal(
            snapshots[-1].scores, reference.scores
        )

    def test_disk_stream_with_truncated_prime_push(self, disk_setup):
        # A fault-budget-truncated query still streams its snapshots,
        # and the served result carries truncated=True.
        root, graph, assignment, index_path = disk_setup
        store = DiskGraphStore(graph, assignment, root / "stream_trunc")
        with DiskPPVStore(index_path) as ppv_store:
            non_hub = next(
                q for q in range(graph.num_nodes) if q not in ppv_store
            )
            with PPVService.open(
                ppv_store, graph_store=store, delta=0.0, fault_budget=1,
                cache_size=0,
            ) as service:
                snapshots = list(
                    service.stream(QuerySpec(non_hub, stop=STOP))
                )
                result = service.query(QuerySpec(non_hub, stop=STOP))
        assert result.truncated
        assert len(snapshots) == result.result.iterations + 1
        np.testing.assert_array_equal(snapshots[-1].scores, result.scores)

    def test_disk_top_k_certificate_streams(self, disk_setup, small_social,
                                            tmp_path):
        # Certificates need unclipped prime PPVs; rebuild and stream a
        # top-k spec on the disk backend.
        from repro import build_index as _build_index
        root, graph, assignment, index_path = disk_setup
        with DiskPPVStore(index_path) as existing:
            hubs = [int(h) for h in np.nonzero(existing.hub_mask)[0][:40]]
        index = _build_index(small_social, hubs, clip=0.0, epsilon=1e-6)
        path = tmp_path / "unclipped.fppv"
        save_index(index, path)
        store = DiskGraphStore(graph, assignment, tmp_path / "cert")
        with DiskPPVStore(path) as ppv_store:
            with PPVService.open(
                ppv_store, graph_store=store, delta=0.0
            ) as service:
                snapshots = list(service.stream(QuerySpec(7, top_k=3)))
        assert all(s.certified is not None for s in snapshots)


class TestMultiNodeSpecs:
    def test_matches_multi_node_ppv_on_memory(self, small_social,
                                              small_social_index,
                                              memory_service):
        nodes, weights = (3, 9, 40), (2.0, 1.0, 1.0)
        served = memory_service.query(
            QuerySpec(nodes, weights=weights, stop=STOP)
        )
        scalar = FastPPV(small_social, small_social_index, delta=1e-4)
        reference = multi_node_ppv(
            scalar, list(nodes), weights=list(weights), stop=STOP
        )
        assert served.query == reference.query
        assert served.iterations == reference.iterations
        np.testing.assert_allclose(served.scores, reference.scores,
                                   atol=1e-12)
        np.testing.assert_allclose(
            served.error_history, reference.error_history, atol=1e-12
        )

    def test_matches_manual_combination_on_disk(self, disk_setup):
        root, graph, assignment, index_path = disk_setup
        nodes, weights = (3, 9), (1.0, 3.0)
        store = DiskGraphStore(graph, assignment, root / "multi")
        with DiskPPVStore(index_path) as ppv_store:
            with PPVService.open(
                ppv_store, graph_store=store, delta=0.0
            ) as service:
                served = service.query(
                    QuerySpec(nodes, weights=weights, stop=STOP)
                )
        reference_store = DiskGraphStore(graph, assignment, root / "multi2")
        with DiskPPVStore(index_path) as ppv_store:
            scalar = DiskFastPPV(reference_store, ppv_store, delta=0.0)
            parts = [scalar.query(n, stop=STOP) for n in nodes]
        expected = combine_results(
            nodes,
            normalise_weights(len(nodes), weights),
            [p.result for p in parts],
        )
        np.testing.assert_array_equal(served.scores, expected.scores)
        assert served.cluster_faults == sum(p.cluster_faults for p in parts)
        assert served.hub_reads == sum(p.hub_reads for p in parts)

    def test_multi_node_top_k_certifies_on_the_mixture(self, small_social,
                                                       certifiable_index):
        with PPVService.open(
            certifiable_index, graph=small_social, delta=0.0
        ) as service:
            result = service.query(
                QuerySpec((3, 9), top_k=5, top_k_budget=30)
            )
        assert result.nodes.size == 5
        # The certificate is re-evaluated on the combined estimate.
        assert isinstance(result.certified, bool)

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            QuerySpec((1, 2), weights=(1.0,))
        with pytest.raises(ValueError):
            QuerySpec((1, 2), weights=(-1.0, 2.0))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            QuerySpec(())
        with pytest.raises(ValueError):
            QuerySpec(1, stop=STOP, top_k=5)
        with pytest.raises(ValueError):
            QuerySpec(1, top_k=0)


class TestCloseStreamInteraction:
    """PR-5 audit: closing the service with live streaming iterators
    must cancel them cleanly, never hang, and be idempotent."""

    class _SlowNeverStop:
        """Never stops on its own; each check costs ~20 ms, so a
        32-iteration query takes >600 ms unless cancellation cuts in."""

        def should_stop(self, state) -> bool:
            time.sleep(0.02)
            return False

    def test_close_cancels_a_live_stream(self, small_social,
                                         small_social_index):
        service = PPVService.open(
            small_social_index, graph=small_social, delta=1e-4
        )
        spec = QuerySpec(7, stop=self._SlowNeverStop())
        iterator = service.stream(spec)
        first = next(iterator)
        assert first.iteration == 0
        started = time.monotonic()
        service.close()
        elapsed = time.monotonic() - started
        # The cancellable stop fires at the next iteration boundary:
        # close() must not sit through the full iteration budget.
        assert elapsed < 2.0, f"close() blocked for {elapsed:.2f}s"
        remaining = list(iterator)
        assert len(remaining) <= 2

    def test_close_is_idempotent(self, small_social, small_social_index):
        service = PPVService.open(small_social_index, graph=small_social)
        assert service.query(QuerySpec(3)).iterations == 2
        service.close()
        service.close()  # second close is a no-op, not an error

    def test_close_with_queued_streams_resolves_all_iterators(
        self, small_social, small_social_index
    ):
        service = PPVService.open(
            small_social_index, graph=small_social, delta=1e-4
        )
        iterators = [
            service.stream(QuerySpec(node, stop=StopAfterIterations(1)))
            for node in (3, 7, 11, 19)
        ]
        service.close()
        # Every iterator terminates (frames then the internal DONE
        # sentinel) instead of hanging on a dead drain thread.
        for iterator in iterators:
            assert len(list(iterator)) <= 2

    def test_stream_after_close_raises(self, small_social,
                                       small_social_index):
        service = PPVService.open(small_social_index, graph=small_social)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.stream(QuerySpec(3))
        # The failed submission must not leak into the live-stream set.
        assert not service._active_streams

    def test_closing_the_iterator_unregisters_the_stream(
        self, small_social, small_social_index
    ):
        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4
        ) as service:
            iterator = service.stream(QuerySpec(7))
            next(iterator)
            iterator.close()
            deadline = time.monotonic() + 5
            while service._active_streams and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not service._active_streams
