"""Scheduled approximation beyond PPV: discounted hitting probability.

The paper's future work #3 proposes carrying the partition-and-prioritise
principle to other random-walk measures.  This example estimates the
discounted hitting probability f_p(q) = E[beta^tau] (tau = first-hit
time of p from q) with the same hub-length schedule: level 0 covers
hub-free first-passage walks, each further level splices hub segments,
and the bracket [value, value + remaining_mass] is known at every level.

Run with:  python examples/hitting_time.py
"""

import numpy as np

from repro import select_hubs, social_graph
from repro.core.hitting import exact_hitting, scheduled_hitting


def main() -> None:
    graph = social_graph(num_nodes=800, seed=6)
    hubs = select_hubs(graph, 60)
    hub_mask = np.zeros(graph.num_nodes, dtype=bool)
    hub_mask[hubs] = True

    # A nearby target so first-passage probabilities are non-trivial.
    query = 17
    target = int(graph.out_neighbors(int(graph.out_neighbors(query)[0]))[0])
    exact = exact_hitting(graph, query, target, beta=0.85)
    print(f"exact discounted hitting probability f_{target}({query}) = {exact:.6f}\n")

    print(f"{'levels':>7} {'lower bound':>12} {'upper bound':>12} {'bracket width':>14}")
    for levels in range(0, 7):
        estimate = scheduled_hitting(
            graph, query, target, hub_mask, beta=0.85,
            max_levels=levels, epsilon=1e-10,
        )
        upper = estimate.value + estimate.remaining_mass
        print(
            f"{levels:>7} {estimate.value:>12.6f} {upper:>12.6f} "
            f"{upper - estimate.value:>14.6f}"
        )

    print(
        "\nthe bracket always contains the exact value and narrows "
        "geometrically — the PPV accuracy-awareness, transferred."
    )


if __name__ == "__main__":
    main()
