"""Error accounting: the Theorem 2 bound and the Eq. 6 query-time error.

Two distinct quantities live here and must not be confused:

* the *query-time* L1 error — computable from the estimate alone because
  FastPPV only under-approximates (Theorem 1) and the exact PPV sums to 1;
* the *a priori* bound ``(1 - alpha)^(k+2)`` on that error after ``k``
  iterations (Theorem 2) — what makes "a few iterations suffice" a theorem
  rather than an observation.
"""

from __future__ import annotations

import numpy as np

from repro.graph.pagerank import DEFAULT_ALPHA


def l1_error_bound(iterations: int, alpha: float = DEFAULT_ALPHA) -> float:
    """Theorem 2: upper bound on the L1 error after ``iterations``.

    ``phi(k) <= (1 - alpha)^(k + 2)`` — decays exponentially, e.g. with
    ``alpha = 0.15``: ``phi(10) <= 0.143``, ``phi(20) <= 0.0280``,
    ``phi(30) <= 0.00552`` (the paper's worked numbers).
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    return (1.0 - alpha) ** (iterations + 2)


def query_time_l1_error(estimate: np.ndarray) -> float:
    """Eq. 6: ``phi(k) = 1 - ||estimate||_1``.

    Valid because the scheduled approximation never over-counts a tour
    (Theorem 1) and the exact PPV is a probability distribution.  On graphs
    with dangling nodes the exact PPV sums to slightly less than 1 and this
    becomes a (tight) upper bound.
    """
    return 1.0 - float(np.asarray(estimate).sum())


def realized_l1_error(exact: np.ndarray, estimate: np.ndarray) -> float:
    """The actual ``||exact - estimate||_1`` (needs the ground truth)."""
    return float(np.abs(np.asarray(exact) - np.asarray(estimate)).sum())


def iterations_for_error(target: float, alpha: float = DEFAULT_ALPHA) -> int:
    """Smallest ``k`` whose Theorem 2 bound is at most ``target``.

    Inverse of :func:`l1_error_bound`; used by auto-configuration to turn
    an accuracy requirement into an iteration budget a priori.
    """
    if not 0.0 < target < 1.0:
        raise ValueError("target must lie in (0, 1)")
    k = 0
    while l1_error_bound(k, alpha) > target:
        k += 1
    return k
