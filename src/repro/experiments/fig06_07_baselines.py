"""Figs. 5-7: accuracy-moderated comparison of FastPPV vs the baselines.

One shared run produces the data for three of the paper's exhibits:

* Fig. 5 — the configuration table (inputs);
* Fig. 6 — accuracy of the three methods under each configuration;
* Fig. 7 — online time per query, offline space, offline time.
"""

from __future__ import annotations

from repro.experiments.configs import CONFIGS, Config
from repro.experiments.datasets import dblp_graph, livejournal_graph
from repro.experiments.report import Table
from repro.experiments.runner import (
    MethodOutcome,
    run_fastppv,
    run_hubrank,
    run_montecarlo,
)
from repro.experiments.workloads import make_workload
from repro.graph.pagerank import global_pagerank

METHODS = ("FastPPV", "HubRankP", "MonteCarlo")


def run_baseline_comparison(
    scale: float = 1.0,
    num_queries: int = 40,
    configs: dict[str, Config] | None = None,
    seed: int = 0,
) -> dict[str, list[MethodOutcome]]:
    """Run all three methods under every configuration.

    Returns ``config name -> [FastPPV, HubRankP, MonteCarlo] outcomes``.
    """
    if configs is None:
        configs = CONFIGS
    graphs = {}
    workloads = {}
    pageranks = {}
    for config in configs.values():
        if config.dataset not in graphs:
            if config.dataset == "dblp":
                graph = dblp_graph(scale=scale).graph
            else:
                graph = livejournal_graph(scale=scale)
            graphs[config.dataset] = graph
            workloads[config.dataset] = make_workload(
                graph, num_queries=num_queries, seed=seed
            )
            pageranks[config.dataset] = global_pagerank(graph)

    results: dict[str, list[MethodOutcome]] = {}
    for name, config in configs.items():
        graph = graphs[config.dataset]
        workload = workloads[config.dataset]
        pagerank = pageranks[config.dataset]
        results[name] = [
            run_fastppv(
                graph,
                workload,
                num_hubs=config.num_hubs,
                eta=config.fastppv_eta,
                delta=config.fastppv_delta,
                pagerank=pagerank,
            ),
            run_hubrank(
                graph,
                workload,
                num_hubs=config.num_hubs,
                push_threshold=config.hubrank_push,
                pagerank=pagerank,
            ),
            run_montecarlo(
                graph,
                workload,
                num_hubs=config.num_hubs,
                samples_per_query=config.montecarlo_samples,
                pagerank=pagerank,
                seed=seed,
            ),
        ]
    return results


def fig5_table(configs: dict[str, Config] | None = None) -> Table:
    """The configuration table (Fig. 5)."""
    if configs is None:
        configs = CONFIGS
    table = Table(
        title="Fig. 5 — accuracy-moderated configurations",
        headers=["Config", "Dataset", "|H|", "HubRankP push", "MonteCarlo N", "FastPPV eta"],
    )
    for config in configs.values():
        table.add_row(
            config.name,
            config.dataset,
            config.num_hubs,
            config.hubrank_push,
            config.montecarlo_samples,
            config.fastppv_eta,
        )
    return table


def fig6_table(results: dict[str, list[MethodOutcome]]) -> Table:
    """Accuracy of every method under every configuration (Fig. 6)."""
    table = Table(
        title="Fig. 6 — accuracy under accuracy-moderated configurations",
        headers=["Config", "Method", "Kendall", "Precision", "RAG", "L1 sim"],
    )
    for name, outcomes in results.items():
        for outcome in outcomes:
            table.add_row(
                name,
                outcome.method,
                outcome.accuracy.kendall,
                outcome.accuracy.precision,
                outcome.accuracy.rag,
                outcome.accuracy.l1_similarity,
            )
    return table


def fig7_tables(results: dict[str, list[MethodOutcome]]) -> tuple[Table, Table, Table]:
    """Online time / offline space / offline time (Fig. 7 a-c)."""
    online = Table(
        title="Fig. 7(a) — online time per query (ms)",
        headers=["Config"] + list(METHODS),
    )
    space = Table(
        title="Fig. 7(b) — offline total space (MB)",
        headers=["Config"] + list(METHODS),
    )
    offline = Table(
        title="Fig. 7(c) — offline total time (s)",
        headers=["Config"] + list(METHODS),
    )
    for name, outcomes in results.items():
        online.add_row(name, *[o.online_ms_per_query for o in outcomes])
        space.add_row(name, *[o.offline_megabytes for o in outcomes])
        offline.add_row(name, *[o.offline_seconds for o in outcomes])
    return online, space, offline


def fig7_work_table(results: dict[str, list[MethodOutcome]]) -> Table:
    """Supplementary: algorithmic work per query (edges + index entries).

    Wall-clock milliseconds at our 200x-reduced scale are dominated by
    per-call constants of vectorised kernels; work units are the
    scale-independent comparison (see DESIGN.md).
    """
    table = Table(
        title="Fig. 7(d, suppl.) — online work units per query",
        headers=["Config"] + list(METHODS),
    )
    for name, outcomes in results.items():
        table.add_row(name, *[o.online_work_per_query for o in outcomes])
    return table
