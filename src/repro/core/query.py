"""Online incremental query processing (Algorithm 2, Theorem 4).

The engine estimates a PPV partition by partition: iteration 0 is the
query's own prime PPV (``T^0``); iteration ``i`` splices the prime PPVs of
the hubs on the current frontier into the estimate, covering exactly the
tours of hub length ``i``.  Because every increment only *adds*
probability mass, the running L1 error is ``1 - ||estimate||_1`` (Eq. 6)
and can gate a user-chosen stopping condition at query time — the paper's
"accuracy-aware" property.

Splice bookkeeping (the Theorem 4 recursion) works on **arrival masses**:
``frontier[h]`` holds the probability of reaching ``h`` through tours of
hub length ``i - 1`` *without stopping*.  Expanding ``h`` adds
``frontier[h] * r^0_h`` to the increment and feeds
``frontier[h] * border_mass_h`` into the next frontier.  This form is
equivalent to Eq. 12's ``(1/alpha) r^{i-1}(h) * r^0_h`` but excludes the
zero-length trivial tour inside ``r^0_h(h)`` that Eq. 12, read literally,
would double-count (see the module docstring of :mod:`repro.core.prime`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.core.index import PPVIndex
from repro.core.prime import PrimePPV, prime_ppv

DEFAULT_DELTA = 0.005
"""Border-hub expansion threshold of Algorithm 2, line 9 (Sect. 5.2)."""


@dataclass(frozen=True)
class QueryState:
    """What a stopping condition can look at after each iteration.

    ``scores`` is the live estimate (a read view, not a copy) so that
    content-aware conditions — e.g. the certified top-k of
    :mod:`repro.core.topk` — can run in a single incremental pass.
    """

    iteration: int
    l1_error: float
    elapsed_seconds: float
    frontier_size: int
    scores: "np.ndarray | None" = None


class StoppingCondition(Protocol):
    """Decides whether to run another iteration (Sect. 5.2, input ``S``)."""

    def should_stop(self, state: QueryState) -> bool:
        """Return ``True`` to stop *before* the next iteration runs."""
        ...


@dataclass(frozen=True)
class StopAfterIterations:
    """Run exactly ``eta`` incremental iterations beyond iteration 0.

    ``eta = 0`` returns the bare prime PPV of the query; the paper's
    default is ``eta = 2``.
    """

    eta: int

    def should_stop(self, state: QueryState) -> bool:
        return state.iteration >= self.eta


@dataclass(frozen=True)
class StopAtL1Error:
    """Stop once the query-time L1 error (Eq. 6) is below ``target``."""

    target: float

    def should_stop(self, state: QueryState) -> bool:
        return state.l1_error <= self.target


@dataclass(frozen=True)
class StopAfterTime:
    """Stop once ``seconds`` of wall-clock time have elapsed."""

    seconds: float

    def should_stop(self, state: QueryState) -> bool:
        return state.elapsed_seconds >= self.seconds


@dataclass(frozen=True)
class _AnyOf:
    conditions: tuple[StoppingCondition, ...]

    def should_stop(self, state: QueryState) -> bool:
        return any(c.should_stop(state) for c in self.conditions)


def any_of(*conditions: StoppingCondition) -> StoppingCondition:
    """Stop as soon as any of the given conditions stops.

    E.g. ``any_of(StopAtL1Error(0.01), StopAfterTime(0.05))`` reproduces
    "accuracy requirement or time limit, whichever first".
    """
    return _AnyOf(tuple(conditions))


@dataclass
class QueryResult:
    """Outcome of one FastPPV query.

    Attributes
    ----------
    query:
        The query node.
    scores:
        Dense estimated PPV (length ``n``).  Monotonically below the exact
        PPV entry-wise (Theorem 1).
    iterations:
        Number of incremental iterations performed (0 = prime PPV only).
    error_history:
        Query-time L1 error after iteration 0, 1, ..., ``iterations``
        (Eq. 6: ``1 - ||estimate||_1``).
    hubs_expanded:
        Total prime PPVs spliced across all iterations.
    seconds:
        Wall-clock query time.
    work_units:
        Scale-independent work: edge traversals of the iteration-0 prime
        push plus index entries touched by splices.  Reported alongside
        wall-clock time because at our reduced graph scale constant
        factors (numpy batch kernels) can dominate milliseconds.
    """

    query: int
    scores: np.ndarray
    iterations: int
    error_history: list[float] = field(default_factory=list)
    hubs_expanded: int = 0
    seconds: float = 0.0
    work_units: int = 0

    @property
    def l1_error(self) -> float:
        """Query-time L1 error of the final estimate."""
        return self.error_history[-1]

    def top_k(self, k: int = 10, exclude_query: bool = False) -> np.ndarray:
        """Node ids of the ``k`` highest scores, best first.

        Ties break by node id; ``exclude_query`` drops the query node
        itself (useful for recommendation scenarios).
        """
        scores = self.scores
        if exclude_query:
            scores = scores.copy()
            scores[self.query] = -np.inf
        order = np.lexsort((np.arange(scores.size), -scores))
        return order[:k]


class FastPPV:
    """The FastPPV online engine (Algorithm 2).

    Parameters
    ----------
    graph:
        The graph queries run against.
    index:
        Offline-precomputed hub prime PPVs
        (:func:`repro.core.index.build_index`).
    delta:
        Border-hub expansion threshold: a frontier hub is expanded only if
        its current increment score ``alpha * arrival_mass`` exceeds
        ``delta`` (Algorithm 2, line 9).
    max_iterations:
        Hard safety cap on incremental iterations regardless of the
        stopping condition.
    online_epsilon:
        Reachability cut-off for the *query-time* prime push (iteration 0
        of a non-hub query).  Defaults to the index's offline epsilon; a
        coarser value trades a little iteration-0 mass (visible through
        the query-time error) for lower latency.
    """

    def __init__(
        self,
        graph,
        index: PPVIndex,
        delta: float = DEFAULT_DELTA,
        max_iterations: int = 64,
        online_epsilon: float | None = None,
    ) -> None:
        if index.hub_mask.shape != (graph.num_nodes,):
            raise ValueError("index was built for a different graph size")
        if delta < 0.0:
            raise ValueError("delta must be non-negative")
        self.graph = graph
        self.index = index
        self.delta = delta
        self.max_iterations = max_iterations
        self.online_epsilon = (
            online_epsilon if online_epsilon is not None else index.epsilon
        )
        self._batch_engine = None

    # ------------------------------------------------------------------ #

    def _prime_of_query(self, query: int) -> PrimePPV:
        """Iteration 0: load the query's prime PPV or push it on the fly."""
        if query in self.index:
            return self.index.get(query)
        return prime_ppv(
            self.graph,
            query,
            self.index.hub_mask,
            alpha=self.index.alpha,
            epsilon=self.online_epsilon,
        )

    def query(
        self,
        query: int,
        stop: StoppingCondition | None = None,
        on_iteration: Callable[[QueryState], None] | None = None,
    ) -> QueryResult:
        """Estimate the PPV of ``query`` incrementally.

        Parameters
        ----------
        query:
            Query node id.
        stop:
            Stopping condition; defaults to the paper's
            ``StopAfterIterations(2)``.
        on_iteration:
            Optional callback invoked with the :class:`QueryState` after
            every iteration (iteration 0 included) — handy for tracing the
            anytime behaviour.

        Returns
        -------
        QueryResult
        """
        if not 0 <= query < self.graph.num_nodes:
            raise ValueError(f"query node {query} out of range")
        if stop is None:
            stop = StopAfterIterations(2)
        alpha = self.index.alpha
        started = time.perf_counter()

        base = self._prime_of_query(query)
        estimate = base.to_dense(self.graph.num_nodes)
        frontier: dict[int, float] = dict(
            zip(base.border_hubs.tolist(), base.border_masses.tolist())
        )
        error_history = [1.0 - float(estimate.sum())]
        hubs_expanded = 0
        iteration = 0
        work_units = base.edges_touched if query not in self.index else 0

        def current_state() -> QueryState:
            return QueryState(
                iteration=iteration,
                l1_error=error_history[-1],
                elapsed_seconds=time.perf_counter() - started,
                frontier_size=len(frontier),
                scores=estimate,
            )

        if on_iteration is not None:
            on_iteration(current_state())

        while (
            frontier
            and iteration < self.max_iterations
            and not stop.should_stop(current_state())
        ):
            iteration += 1
            next_frontier: dict[int, float] = {}
            for hub, mass in frontier.items():
                if alpha * mass <= self.delta:
                    continue
                entry = self.index.get(hub)
                estimate[entry.nodes] += mass * entry.scores
                # Remove the zero-length "trivial tour" inside r^0_hub(hub):
                # the tour that merely *arrives* at the hub was already
                # scored by the previous increment (see module docstring).
                estimate[hub] -= alpha * mass
                hubs_expanded += 1
                work_units += entry.nodes.size + entry.border_hubs.size
                for border, border_mass in zip(
                    entry.border_hubs.tolist(), entry.border_masses.tolist()
                ):
                    next_frontier[border] = (
                        next_frontier.get(border, 0.0) + mass * border_mass
                    )
            frontier = next_frontier
            error_history.append(1.0 - float(estimate.sum()))
            if on_iteration is not None:
                on_iteration(current_state())

        return QueryResult(
            query=query,
            scores=estimate,
            iterations=iteration,
            error_history=error_history,
            hubs_expanded=hubs_expanded,
            seconds=time.perf_counter() - started,
            work_units=work_units,
        )

    @property
    def batch_engine(self):
        """The :class:`~repro.core.batch.BatchFastPPV` twin of this engine.

        Built lazily with the same parameters, so workloads get the
        sparse-matrix batch path (and its completed-PPV cache) through
        one shared twin.
        """
        if self._batch_engine is None:
            from repro.core.batch import BatchFastPPV

            self._batch_engine = BatchFastPPV(
                self.graph,
                self.index,
                delta=self.delta,
                max_iterations=self.max_iterations,
                online_epsilon=self.online_epsilon,
            )
        return self._batch_engine
