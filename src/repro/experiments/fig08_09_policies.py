"""Figs. 8-9: effect of the hub selection policy.

Compares expected utility (Eq. 7) against PageRank-only and
out-degree-only selection — the paper's Sect. 6.2 — on both the online
phase (accuracy + time, Fig. 8) and the offline phase (space + time,
Fig. 9).  Random selection is "substantially worse" and omitted by the
paper; we include it behind a flag for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hubs import HubPolicy
from repro.experiments.report import Table
from repro.experiments.runner import MethodOutcome, run_fastppv
from repro.experiments.workloads import Workload
from repro.graph.digraph import DiGraph
from repro.graph.pagerank import global_pagerank

POLICIES = (
    HubPolicy.EXPECTED_UTILITY,
    HubPolicy.PAGERANK,
    HubPolicy.OUT_DEGREE,
)


@dataclass
class PolicyOutcome:
    """One policy's online + offline accounting."""

    policy: HubPolicy
    outcome: MethodOutcome


def run_policy_comparison(
    graph: DiGraph,
    workload: Workload,
    num_hubs: int,
    eta: int = 2,
    include_random: bool = False,
) -> list[PolicyOutcome]:
    """Run FastPPV once per hub selection policy."""
    pagerank = global_pagerank(graph, alpha=workload.alpha)
    policies = list(POLICIES) + ([HubPolicy.RANDOM] if include_random else [])
    results = []
    for policy in policies:
        outcome = run_fastppv(
            graph,
            workload,
            num_hubs=num_hubs,
            eta=eta,
            policy=policy,
            pagerank=pagerank,
        )
        results.append(PolicyOutcome(policy=policy, outcome=outcome))
    return results


def fig8_table(results: list[PolicyOutcome], dataset: str) -> Table:
    """Hub policy effect on online processing (Fig. 8)."""
    table = Table(
        title=f"Fig. 8 ({dataset}) — hub selection policy, online phase",
        headers=["Policy", "Kendall", "Precision", "RAG", "L1 sim", "Time (ms)"],
    )
    for item in results:
        accuracy = item.outcome.accuracy
        table.add_row(
            item.policy.value,
            accuracy.kendall,
            accuracy.precision,
            accuracy.rag,
            accuracy.l1_similarity,
            item.outcome.online_ms_per_query,
        )
    return table


def fig9_table(results: list[PolicyOutcome], dataset: str) -> Table:
    """Hub policy effect on offline precomputation (Fig. 9)."""
    table = Table(
        title=f"Fig. 9 ({dataset}) — hub selection policy, offline phase",
        headers=["Policy", "Total space (MB)", "Total time (s)"],
    )
    for item in results:
        table.add_row(
            item.policy.value,
            item.outcome.offline_megabytes,
            item.outcome.offline_seconds,
        )
    return table
