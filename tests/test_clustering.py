"""Unit tests for PPR-based graph clustering."""

import numpy as np
import pytest

from repro.storage import cluster_graph


class TestClusterGraph:
    def test_every_node_assigned(self, small_social):
        assignment = cluster_graph(small_social, 5, seed=1)
        assert assignment.labels.shape == (small_social.num_nodes,)
        assert assignment.labels.min() >= 0
        assert assignment.labels.max() < 5

    def test_anchor_owns_itself(self, small_social):
        assignment = cluster_graph(small_social, 6, seed=2)
        for cluster, anchor in enumerate(assignment.anchors):
            assert assignment.labels[anchor] == cluster

    def test_members_partition_nodes(self, small_social):
        assignment = cluster_graph(small_social, 4, seed=3)
        all_members = np.concatenate(
            [assignment.members(c) for c in range(assignment.num_clusters)]
        )
        assert np.sort(all_members).tolist() == list(range(small_social.num_nodes))

    def test_sizes_sum_to_n(self, small_social):
        assignment = cluster_graph(small_social, 4, seed=3)
        assert assignment.sizes().sum() == small_social.num_nodes

    def test_more_clusters_smaller_largest_fraction(self, small_social):
        few = cluster_graph(small_social, 3, seed=4)
        many = cluster_graph(small_social, 12, seed=4)
        assert many.largest_fraction(small_social) <= few.largest_fraction(
            small_social
        ) + 0.05

    def test_deterministic(self, small_social):
        a = cluster_graph(small_social, 5, seed=9)
        b = cluster_graph(small_social, 5, seed=9)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.anchors, b.anchors)

    def test_single_cluster(self, small_social):
        assignment = cluster_graph(small_social, 1, seed=0)
        assert assignment.num_clusters == 1
        assert np.all(assignment.labels == 0)
        assert assignment.largest_fraction(small_social) == pytest.approx(1.0)

    def test_clusters_capped_at_nodes(self):
        from repro.graph.generators import cycle_graph

        assignment = cluster_graph(cycle_graph(3), 10, seed=0)
        assert assignment.num_clusters == 3

    def test_invalid_count(self, small_social):
        with pytest.raises(ValueError):
            cluster_graph(small_social, 0)

    def test_locality(self, small_social):
        # PPR clustering should keep most edges within clusters better
        # than a random assignment does.
        assignment = cluster_graph(small_social, 5, seed=1)
        rng = np.random.default_rng(1)
        random_labels = rng.integers(0, 5, size=small_social.num_nodes)
        def internal_fraction(labels):
            internal = sum(
                1 for s, d in small_social.edges() if labels[s] == labels[d]
            )
            return internal / small_social.num_edges
        assert internal_fraction(assignment.labels) > internal_fraction(
            random_labels
        )
