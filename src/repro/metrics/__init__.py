"""Accuracy metrics of Sect. 6: two over rankings, two over scores.

All four follow the convention "larger is better":

* :func:`kendall_tau` and :func:`precision_at_k` compare the *ranking* of
  the top-k nodes;
* :func:`rag` (Relative Average Goodness) and :func:`l1_similarity`
  (``1 - L1 error``, the paper's re-presentation of L1 error) compare the
  *scores*.
"""

from repro.metrics.extras import (
    intersection_similarity,
    ndcg_at_k,
    spearman_footrule,
)
from repro.metrics.ranking import kendall_tau, precision_at_k, top_k_nodes
from repro.metrics.scores import l1_error, l1_similarity, rag
from repro.metrics.suite import AccuracyReport, evaluate_accuracy

__all__ = [
    "top_k_nodes",
    "kendall_tau",
    "precision_at_k",
    "rag",
    "l1_error",
    "l1_similarity",
    "AccuracyReport",
    "evaluate_accuracy",
    "ndcg_at_k",
    "spearman_footrule",
    "intersection_similarity",
]
