"""Disk-resident deployment: bounded memory, counted I/O (Sect. 5.3).

The graph is segmented into PPR clusters persisted as files; at most
``memory_budget`` clusters are RAM-resident (LRU).  The PPV index lives
in a binary file fetched one hub per read.  Every query reports its
cluster faults and index reads — the currency of Fig. 16.

Run with:  python examples/disk_deployment.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import StopAfterIterations, build_index, select_hubs, social_graph
from repro.storage import (
    DiskFastPPV,
    DiskGraphStore,
    DiskPPVStore,
    cluster_graph,
    save_index,
)


def main() -> None:
    graph = social_graph(num_nodes=2500, seed=4)
    # A dense hub set keeps prime subgraphs small, so a query's working
    # set spans only a few clusters — the regime Sect. 5.3 targets.
    hubs = select_hubs(graph, 400)
    index = build_index(graph, hubs, epsilon=1e-6)

    workdir = Path(tempfile.mkdtemp(prefix="fastppv_disk_"))
    index_path = workdir / "index.fppv"
    bytes_written = save_index(index, index_path)
    print(f"index on disk: {bytes_written / 1e6:.2f} MB at {index_path}")

    assignment = cluster_graph(graph, num_clusters=12, seed=1)
    store = DiskGraphStore(graph, assignment, workdir / "clusters")
    print(
        f"graph in {assignment.num_clusters} clusters; largest = "
        f"{store.largest_cluster_bytes / 1e3:.1f} kB "
        f"({assignment.largest_fraction(graph) * 100:.1f}% of the graph)"
    )

    # A realistic workload has locality: consecutive queries hit the same
    # region (e.g. a user browsing one community).  Larger cluster budgets
    # pay off exactly there — the region stays cached across queries.
    rng = np.random.default_rng(0)
    base = int(rng.integers(graph.num_nodes))
    queries = [(base + offset) % graph.num_nodes for offset in range(8)]

    print("\nworkload: 8 queries in one neighbourhood, asked twice")
    for budget in (1, 6):
        budget_store = DiskGraphStore(
            graph, assignment, workdir / f"clusters_b{budget}",
            memory_budget=budget,
        )
        with DiskPPVStore(index_path) as ppv_store:
            engine = DiskFastPPV(budget_store, ppv_store)
            per_pass = []
            for _ in range(2):
                faults = 0
                for query in queries:
                    result = engine.query(int(query), stop=StopAfterIterations(2))
                    faults += result.cluster_faults
                per_pass.append(faults / len(queries))
        print(
            f"memory budget {budget} cluster(s): "
            f"{per_pass[0]:.1f} faults/query cold, "
            f"{per_pass[1]:.1f} warm"
        )


if __name__ == "__main__":
    main()
