"""CoalescingScheduler unit behaviour: executor-failure propagation
(no silently dropped batches) and per-window kick semantics."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serving.scheduler import CoalescingScheduler


class TestExecutorFailure:
    def test_on_error_receives_the_failed_batch(self):
        failed: list[tuple[list, BaseException]] = []

        def execute(jobs):
            raise RuntimeError("executor exploded")

        scheduler = CoalescingScheduler(
            execute,
            max_delay=0.0,
            on_error=lambda jobs, error: failed.append((jobs, error)),
        )
        try:
            scheduler.submit_many(["a", "b"])
            with pytest.raises(RuntimeError, match="executor exploded"):
                scheduler.flush(timeout=5)
        finally:
            scheduler.close()
        assert len(failed) == 1
        jobs, error = failed[0]
        assert jobs == ["a", "b"]
        assert isinstance(error, RuntimeError)

    def test_flush_reraises_without_on_error(self):
        def execute(jobs):
            raise ValueError("no net")

        scheduler = CoalescingScheduler(execute, max_delay=0.0)
        try:
            scheduler.submit("job")
            with pytest.raises(ValueError, match="no net"):
                scheduler.flush(timeout=5)
            # The error is reported exactly once; the scheduler survives.
            scheduler.flush(timeout=5)
        finally:
            scheduler.close()

    def test_scheduler_keeps_draining_after_a_failure(self):
        served: list = []

        def execute(jobs):
            if "poison" in jobs:
                raise RuntimeError("poisoned batch")
            served.extend(jobs)

        scheduler = CoalescingScheduler(execute, max_delay=0.0)
        try:
            scheduler.submit("poison")
            with pytest.raises(RuntimeError):
                scheduler.flush(timeout=5)
            scheduler.submit("healthy")
            scheduler.flush(timeout=5)
        finally:
            scheduler.close()
        assert served == ["healthy"]

    def test_on_error_exception_does_not_mask_the_cause(self):
        def execute(jobs):
            raise RuntimeError("root cause")

        def bad_on_error(jobs, error):
            raise ZeroDivisionError("handler broke too")

        scheduler = CoalescingScheduler(
            execute, max_delay=0.0, on_error=bad_on_error
        )
        try:
            scheduler.submit("job")
            with pytest.raises(RuntimeError, match="root cause"):
                scheduler.flush(timeout=5)
        finally:
            scheduler.close()


class TestKickWindow:
    def test_kicked_burst_drains_back_to_back(self):
        """One kick covers the whole burst queued before it: a burst
        longer than ``max_batch`` must not sit through a fresh
        ``max_delay`` window for its tail batch (the query_many shape:
        submit burst, kick once, wait on the handles)."""
        served = threading.Event()
        count = [0]

        def execute(jobs):
            count[0] += len(jobs)
            if count[0] == 6:
                served.set()

        scheduler = CoalescingScheduler(execute, max_batch=4, max_delay=2.0)
        try:
            started = time.monotonic()
            scheduler.submit_many([1, 2, 3, 4, 5, 6])
            scheduler.kick()
            assert served.wait(timeout=5)
            elapsed = time.monotonic() - started
        finally:
            scheduler.close()
        # Both windows ([1-4] and [5, 6]) drain immediately — well under
        # the 2s coalescing delay a stranded tail window would pay.
        assert elapsed < 1.0, f"kicked burst took {elapsed:.2f}s"

    def test_kick_does_not_leak_onto_later_traffic(self):
        """A kick expires once the jobs it covered are served; traffic
        submitted after it must coalesce normally again (pre-fix, the
        stale flag was cleared only when the queue fully drained, so a
        kick during a busy burst disabled coalescing for everything
        arriving meanwhile)."""
        batches: list[list] = []
        release_a = threading.Event()

        def execute(jobs):
            batches.append(list(jobs))
            if jobs[0] == "a":
                release_a.wait(timeout=5)

        def wait_for_batches(n):
            deadline = time.monotonic() + 5
            while len(batches) < n and time.monotonic() < deadline:
                time.sleep(0.005)
            assert len(batches) >= n

        scheduler = CoalescingScheduler(execute, max_batch=2, max_delay=30.0)
        try:
            scheduler.submit("a")
            scheduler.kick()
            wait_for_batches(1)  # the drain is now blocked inside "a"
            # Queued while "a" executes: a kicked pair plus one straggler
            # submitted *after* the kick — the queue is never empty
            # between the pops, which is exactly where the pre-fix flag
            # stayed stale.
            scheduler.submit_many(["b", "x"])
            scheduler.kick()
            scheduler.submit("c")
            release_a.set()
            wait_for_batches(2)  # [b, x] goes out back to back
            time.sleep(0.2)
            # c was submitted after the kick: it must be held open in a
            # coalescing window, not drained immediately.
            assert batches == [["a"], ["b", "x"]]
            scheduler.kick()
            scheduler.flush(timeout=5)
        finally:
            scheduler.close()
        assert batches == [["a"], ["b", "x"], ["c"]]

    def test_flush_is_not_stalled_by_reopened_windows(self):
        # A flush over more jobs than max_batch must not let the drain
        # re-enter a full max_delay coalescing wait between batches: the
        # in-loop kick has to wake the drain, not just set the flag.
        batches: list[list] = []

        scheduler = CoalescingScheduler(
            lambda jobs: batches.append(list(jobs)),
            max_batch=2,
            max_delay=2.0,
        )
        try:
            scheduler.submit_many([1, 2, 3])
            scheduler.flush(timeout=1.0)  # pre-fix: TimeoutError
        finally:
            scheduler.close()
        assert sorted(sum(batches, [])) == [1, 2, 3]

    def test_kick_during_execute_closes_the_next_window(self):
        release = threading.Event()
        batches: list[list] = []

        def execute(jobs):
            batches.append(list(jobs))
            if len(batches) == 1:
                release.wait(timeout=5)

        scheduler = CoalescingScheduler(execute, max_batch=4, max_delay=30.0)
        try:
            scheduler.submit("first")
            scheduler.kick()  # close window one
            deadline = time.monotonic() + 5
            while not batches and time.monotonic() < deadline:
                time.sleep(0.005)
            scheduler.submit("second")
            scheduler.kick()  # arrives while execute runs
            release.set()
            scheduler.flush(timeout=5)
        finally:
            scheduler.close()
        assert batches == [["first"], ["second"]]
