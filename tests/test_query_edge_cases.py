"""Edge-case and failure-injection tests for the online engine."""

import numpy as np
import pytest

from repro import (
    FastPPV,
    StopAfterIterations,
    StopAtL1Error,
    build_index,
    from_edges,
)
from repro.core.exact import exact_ppv_dense_solve
from repro.core.query import QueryState, StopAfterTime, any_of
from tests.conftest import ALPHA


class TestDegenerateGraphs:
    def test_single_node_no_edges(self):
        graph = from_edges([], num_nodes=1)
        index = build_index(graph, [])
        engine = FastPPV(graph, index)
        result = engine.query(0)
        # Only the trivial tour exists; everything else dies at a
        # dangling node.
        assert result.scores[0] == pytest.approx(ALPHA)
        assert result.iterations == 0

    def test_single_node_self_loop(self):
        graph = from_edges([(0, 0)], num_nodes=1)
        index = build_index(graph, [])
        engine = FastPPV(graph, index)
        result = engine.query(0)
        assert result.scores[0] == pytest.approx(1.0, abs=1e-6)

    def test_self_loop_hub(self):
        # The hub is its own border through the self-loop.
        graph = from_edges([(0, 0)], num_nodes=1)
        index = build_index(graph, [0], epsilon=1e-14, clip=0.0)
        engine = FastPPV(graph, index, delta=0.0, max_iterations=400)
        result = engine.query(0, stop=StopAfterIterations(300))
        assert result.scores[0] == pytest.approx(1.0, abs=1e-6)

    def test_two_node_swap(self):
        graph = from_edges([(0, 1), (1, 0)])
        index = build_index(graph, [1], epsilon=1e-14, clip=0.0)
        engine = FastPPV(graph, index, delta=0.0)
        for query in (0, 1):
            result = engine.query(query, stop=StopAfterIterations(100))
            expected = exact_ppv_dense_solve(graph, query, alpha=ALPHA)
            np.testing.assert_allclose(result.scores, expected, atol=1e-9)

    def test_disconnected_query(self):
        # Query in a component with no hubs: pure prime push, no splices.
        graph = from_edges([(0, 1), (1, 0), (2, 3), (3, 2)], num_nodes=4)
        index = build_index(graph, [0], epsilon=1e-14, clip=0.0)
        engine = FastPPV(graph, index, delta=0.0)
        result = engine.query(2, stop=StopAfterIterations(10))
        expected = exact_ppv_dense_solve(graph, 2, alpha=ALPHA)
        np.testing.assert_allclose(result.scores, expected, atol=1e-9)
        assert result.hubs_expanded == 0

    def test_all_nodes_are_hubs(self, cyclic_graph):
        hubs = list(range(cyclic_graph.num_nodes))
        index = build_index(cyclic_graph, hubs, epsilon=1e-14, clip=0.0)
        engine = FastPPV(cyclic_graph, index, delta=0.0, max_iterations=400)
        result = engine.query(0, stop=StopAfterIterations(300))
        expected = exact_ppv_dense_solve(cyclic_graph, 0, alpha=ALPHA)
        np.testing.assert_allclose(result.scores, expected, atol=1e-7)


class TestClipInteraction:
    def test_clipped_index_still_monotone(self, small_social):
        from repro.core.hubs import select_hubs

        hubs = select_hubs(small_social, 30)
        index = build_index(small_social, hubs, clip=1e-3)
        engine = FastPPV(small_social, index, delta=0.0)
        previous = np.zeros(small_social.num_nodes)
        for eta in range(4):
            scores = engine.query(8, stop=StopAfterIterations(eta)).scores
            assert np.all(scores >= previous - 1e-12)
            previous = scores

    def test_clipped_error_still_valid_bound(self, small_social):
        # With clipping the Eq. 6 value still upper-bounds nothing being
        # over-counted: estimate stays below exact.
        from repro.core.exact import exact_ppv
        from repro.core.hubs import select_hubs

        hubs = select_hubs(small_social, 30)
        index = build_index(small_social, hubs, clip=1e-3)
        engine = FastPPV(small_social, index, delta=0.0)
        result = engine.query(8, stop=StopAfterIterations(3))
        exact = exact_ppv(small_social, 8)
        assert np.all(result.scores <= exact + 1e-9)


class TestStoppingEdgeCases:
    def test_zero_error_target_runs_to_frontier_exhaustion(
        self, small_social, small_social_index
    ):
        engine = FastPPV(small_social, small_social_index, max_iterations=10)
        result = engine.query(4, stop=StopAtL1Error(0.0))
        assert result.iterations <= 10

    def test_compound_condition_all_satisfied(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        stop = any_of(
            StopAfterIterations(0), StopAtL1Error(1.0), StopAfterTime(0.0)
        )
        assert engine.query(4, stop=stop).iterations == 0

    def test_state_fields_available_to_conditions(
        self, small_social, small_social_index
    ):
        observed: list[QueryState] = []

        class Recorder:
            def should_stop(self, state):
                observed.append(state)
                return state.iteration >= 1

        engine = FastPPV(small_social, small_social_index)
        engine.query(4, stop=Recorder())
        assert observed
        for state in observed:
            assert state.scores is not None
            assert state.frontier_size >= 0
            assert state.elapsed_seconds >= 0.0


class TestWorkUnits:
    def test_hub_query_iteration0_free(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        hub = int(small_social_index.hubs[0])
        result = engine.query(hub, stop=StopAfterIterations(0))
        assert result.work_units == 0  # loaded from the index, no push

    def test_non_hub_query_pays_push(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        non_hub = next(
            q for q in range(small_social.num_nodes)
            if q not in small_social_index
        )
        result = engine.query(non_hub, stop=StopAfterIterations(0))
        assert result.work_units > 0

    def test_work_grows_with_iterations(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index, delta=0.0)
        work = [
            engine.query(9, stop=StopAfterIterations(eta)).work_units
            for eta in (0, 2, 4)
        ]
        assert work[0] <= work[1] <= work[2]


class TestOnlineEpsilon:
    def test_coarser_epsilon_less_work(self, small_social, small_social_index):
        non_hub = next(
            q for q in range(small_social.num_nodes)
            if q not in small_social_index
        )
        fine = FastPPV(
            small_social, small_social_index, online_epsilon=1e-10
        ).query(non_hub, stop=StopAfterIterations(0))
        coarse = FastPPV(
            small_social, small_social_index, online_epsilon=1e-4
        ).query(non_hub, stop=StopAfterIterations(0))
        assert coarse.work_units < fine.work_units
        assert coarse.scores.sum() <= fine.scores.sum() + 1e-12

    def test_defaults_to_index_epsilon(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        assert engine.online_epsilon == small_social_index.epsilon
