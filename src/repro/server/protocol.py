"""Version 1 of the FastPPV wire protocol (JSONL over TCP).

One request per line, one JSON object per request; responses are JSONL
too, correlated by the client-chosen ``id`` (any JSON value).  The same
request objects drive the CLI's stdio loop (``repro serve --stdio``) and
the TCP server (``repro serve --tcp``), so a file of ``query`` requests
replays on either transport; the control and streaming verbs need the
bidirectional TCP transport and are refused with a structured error
over stdio.

Requests
--------
``{"v": 1, "id": 7, "verb": "query", "node": 42, "eta": 2}``

* ``v`` — protocol version; optional, assumed :data:`PROTOCOL_VERSION`.
  A different version is refused with an ``unsupported_version`` error.
* ``verb`` — optional, default ``"query"``.  Known verbs:

  - ``query`` — serve one :class:`~repro.serving.QuerySpec`: ``node``
    (or ``nodes`` + optional ``weights``), an optional ``family``
    naming the query family, plus the family's own fields.  Without
    ``family`` the request means what it always has: ``top_k`` +
    ``budget`` selects certified top-k, anything else is plain PPV.
    Per-family fields:

    ========================  ==========================================
    family                    request fields
    ========================  ==========================================
    ``ppv`` (default)         ``eta`` / ``target_error`` / ``time_limit``
    ``top_k``                 ``top_k`` (required), ``budget``
    ``hitting``               ``target`` (required), ``beta``,
                              ``max_levels``, ``epsilon``, ``delta``
    ``reachability``          ``max_length``, ``alpha``
    registered extensions     the family's ``PARAM_NAMES`` fields
    ========================  ==========================================

    ``top`` bounds the ranked scores returned (score-ranked families).
    An unknown family, or one the serving backend cannot answer, is
    refused with the structured ``unsupported_family`` error.
  - ``stream`` — like ``query`` (single node, streamable families —
    ``ppv``/``top_k`` — only) but the response is a sequence of
    per-iteration frames followed by a ``done`` record.
  - ``stats`` — service + server counters, process identity
    (``uptime_seconds``/``version``/``pid``) and — on an
    observability-enabled server — the full metrics-registry snapshot
    (``metrics``, aggregated across shards by a router) and the
    slow-query log (``slow_queries``).
  - ``trace`` — recent trace spans from the span ring (see the
    ``trace`` request field below).  Optional fields: ``trace_id``
    filters to one trace, ``limit`` caps the span count.  A shard
    router fans the verb out and returns its own spans plus every
    shard's.  Payload: ``{"schema": TRACE_SCHEMA_VERSION, "spans":
    [...], "count": n}``.
  - ``ping`` — liveness/round-trip probe.
  - ``swap_index`` — hot-swap the served index from ``path``: in-flight
    queries drain, held admissions resume on the new index, nothing
    accepted is dropped.  On a shard router the swap rolls across every
    shard before admissions resume.
  - ``shutdown`` — graceful server shutdown: stop accepting, drain
    in-flight requests, close connections.
  - ``fetch_hubs`` — shard-internal: return the raw prime-PPV entries
    of ``hubs`` owned by this shard (:mod:`repro.sharding`).
  - ``fetch_cluster`` — shard-internal: return one graph cluster's
    adjacency arrays.
  - ``shard_info`` — shard-internal: the shard's partition coordinates
    (shard id, owned hubs/clusters, index parameters).

* ``trace`` — optional distributed-tracing context on ``query`` /
  ``stream`` (and the shard-internal fetch verbs):
  ``{"id": "<trace id>", "span": "<parent span id>", "schema": 1}``
  (schema = :data:`TRACE_SCHEMA_VERSION`; ``span`` optional).  An
  observability-enabled server continues the trace — child spans for
  admission, coalescing, kernels and shard fetches all carry the same
  trace id — and the finished spans come back via the ``trace`` verb.
  Servers without observability ignore the field; tracing never
  changes what is served.

Responses
---------
``{"v": 1, "id": 7, "ok": true, "result": {...}}`` on success;
``{"v": 1, "id": 7, "ok": false, "error": {"code": "...", "message":
"..."}}`` on failure.  Streaming interleaves
``{"v": 1, "id": 7, "frame": {...}}`` records and terminates with
``{"v": 1, "id": 7, "ok": true, "done": true, "frames": n}``.
Responses to different ids may interleave in completion order; frames
of one stream are ordered.

Error codes (:data:`ERROR_CODES`): ``malformed`` (not JSON / not an
object), ``oversized`` (line longer than the server's limit),
``unsupported_version``, ``unknown_verb``, ``invalid`` (bad or missing
fields, out-of-range nodes, unsupported operation),
``unsupported_family`` (a ``family`` this server does not know, or one
its backend lacks the capability to answer — shard routers refuse
graph-resident families this way), ``unavailable`` (server shutting
down), ``shard_unavailable`` (a shard router lost a shard process
mid-query and could not reconnect), ``internal``.
"""

from __future__ import annotations

import json

from repro.obs.trace import SpanContext
from repro.serving.families import available_families, resolve_family
from repro.serving.spec import QuerySnapshot, QuerySpec

PROTOCOL_VERSION = 1

TRACE_SCHEMA_VERSION = 1
"""Version of the span schema carried by the ``trace`` request field
and returned by the ``trace`` verb (span records are the dicts
:meth:`repro.obs.trace.Span.to_dict` builds)."""

DEFAULT_MAX_LINE_BYTES = 1 << 20
"""Default per-line payload bound (1 MiB) before ``oversized``."""

E_MALFORMED = "malformed"
E_OVERSIZED = "oversized"
E_UNSUPPORTED_VERSION = "unsupported_version"
E_UNKNOWN_VERB = "unknown_verb"
E_INVALID = "invalid"
E_UNSUPPORTED_FAMILY = "unsupported_family"
E_UNAVAILABLE = "unavailable"
E_SHARD_UNAVAILABLE = "shard_unavailable"
E_INTERNAL = "internal"

ERROR_CODES = (
    E_MALFORMED,
    E_OVERSIZED,
    E_UNSUPPORTED_VERSION,
    E_UNKNOWN_VERB,
    E_INVALID,
    E_UNSUPPORTED_FAMILY,
    E_UNAVAILABLE,
    E_SHARD_UNAVAILABLE,
    E_INTERNAL,
)

VERBS = (
    "query",
    "stream",
    "stats",
    "trace",
    "ping",
    "swap_index",
    "shutdown",
    "fetch_hubs",
    "fetch_cluster",
    "shard_info",
)


class ShardUnavailableError(RuntimeError):
    """A shard process died (or dropped its connection) mid-operation.

    Raised by the :mod:`repro.sharding` remote stores after a failed
    reconnect attempt; the TCP front-end maps it to the structured
    :data:`E_SHARD_UNAVAILABLE` error so clients get a prompt, typed
    failure instead of a hang.  Defined here — the bottom of the server
    stack — so both :mod:`repro.server.server` and :mod:`repro.sharding`
    can import it without a cycle.
    """

    def __init__(self, shard: int, message: str) -> None:
        super().__init__(f"shard {shard}: {message}")
        self.shard = shard


class ProtocolError(ValueError):
    """A structured request failure, carried as ``(code, message)``.

    Subclasses ``ValueError`` so transports that predate the error codes
    (the stdio loop) can keep reporting plain messages.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def encode(obj: dict) -> bytes:
    """One wire line: compact JSON plus the record separator."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def parse_request(line: bytes | str) -> dict:
    """Decode one request line into its object.

    Raises
    ------
    ProtocolError
        ``malformed`` when the line is not a JSON object.  Version and
        verb validation are separate (:func:`check_version`,
        :func:`request_verb`) so transports can extract the request
        ``id`` first and echo it in the error reply.
    """
    try:
        request = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(E_MALFORMED, f"not valid JSON: {error}") from None
    if not isinstance(request, dict):
        raise ProtocolError(E_MALFORMED, "request must be a JSON object")
    return request


def check_version(request: dict) -> None:
    """Refuse versions other than :data:`PROTOCOL_VERSION`.

    Raises
    ------
    ProtocolError
        ``unsupported_version``.
    """
    version = request.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            E_UNSUPPORTED_VERSION,
            f"this server speaks protocol version {PROTOCOL_VERSION}, "
            f"not {version!r}",
        )


def request_verb(request: dict) -> str:
    """The request's verb (default ``"query"``), validated.

    Raises
    ------
    ProtocolError
        ``unknown_verb`` for anything outside :data:`VERBS`.
    """
    verb = request.get("verb", "query")
    if verb not in VERBS:
        raise ProtocolError(
            E_UNKNOWN_VERB,
            f"unknown verb {verb!r}; this server speaks {list(VERBS)}",
        )
    return verb


def family_from_request(request: dict):
    """Resolve the request's query family from its ``family`` field.

    Family-less requests keep their original meaning: ``top_k`` present
    selects ``top_k``, anything else is plain ``ppv``.

    Raises
    ------
    ProtocolError
        ``unsupported_family`` for a family this process has not
        registered.
    """
    name = request.get("family")
    if name is None:
        name = "top_k" if request.get("top_k") is not None else "ppv"
    try:
        return resolve_family(str(name))
    except KeyError:
        raise ProtocolError(
            E_UNSUPPORTED_FAMILY,
            f"unknown query family {name!r}; this server knows "
            f"{list(available_families())}",
        ) from None


def spec_from_request(request: dict) -> QuerySpec:
    """Translate a ``query``/``stream`` request into a :class:`QuerySpec`.

    The request's family (see :func:`family_from_request`) owns the
    field decoding, so registered extension families are reachable over
    the wire with no protocol change.

    Raises
    ------
    ProtocolError
        ``unsupported_family`` for an unknown family; ``invalid`` when
        node/stop/parameter fields are missing or unusable.
    """
    family = family_from_request(request)
    try:
        spec = family.decode_request(request)
    except ProtocolError:
        raise
    except (TypeError, ValueError) as error:
        raise ProtocolError(E_INVALID, str(error)) from None
    trace = trace_from_request(request)
    if trace is not None:
        spec = spec.with_trace(trace)
    return spec


def trace_field(context) -> dict:
    """The wire form of a trace context (``SpanContext`` or ``Span``)
    for a request's ``trace`` field."""
    field = {"id": context.trace_id, "schema": TRACE_SCHEMA_VERSION}
    if context.span_id is not None:
        field["span"] = context.span_id
    return field


def trace_from_request(request: dict) -> "SpanContext | None":
    """The request's trace context, or ``None`` when untraced.

    Raises
    ------
    ProtocolError
        ``invalid`` when the ``trace`` field is present but malformed
        or speaks a different span schema.
    """
    raw = request.get("trace")
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ProtocolError(E_INVALID, '"trace" must be a JSON object')
    schema = raw.get("schema", TRACE_SCHEMA_VERSION)
    if schema != TRACE_SCHEMA_VERSION:
        raise ProtocolError(
            E_INVALID,
            f"this server speaks trace schema {TRACE_SCHEMA_VERSION}, "
            f"not {schema!r}",
        )
    trace_id = raw.get("id")
    if not isinstance(trace_id, str) or not trace_id:
        raise ProtocolError(E_INVALID, 'trace needs a string "id"')
    span_id = raw.get("span")
    if span_id is not None and not isinstance(span_id, str):
        raise ProtocolError(E_INVALID, 'trace "span" must be a string')
    return SpanContext(trace_id, span_id)


def top_from_request(request: dict, default: int) -> int:
    """The ranked-scores bound of a request (its ``top`` field).

    Raises
    ------
    ProtocolError
        ``invalid`` when the field is not usable as an integer.
    """
    value = request.get("top", default)
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ProtocolError(
            E_INVALID, f'"top" must be an integer, not {value!r}'
        ) from None


def render_result(spec: QuerySpec, result, top: int) -> dict:
    """The response payload for any family's result shape.

    Dispatches to the spec's family codec; ``ppv``/``top_k`` payloads
    are unchanged from the pre-family protocol (no ``family`` key), new
    families tag their payloads with one.
    """
    return resolve_family(spec.family).encode_result(spec, result, top)


def render_snapshot(snapshot: QuerySnapshot, top: int) -> dict:
    """One streamed frame's payload."""
    frame = {
        "iteration": int(snapshot.iteration),
        "l1_error": float(snapshot.l1_error),
        "frontier_size": int(snapshot.frontier_size),
        "top": [
            [int(node), float(snapshot.scores[node])]
            for node in snapshot.top_k(top)
        ],
    }
    if snapshot.certified is not None:
        frame["certified"] = bool(snapshot.certified)
    return frame


def ok_response(request_id, result=None, **extra) -> dict:
    """A success record (``result`` omitted when ``None``)."""
    response: dict = {"v": PROTOCOL_VERSION, "id": request_id, "ok": True}
    if result is not None:
        response["result"] = result
    response.update(extra)
    return response


def frame_response(request_id, frame: dict) -> dict:
    """One mid-stream frame record."""
    return {"v": PROTOCOL_VERSION, "id": request_id, "frame": frame}


def error_response(request_id, code: str, message: str) -> dict:
    """A failure record carrying a structured error."""
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
