"""Stateful lifecycle properties over the serving/server/pool stack.

Four hypothesis ``RuleBasedStateMachine`` suites interleave
submit/stream/flush/swap_index/close/kill — with deterministic faults
from :mod:`repro.faults` thrown in — and assert the invariants the
stack promises:

* **no query silently dropped** — every handle/request resolves with a
  result or a structured error, never a hang;
* **served results stay correct** — vectors that do arrive are
  bitwise-equal to a fault-free oracle run (disk backend; the memory
  batch engine's documented ~1e-14 reassociation round-off applies
  under differing batch composition);
* **close() is idempotent** under concurrent streams;
* **swap-under-load never serves a mixed-index batch** — every result
  matches the old index's oracle or the new one's, nothing in between.

Run with ``--hypothesis-profile=ci`` for the 200-example derandomized
sweep (the dedicated CI job); the default ``dev`` profile keeps tier-1
fast.
"""

from __future__ import annotations

import queue
import signal
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import settings as hyp_settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import (
    FastPPV,
    StopAfterIterations,
    build_index,
    from_edges,
    select_hubs,
)
from repro.faults import FaultPlan, InjectedFault
from repro.server import (
    ClientTimeout,
    PPVClient,
    PPVServer,
    ProtocolViolation,
    ServerError,
    ServerPool,
)
from repro.serving import CoalescingScheduler, PPVService, QuerySpec
from repro.sharding import ShardRouter, load_shard_map, partition_index
from repro.storage import (
    DiskFastPPV,
    DiskGraphStore,
    DiskPPVStore,
    cluster_graph,
    save_index,
)

# --------------------------------------------------------------------- #
# Shared tiny workload (Fig. 1's 8-node running example: cheap enough to
# rebuild oracles per state, rich enough to have hubs, borders, clusters).

A, B, C, D, E, F, G, H = range(8)
FIG1_EDGES = [
    (A, B), (A, C), (A, D), (A, F), (A, H),
    (B, C), (B, D), (B, E),
    (D, C), (D, E),
    (F, D), (F, G),
    (G, D),
    (H, C),
]

GRAPH = from_edges(FIG1_EDGES, num_nodes=8)
INDEX_A = build_index(GRAPH, select_hubs(GRAPH, num_hubs=3))
INDEX_B = build_index(GRAPH, select_hubs(GRAPH, num_hubs=5))

_DISK_ROOT = Path(tempfile.mkdtemp(prefix="lifecycle_disk_"))
INDEX_A_PATH = _DISK_ROOT / "index_a.fppv"
INDEX_B_PATH = _DISK_ROOT / "index_b.fppv"
save_index(INDEX_A, INDEX_A_PATH)
save_index(INDEX_B, INDEX_B_PATH)
_STORE_DIR = _DISK_ROOT / "clusters"
# 4 clusters so a 2-shard split gives BOTH shards hubs and non-sink
# nodes (2 clusters on this graph leave shard 1 a single sink node).
_ASSIGNMENT = cluster_graph(GRAPH, 4, seed=1)
DiskGraphStore(GRAPH, _ASSIGNMENT, _STORE_DIR)

# Two 2-shard partitions (one per index) over the SAME assignment as
# the unsharded store, so the router machine's results are comparable
# bitwise against the plain disk oracles.
PART_A_ROOT = _DISK_ROOT / "part_a"
PART_B_ROOT = _DISK_ROOT / "part_b"
partition_index(GRAPH, INDEX_A, 2, PART_A_ROOT, assignment=_ASSIGNMENT)
partition_index(GRAPH, INDEX_B, 2, PART_B_ROOT, assignment=_ASSIGNMENT)
# A node whose cluster shard 1 owns AND that has out-edges: querying it
# with cold router caches *must* fetch shard 1's adjacency.
_SHARD1_CLUSTERS = load_shard_map(PART_A_ROOT)["shards"][1]["clusters"]
_SHARD1_NODE = int(
    next(
        node
        for node in np.nonzero(
            np.isin(_ASSIGNMENT.labels, _SHARD1_CLUSTERS)
        )[0]
        if any(src == node for src, _ in FIG1_EDGES)
    )
)

ETAS = (1, 2)
MEMORY_ATOL = 1e-12  # documented reassociation round-off headroom


def _memory_oracles():
    """Fault-free scalar results per (index, node, eta)."""
    oracles = {}
    for key, index in (("A", INDEX_A), ("B", INDEX_B)):
        engine = FastPPV(GRAPH, index)
        for node in range(GRAPH.num_nodes):
            for eta in ETAS:
                result = engine.query(node, stop=StopAfterIterations(eta))
                oracles[(key, node, eta)] = result.scores.copy()
    return oracles


def _disk_oracles(index_path):
    """Fault-free scalar disk results per (node, eta) — the bitwise bar."""
    oracles = {}
    with DiskPPVStore(index_path) as store:
        engine = DiskFastPPV(DiskGraphStore.open(_STORE_DIR), store)
        for node in range(GRAPH.num_nodes):
            for eta in ETAS:
                result = engine.query(node, stop=StopAfterIterations(eta))
                oracles[(node, eta)] = result.result.scores.copy()
    return oracles


MEMORY_ORACLES = _memory_oracles()
DISK_ORACLES = _disk_oracles(INDEX_A_PATH)
DISK_ORACLES_B = _disk_oracles(INDEX_B_PATH)

nodes_st = st.integers(min_value=0, max_value=GRAPH.num_nodes - 1)
etas_st = st.sampled_from(ETAS)


# --------------------------------------------------------------------- #
# 1. Scheduler machine: conservation + order under faults


class SchedulerMachine(RuleBasedStateMachine):
    """Jobs are conserved: every submitted job lands in exactly one
    executed or failed batch, in admission order, whatever interleaving
    of bursts, kicks, flushes and injected executor faults happens."""

    def __init__(self) -> None:
        super().__init__()
        self.plan = FaultPlan()
        self.completed: list = []  # job ids in completion order
        self.submitted: list = []
        self.next_job = 0
        self.scheduler = CoalescingScheduler(
            self._execute,
            max_batch=4,
            max_delay=0.0005,
            on_error=self._on_error,
            fault_plan=self.plan,
        )
        self.closed = False

    def _execute(self, jobs) -> None:
        self.completed.extend(jobs)

    def _on_error(self, jobs, error) -> None:
        self.completed.extend(jobs)

    @precondition(lambda self: not self.closed)
    @rule(count=st.integers(min_value=1, max_value=5))
    def submit_burst(self, count: int) -> None:
        jobs = list(range(self.next_job, self.next_job + count))
        self.next_job += count
        self.submitted.extend(jobs)
        self.scheduler.submit_many(jobs)

    @precondition(lambda self: not self.closed)
    @rule()
    def submit_one(self) -> None:
        job = self.next_job
        self.next_job += 1
        self.submitted.append(job)
        self.scheduler.submit(job)

    @precondition(lambda self: not self.closed)
    @rule()
    def inject_executor_fault(self) -> None:
        # Arm one failure for an upcoming drain; the batch must still be
        # resolved (through on_error), not dropped.
        self.plan.on("scheduler.execute", times=1)

    @precondition(lambda self: not self.closed)
    @rule()
    def kick(self) -> None:
        self.scheduler.kick()

    @precondition(lambda self: not self.closed)
    @rule()
    def flush(self) -> None:
        try:
            self.scheduler.flush(timeout=10)
        except InjectedFault:
            pass  # armed failure surfacing exactly once, as promised
        assert self.scheduler.queue_depth == 0
        assert self.scheduler.in_flight == 0
        # Everything admitted so far has been completed, in order.
        assert self.completed == self.submitted

    @rule()
    def close(self) -> None:
        self.scheduler.close()
        self.scheduler.close()  # idempotent
        self.closed = True

    @precondition(lambda self: self.closed)
    @rule()
    def submit_after_close_rejected(self) -> None:
        with pytest.raises(RuntimeError):
            self.scheduler.submit(object())

    @invariant()
    def counters_sane(self) -> None:
        assert self.scheduler.queue_depth >= 0
        assert self.scheduler.in_flight >= 0
        assert self.scheduler.jobs_submitted == len(self.submitted)

    def teardown(self) -> None:
        if not self.closed:
            self.scheduler.close()
        # close() drains: nothing admitted may be lost.
        assert self.completed == self.submitted


TestSchedulerLifecycle = SchedulerMachine.TestCase


# --------------------------------------------------------------------- #
# 2. Service machine (memory + disk): no silent drops, oracle equality,
#    swap never mixes indexes, close idempotent under live streams


class _ServiceMachine(RuleBasedStateMachine):
    backend = "memory"  # overridden by the disk subclass

    def __init__(self) -> None:
        super().__init__()
        self.plan = FaultPlan()
        self.service = self._open_service()
        # (handle, node, eta) triples not yet collected.
        self.pending: list = []
        self.streams: list = []
        self.index_key = "A"
        self.swapped = False
        self.closed = False

    # -- backend plumbing ------------------------------------------------

    def _open_service(self) -> PPVService:
        return PPVService.open(
            INDEX_A, graph=GRAPH, fault_plan=self.plan, cache_size=8
        )

    def _oracle(self, node: int, eta: int, index_key: str) -> np.ndarray:
        return MEMORY_ORACLES[(index_key, node, eta)]

    def _matches(self, scores: np.ndarray, oracle: np.ndarray) -> bool:
        return bool(np.allclose(scores, oracle, rtol=0.0, atol=MEMORY_ATOL))

    def _scores(self, result) -> np.ndarray:
        return result.scores

    # -- rules -----------------------------------------------------------

    @precondition(lambda self: not self.closed)
    @rule(node=nodes_st, eta=etas_st)
    def submit(self, node: int, eta: int) -> None:
        spec = QuerySpec(node, stop=StopAfterIterations(eta))
        self.pending.append((self.service.submit(spec), node, eta))

    @precondition(lambda self: not self.closed)
    @rule(data=st.data())
    def submit_burst(self, data) -> None:
        picks = data.draw(
            st.lists(st.tuples(nodes_st, etas_st), min_size=1, max_size=4)
        )
        specs = [
            QuerySpec(node, stop=StopAfterIterations(eta))
            for node, eta in picks
        ]
        handles = [self.service.submit(spec) for spec in specs]
        self.pending.extend(
            (handle, node, eta)
            for handle, (node, eta) in zip(handles, picks)
        )

    @precondition(lambda self: not self.closed)
    @rule()
    def inject_engine_fault(self) -> None:
        self.plan.on(self._engine_fault_site(), times=1)

    def _engine_fault_site(self) -> str:
        return "scheduler.execute"

    @precondition(lambda self: not self.closed)
    @rule(node=nodes_st)
    def stream_partially(self, node: int) -> None:
        """Open a stream, consume a frame or two, abandon it."""
        iterator = self.service.stream(
            QuerySpec(node, stop=StopAfterIterations(2))
        )
        try:
            next(iterator)
        except (StopIteration, InjectedFault):
            pass
        finally:
            iterator.close()

    @precondition(lambda self: not self.closed)
    @rule()
    def open_stream_for_close(self) -> None:
        """Park a stream un-consumed, so close() must cancel it."""
        if len(self.streams) < 2:
            self.streams.append(
                self.service.stream(QuerySpec(0, stop=StopAfterIterations(2)))
            )

    @precondition(lambda self: not self.closed)
    @rule()
    def flush(self) -> None:
        try:
            self.service.flush(timeout=10)
        except InjectedFault:
            pass
        self.collect_all()

    @rule()
    def collect_some(self) -> None:
        if not self.pending:
            return
        handle, node, eta = self.pending.pop(0)
        self._check_handle(handle, node, eta)

    def collect_all(self) -> None:
        while self.pending:
            handle, node, eta = self.pending.pop(0)
            self._check_handle(handle, node, eta)

    def _check_handle(self, handle, node: int, eta: int) -> None:
        """The heart of the suite: resolves (never hangs), and any
        result that arrives matches a fault-free oracle — from exactly
        one index generation."""
        try:
            result = handle.result(timeout=15)
        except TimeoutError:
            raise AssertionError(
                f"query ({node}, eta={eta}) silently dropped: handle "
                "never resolved"
            ) from None
        except InjectedFault:
            return  # structured failure: allowed, not a drop
        except RuntimeError:
            return  # e.g. submit raced close(); still structured
        scores = self._scores(result)
        current = self._oracle(node, eta, self.index_key)
        if self._matches(scores, current):
            return
        if self.swapped:
            # In-flight across a swap: the *previous* generation is the
            # only other legal answer — anything else is a mixed batch.
            for other in ("A", "B"):
                if other != self.index_key and self._matches(
                    scores, self._oracle(node, eta, other)
                ):
                    return
        raise AssertionError(
            f"query ({node}, eta={eta}) does not match any single-index "
            f"oracle (current {self.index_key!r}, swapped={self.swapped})"
        )

    @precondition(lambda self: not self.closed)
    @rule()
    def swap_index(self) -> None:
        if not self._supports_swap():
            return
        target_key = "B" if self.index_key == "A" else "A"
        target = INDEX_B if target_key == "B" else INDEX_A
        try:
            self.service.update_index(target)
        except InjectedFault:
            return  # flush surfaced an armed fault; index unchanged
        self.index_key = target_key
        self.swapped = True

    def _supports_swap(self) -> bool:
        return True

    @precondition(lambda self: not self.closed)
    @rule()
    def close(self) -> None:
        self.service.close()
        self.service.close()  # idempotent, with streams still open
        self.closed = True
        # Closing drained the queue: every pending handle must resolve.
        self.collect_all()
        # Parked streams were cancelled but still terminated cleanly
        # (each receives its terminal sentinel — never a hang).
        for iterator in self.streams:
            try:
                for _ in iterator:
                    pass
            except InjectedFault:
                pass
        self.streams.clear()

    def teardown(self) -> None:
        if not self.closed:
            self.close()
        else:
            self.service.close()  # idempotent again, after everything
        self.collect_all()


class MemoryServiceMachine(_ServiceMachine):
    backend = "memory"


class DiskServiceMachine(_ServiceMachine):
    backend = "disk"

    def _open_service(self) -> PPVService:
        ppv_store = DiskPPVStore(INDEX_A_PATH, fault_plan=self.plan)
        graph_store = DiskGraphStore.open(_STORE_DIR, fault_plan=self.plan)
        return PPVService.open(
            ppv_store,
            graph_store=graph_store,
            fault_plan=self.plan,
            cache_size=8,
        )

    def _oracle(self, node: int, eta: int, index_key: str) -> np.ndarray:
        return DISK_ORACLES[(node, eta)]

    def _matches(self, scores: np.ndarray, oracle: np.ndarray) -> bool:
        # Disk serving is schedule-independent: bitwise, no tolerance.
        return bool(np.array_equal(scores, oracle))

    def _scores(self, result) -> np.ndarray:
        return result.result.scores  # DiskQueryResult wraps QueryResult

    def _engine_fault_site(self) -> str:
        return "ppv_store.read"

    def _supports_swap(self) -> bool:
        return False  # the disk backend cannot swap indexes in place


TestMemoryServiceLifecycle = MemoryServiceMachine.TestCase
TestDiskServiceLifecycle = DiskServiceMachine.TestCase


# --------------------------------------------------------------------- #
# 3. TCP server machine: every request answered or structured error,
#    server survives torn frames / malformed lines / swaps / disconnects


class ServerMachine(RuleBasedStateMachine):
    MAX_CLIENTS = 3

    def __init__(self) -> None:
        super().__init__()
        self.plan = FaultPlan()
        self.service = PPVService.open(INDEX_A, graph=GRAPH, cache_size=8)
        self.server = PPVServer(self.service, fault_plan=self.plan)
        self.context = self.server.background()
        self.address = self.context.__enter__()
        self.clients: list = []
        self.index_key = "A"
        self.swapped = False

    def _client(self) -> PPVClient:
        if not self.clients:
            self.clients.append(PPVClient(*self.address, timeout=15))
        return self.clients[0]

    def _drop_client(self, client: PPVClient) -> None:
        try:
            client.close()
        except OSError:
            pass
        if client in self.clients:
            self.clients.remove(client)

    def _check_payload(self, node: int, eta: int, payload: dict) -> None:
        assert payload["iterations"] <= eta
        tops = dict(
            (int(n), float(s)) for n, s in payload["top"]
        )
        for key in ("A", "B") if self.swapped else (self.index_key,):
            oracle = MEMORY_ORACLES[(key, node, eta)]
            if all(
                abs(oracle[n] - s) <= 1e-9 for n, s in tops.items()
            ):
                return
        raise AssertionError(
            f"served top scores for ({node}, eta={eta}) match no "
            "single-index oracle"
        )

    @rule(node=nodes_st, eta=etas_st)
    def query(self, node: int, eta: int) -> None:
        client = self._client()
        try:
            payload = client.query(node, eta=eta, top=8)
        except (ConnectionError, OSError, ProtocolViolation):
            self._drop_client(client)  # injected torn frame/disconnect
            return
        self._check_payload(node, eta, payload)

    @rule(data=st.data())
    def query_pipelined(self, data) -> None:
        picks = data.draw(
            st.lists(nodes_st, min_size=1, max_size=5)
        )
        client = self._client()
        try:
            payloads = client.query_many(picks, eta=2, window=3, top=8)
        except (ConnectionError, OSError, ProtocolViolation):
            self._drop_client(client)
            return
        assert len(payloads) == len(picks)
        for node, payload in zip(picks, payloads):
            self._check_payload(node, 2, payload)

    @rule(node=nodes_st)
    def stream_and_abandon(self, node: int) -> None:
        client = self._client()
        try:
            iterator = client.stream(node, eta=2, top=4)
            next(iterator, None)
            iterator.close()
            # The connection survives an abandoned stream.
            assert client.ping()
        except (ConnectionError, OSError, ProtocolViolation, ServerError):
            self._drop_client(client)

    @rule()
    def malformed_line(self) -> None:
        client = self._client()
        try:
            client.send_raw(b"this is not json\n")
            message = client.read_message()
        except (ConnectionError, OSError, ProtocolViolation):
            self._drop_client(client)
            return
        assert message["ok"] is False
        assert message["error"]["code"] == "malformed"

    @rule()
    def stats_shape(self) -> None:
        client = self._client()
        try:
            stats = client.stats()
        except (ConnectionError, OSError, ProtocolViolation):
            self._drop_client(client)
            return
        service = stats["service"]
        assert service["queue_depth"] >= 0
        assert service["in_flight"] >= 0
        latency = service["latency"]
        assert latency["count"] == sum(latency["counts"])
        assert stats["server"]["requests_total"] >= 1

    @rule()
    def inject_torn_frame(self) -> None:
        self.plan.on("server.send", torn=True, times=1)

    @rule()
    def abrupt_disconnect(self) -> None:
        client = PPVClient(*self.address, timeout=15)
        try:
            client.send_raw(b'{"v":1,"id":1,"node":0}\n')
        finally:
            client.close()  # vanish without reading the reply

    @rule()
    def swap_index(self) -> None:
        client = self._client()
        target_key = "B" if self.index_key == "A" else "A"
        path = INDEX_B_PATH if target_key == "B" else INDEX_A_PATH
        try:
            reply = client.swap_index(str(path))
        except (ConnectionError, OSError, ProtocolViolation):
            self._drop_client(client)
            return
        assert reply["swapped"] is True
        self.index_key = target_key
        self.swapped = True

    @invariant()
    def server_alive(self) -> None:
        # An armed torn-frame fault may hit this probe's reply (the
        # fault strikes the *next* server send, whoever triggers it);
        # liveness only requires that a retry gets through.
        last: BaseException | None = None
        for _ in range(3):
            try:
                with PPVClient(*self.address, timeout=15) as probe:
                    assert probe.ping()
                    return
            except (ConnectionError, OSError, ProtocolViolation) as error:
                last = error
        raise AssertionError(f"server unreachable: {last!r}")

    def teardown(self) -> None:
        for client in list(self.clients):
            self._drop_client(client)
        self.context.__exit__(None, None, None)
        self.service.close()


TestServerLifecycle = ServerMachine.TestCase


# --------------------------------------------------------------------- #
# 4. Pool machine: SIGKILL a worker under load, the port keeps serving


def _pool_factory():
    return PPVService.open(INDEX_A, graph=GRAPH, cache_size=8)


class PoolMachine(RuleBasedStateMachine):
    WORKERS = 2

    def __init__(self) -> None:
        super().__init__()
        self.pool = ServerPool(_pool_factory, workers=self.WORKERS)
        self.address = self.pool.start()
        self.killed: list[int] = []

    def _query_with_retry(self, node: int) -> dict:
        """One query, retrying transient connection failures.

        Retries are legitimate here: a killed worker's accept queue
        takes a moment to drain out of the kernel's load-balancing
        group, and a connection may be routed to it meanwhile.  What is
        *not* legitimate is running out of retries while a worker
        lives — that would be a dropped query.
        """
        host, port = self.address
        deadline = time.monotonic() + 30
        last: BaseException | None = None
        while time.monotonic() < deadline:
            try:
                with PPVClient(host, port, timeout=3) as client:
                    return client.query(node, eta=1, top=8)
            except (ConnectionError, OSError, ProtocolViolation,
                    ClientTimeout) as error:
                last = error
                time.sleep(0.02)
        raise AssertionError(
            f"query dropped: no worker answered within 30 s "
            f"(alive={self.pool.alive_workers()}, last={last!r})"
        )

    @rule(node=nodes_st)
    def query(self, node: int) -> None:
        payload = self._query_with_retry(node)
        oracle = MEMORY_ORACLES[("A", node, 1)]
        for n, s in payload["top"]:
            assert abs(oracle[int(n)] - float(s)) <= 1e-9

    @precondition(lambda self: len(self.pool.alive_workers()) > 1)
    @rule()
    def kill_one_worker(self) -> None:
        victim = self.pool.alive_workers()[-1]
        self.pool.kill_worker(victim)
        self.killed.append(victim)
        assert self.pool.exitcodes()[victim] == -signal.SIGKILL

    @rule()
    def stats_from_any_worker(self) -> None:
        host, port = self.address
        try:
            with PPVClient(host, port, timeout=3) as client:
                stats = client.stats()
        except (ConnectionError, OSError, ProtocolViolation,
                ClientTimeout):
            return  # transient post-kill routing; query rule retries
        assert stats["worker"]["index"] in range(self.WORKERS)
        assert stats["service"]["latency"]["count"] >= 0

    @invariant()
    def at_least_one_worker_lives(self) -> None:
        assert self.pool.alive_workers()

    def teardown(self) -> None:
        worst = self.pool.stop()
        codes = self.pool.exitcodes()
        for victim in self.killed:
            assert codes[victim] == -signal.SIGKILL
        if self.killed:
            assert worst == 128 + signal.SIGKILL
        else:
            assert worst == 0
        # Survivors went down via our graceful SIGTERM, nothing else.
        for index, code in enumerate(codes):
            if index not in self.killed:
                assert code in (0, -signal.SIGTERM)


TestPoolLifecycle = PoolMachine.TestCase


# --------------------------------------------------------------------- #
# 5. Shard router machine: interleaved queries / rolling swaps / a shard
#    SIGKILL — every request resolves typed, results match exactly one
#    partition generation bitwise, the front-end stays reachable


class RouterMachine(RuleBasedStateMachine):
    """A 2-shard :class:`ShardRouter` under random interleavings of
    queries, pipelined bursts, stats probes, rolling partition swaps
    and a mid-run shard SIGKILL.  Invariants: no request ever hangs
    (a dead shard answers ``shard_unavailable`` within the fleet
    timeout), any served vector bitwise-matches a single partition
    generation's disk oracle, and the router front-end keeps serving
    throughout."""

    def __init__(self) -> None:
        super().__init__()
        # Router-side residency off: every query pulls from the shards,
        # so a killed shard is observable immediately; the short fleet
        # timeout bounds how long that observation can take.
        self.router = ShardRouter(
            PART_A_ROOT,
            timeout=1.0,
            cache_size=0,
            cache_hubs=0,
            memory_budget=1,
        )
        self.address = self.router.start()
        self.clients: list = []
        self.index_key = "A"
        self.swapped = False
        self.shard_down = False

    def _client(self) -> PPVClient:
        if not self.clients:
            self.clients.append(PPVClient(*self.address, timeout=15))
        return self.clients[0]

    def _drop_client(self, client: PPVClient) -> None:
        try:
            client.close()
        except OSError:
            pass
        if client in self.clients:
            self.clients.remove(client)

    def _oracle(self, node: int, eta: int, key: str) -> np.ndarray:
        table = DISK_ORACLES if key == "A" else DISK_ORACLES_B
        return table[(node, eta)]

    def _check_payload(self, node: int, eta: int, payload: dict) -> None:
        # Disk serving is bitwise: JSON round-trips floats exactly, so
        # a served top score must EQUAL one generation's oracle score.
        for key in ("A", "B") if self.swapped else (self.index_key,):
            oracle = self._oracle(node, eta, key)
            if all(
                oracle[int(n)] == float(s) for n, s in payload["top"]
            ):
                return
        raise AssertionError(
            f"router result for ({node}, eta={eta}) matches no "
            f"single-partition oracle (current {self.index_key!r}, "
            f"swapped={self.swapped})"
        )

    @precondition(lambda self: not self.shard_down)
    @rule(node=nodes_st, eta=etas_st)
    def query(self, node: int, eta: int) -> None:
        client = self._client()
        try:
            payload = client.query(node, eta=eta, top=8)
        except (ConnectionError, OSError, ProtocolViolation):
            self._drop_client(client)
            return
        self._check_payload(node, eta, payload)

    @precondition(lambda self: not self.shard_down)
    @rule(data=st.data())
    def query_pipelined(self, data) -> None:
        picks = data.draw(st.lists(nodes_st, min_size=1, max_size=4))
        client = self._client()
        try:
            payloads = client.query_many(picks, eta=2, window=2, top=8)
        except (ConnectionError, OSError, ProtocolViolation):
            self._drop_client(client)
            return
        assert len(payloads) == len(picks)
        for node, payload in zip(picks, payloads):
            self._check_payload(node, 2, payload)

    @rule()
    def stats_shape(self) -> None:
        client = self._client()
        try:
            stats = client.stats()
        except (ConnectionError, OSError, ProtocolViolation,
                ClientTimeout):
            self._drop_client(client)
            return
        shards = stats["shards"]
        if "error" in shards:
            # Only a degraded fleet may report an aggregation error.
            assert self.shard_down
            return
        assert shards["num_shards"] == 2
        assert len(shards["per_shard"]) == 2
        assert shards["latency"]["count"] == sum(
            entry["latency"]["count"] for entry in shards["per_shard"]
        )
        assert shards["fetch_balance"] >= 1.0

    @precondition(lambda self: not self.shard_down)
    @rule()
    def swap_partition(self) -> None:
        client = self._client()
        target_key = "B" if self.index_key == "A" else "A"
        root = PART_B_ROOT if target_key == "B" else PART_A_ROOT
        try:
            reply = client.swap_index(str(root))
        except (ConnectionError, OSError, ProtocolViolation):
            self._drop_client(client)
            return
        assert reply["swapped"] is True
        self.index_key = target_key
        self.swapped = True

    def _evict_router_caches(self) -> None:
        """Drop the router's residency so the next query must refetch
        (both remote stores' ``close`` only clears their caches)."""
        engine = self.router.service.engine
        engine.graph_store.close()
        engine.ppv_store.close()

    @precondition(lambda self: not self.shard_down)
    @rule()
    def kill_shard(self) -> None:
        """SIGKILL shard 1's worker; traffic that needs it must fail
        typed and promptly, while the front-end stays up."""
        self.router.pools[1].kill_worker(0)
        self.shard_down = True
        self._evict_router_caches()
        client = self._client()
        started = time.monotonic()
        with pytest.raises(ServerError) as excinfo:
            client.query(_SHARD1_NODE, eta=1)
        assert excinfo.value.code == "shard_unavailable"
        assert time.monotonic() - started < 30  # typed error, not a hang
        assert client.ping()

    @precondition(lambda self: self.shard_down)
    @rule()
    def dead_shard_stays_structured(self) -> None:
        self._evict_router_caches()
        client = self._client()
        with pytest.raises(ServerError) as excinfo:
            client.query(_SHARD1_NODE, eta=1)
        assert excinfo.value.code == "shard_unavailable"
        assert client.ping()

    @invariant()
    def router_front_end_alive(self) -> None:
        last: BaseException | None = None
        for _ in range(3):
            try:
                with PPVClient(*self.address, timeout=15) as probe:
                    assert probe.ping()
                    return
            except (ConnectionError, OSError, ProtocolViolation) as error:
                last = error
        raise AssertionError(f"router unreachable: {last!r}")

    def teardown(self) -> None:
        for client in list(self.clients):
            self._drop_client(client)
        self.router.stop()


TestRouterLifecycle = RouterMachine.TestCase
# Each router example forks two shard server pools; 200 ci examples
# would dominate the whole lifecycle job.  Cap this machine (only) at
# 60 while inheriting everything else from the loaded profile — the
# deterministic sharding suites carry the exhaustive coverage.
TestRouterLifecycle.settings = hyp_settings(
    max_examples=min(60, hyp_settings.default.max_examples),
)
