"""Figs. 8-9: hub selection policy effect on online and offline phases."""

import pytest

from benchmarks.common import BENCH_QUERIES, BENCH_SCALE, emit
from repro.core.hubs import HubPolicy, select_hubs
from repro.experiments import dblp_graph, livejournal_graph, make_workload
from repro.experiments.fig08_09_policies import (
    fig8_table,
    fig9_table,
    run_policy_comparison,
)


@pytest.fixture(scope="module")
def policy_runs():
    runs = {}
    for name, graph, num_hubs in (
        ("DBLP", dblp_graph(scale=BENCH_SCALE).graph, int(150 * BENCH_SCALE) or 20),
        ("LiveJournal", livejournal_graph(scale=BENCH_SCALE), int(300 * BENCH_SCALE) or 40),
    ):
        workload = make_workload(graph, num_queries=BENCH_QUERIES, seed=0)
        runs[name] = (graph, run_policy_comparison(graph, workload, num_hubs))
    return runs


def test_fig08_09_hub_policies(benchmark, policy_runs):
    tables = []
    for name, (graph, results) in policy_runs.items():
        tables.append(fig8_table(results, name))
        tables.append(fig9_table(results, name))
        # Shape assertion: expected utility is at least as accurate as the
        # weaker single-criterion policies (within a small tolerance).
        by_policy = {r.policy: r.outcome for r in results}
        eu = by_policy[HubPolicy.EXPECTED_UTILITY]
        for other in (HubPolicy.PAGERANK, HubPolicy.OUT_DEGREE):
            assert (
                eu.accuracy.precision
                >= by_policy[other].accuracy.precision - 0.08
            )
        del graph
    emit("fig08_09_policies", *tables)

    # Timing record: hub selection by expected utility on LiveJournal.
    graph = policy_runs["LiveJournal"][0]
    benchmark(lambda: select_hubs(graph, 100))
