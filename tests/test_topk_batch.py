"""Batched certified top-k: property-based and seeded equivalence with the
scalar path, plus the vectorised-stop and wiring contracts."""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BatchFastPPV,
    FastPPV,
    StopAfterIterations,
    StopWhenCertified,
    TopKResult,
    build_index,
    query_top_k,
    select_hubs,
    social_graph,
)
from repro.core.query import QueryState
from repro.core.topk import _certificate_holds, _certificates_hold_many
from repro.graph.generators import erdos_renyi_graph

DELTAS = (0.0, 1e-4, 5e-3)


@functools.lru_cache(maxsize=None)
def _setup(kind: str, graph_seed: int, delta: float):
    """Graph + index + scalar/batch engine pair (cached across examples)."""
    if kind == "er":
        graph = erdos_renyi_graph(180, 3.0 / 180, seed=graph_seed)
    else:
        graph = social_graph(num_nodes=200, edges_per_node=3, seed=graph_seed)
    hubs = select_hubs(graph, num_hubs=20)
    # clip=0 keeps full prime PPVs so tight certificates stay reachable.
    index = build_index(graph, hubs, clip=0.0)
    scalar = FastPPV(graph, index, delta=delta)
    batch = BatchFastPPV(graph, index, delta=delta, cache_size=0)
    return graph, index, scalar, batch


def assert_topk_equivalent(scalar_result: TopKResult, batch_result: TopKResult):
    assert batch_result.certified == scalar_result.certified
    assert batch_result.iterations == scalar_result.iterations
    assert batch_result.l1_error == pytest.approx(
        scalar_result.l1_error, abs=1e-12
    )
    np.testing.assert_allclose(
        batch_result.scores, scalar_result.scores, atol=1e-12
    )
    if scalar_result.certified:
        # Certified means provably *the* exact top-k set, so both paths
        # must name the same nodes.
        assert set(batch_result.nodes.tolist()) == set(
            scalar_result.nodes.tolist()
        )


class TestPropertyBasedEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        kind=st.sampled_from(["er", "social"]),
        graph_seed=st.integers(0, 2),
        delta=st.sampled_from(DELTAS),
        k=st.integers(1, 12),
        data=st.data(),
    )
    def test_batch_matches_scalar(self, kind, graph_seed, delta, k, data):
        graph, index, scalar, batch = _setup(kind, graph_seed, delta)
        queries = data.draw(
            st.lists(
                st.integers(0, graph.num_nodes - 1), min_size=1, max_size=10
            )
        )
        if data.draw(st.booleans()):
            # Hub queries take the index-lookup branch of iteration 0.
            queries[0] = int(index.hubs[0])
        max_iterations = data.draw(st.integers(1, 24))
        batch_results = batch.query_top_k_many(
            queries, k=k, max_iterations=max_iterations
        )
        assert len(batch_results) == len(queries)
        for query, batch_result in zip(queries, batch_results):
            scalar_result = query_top_k(
                scalar, query, k=k, max_iterations=max_iterations
            )
            assert_topk_equivalent(scalar_result, batch_result)

    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(
        rows=st.integers(1, 6),
        n=st.integers(2, 30),
        k=st.integers(1, 32),
        seed=st.integers(0, 10**6),
    )
    def test_vectorised_certificate_matches_scalar_rule(self, rows, n, k, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random((rows, n))
        # Inject exact ties sometimes: the rule compares values, so ties
        # must not depend on which node carries them.
        if n >= 4:
            scores[:, 1] = scores[:, 0]
        phis = rng.random(rows) * 0.5
        vector = _certificates_hold_many(scores, k, phis)
        for row in range(rows):
            assert vector[row] == _certificate_holds(
                scores[row], k, float(phis[row])
            )


class TestSeededEquivalence:
    """Deterministic non-hypothesis fallback across batch compositions."""

    @pytest.mark.parametrize("graph_seed,k", [(0, 1), (1, 5), (2, 10)])
    def test_mixed_batches(self, graph_seed, k):
        graph, index, scalar, batch = _setup("social", graph_seed, 0.0)
        rng = np.random.default_rng(graph_seed + 77)
        queries = rng.choice(graph.num_nodes, size=12, replace=False).tolist()
        queries[0] = int(index.hubs[0])
        queries[1] = queries[2]  # duplicate ids share iteration-0 work
        batch_results = batch.query_top_k_many(queries, k=k, max_iterations=40)
        certified = 0
        for query, batch_result in zip(queries, batch_results):
            scalar_result = query_top_k(scalar, query, k=k, max_iterations=40)
            assert_topk_equivalent(scalar_result, batch_result)
            certified += batch_result.certified
        assert certified > 0  # the property must bite somewhere

    def test_retirement_spreads_iterations(self):
        # Queries must retire individually: a batch's iteration counts are
        # per-query, not the max of the batch.
        graph, index, scalar, batch = _setup("social", 0, 0.0)
        results = batch.query_top_k_many(
            list(range(0, 60, 5)), k=5, max_iterations=40
        )
        iteration_counts = {r.iterations for r in results if r.certified}
        assert len(iteration_counts) > 1


class TestStopWhenCertified:
    def test_should_stop_many_matches_should_stop(self):
        rng = np.random.default_rng(3)
        scores = rng.random((5, 40))
        errors = rng.random(5) * 0.2
        iterations = np.array([0, 1, 7, 32, 40], dtype=np.int64)
        stop = StopWhenCertified(k=4, max_iterations=32)
        mask = stop.should_stop_many(iterations, errors, scores)
        for row in range(5):
            state = QueryState(
                iteration=int(iterations[row]),
                l1_error=float(errors[row]),
                elapsed_seconds=0.0,
                frontier_size=1,
                scores=scores[row],
            )
            assert bool(mask[row]) == stop.should_stop(state)

    def test_budget_exhaustion_stops(self):
        stop = StopWhenCertified(k=3, max_iterations=2)
        mask = stop.should_stop_many(
            np.array([2]), np.array([1.0]), np.ones((1, 10))
        )
        assert bool(mask[0])

    def test_missing_scores_defers(self):
        stop = StopWhenCertified(k=3, max_iterations=10)
        state = QueryState(
            iteration=1, l1_error=0.5, elapsed_seconds=0.0, frontier_size=1
        )
        assert not stop.should_stop(state)


class TestWiring:
    def test_scalar_batch_engine_matches_batch(self):
        graph, index, scalar, batch = _setup("social", 1, 0.0)
        from_scalar = scalar.batch_engine.query_top_k_many(
            [3, 9], k=4, max_iterations=30
        )
        from_batch = batch.query_top_k_many([3, 9], k=4, max_iterations=30)
        for a, b in zip(from_scalar, from_batch):
            assert a.certified == b.certified
            assert a.iterations == b.iterations
            np.testing.assert_allclose(a.scores, b.scores, atol=1e-12)

    def test_batch_top_k_matches_scalar_reference(self):
        graph, index, scalar, batch = _setup("social", 1, 0.0)
        results = batch.query_top_k_many([3, 9, 9], k=4, max_iterations=32)
        assert all(isinstance(r, TopKResult) for r in results)
        assert [r.nodes.size for r in results] == [4, 4, 4]
        reference = query_top_k(scalar, 3, k=4, max_iterations=32)
        assert results[0].iterations == reference.iterations
        assert results[0].certified == reference.certified

    def test_top_k_and_stop_are_exclusive(self):
        from repro.serving import QuerySpec

        with pytest.raises(ValueError, match="not both"):
            QuerySpec(3, stop=StopAfterIterations(2), top_k=4)

    def test_invalid_k_rejected(self):
        graph, index, scalar, batch = _setup("social", 1, 0.0)
        with pytest.raises(ValueError):
            batch.query_top_k_many([3], k=0)

    def test_uncertified_when_budget_too_small(self):
        graph, index, scalar, batch = _setup("social", 2, 0.0)
        # A tiny budget on a non-hub query cannot certify unless the gap
        # is already huge at iteration 0; pick a query where it is not.
        for query in range(graph.num_nodes):
            scalar_result = query_top_k(scalar, query, k=5, max_iterations=0)
            if not scalar_result.certified:
                (batch_result,) = batch.query_top_k_many(
                    [query], k=5, max_iterations=0
                )
                assert not batch_result.certified
                assert batch_result.iterations == 0
                break
        else:
            pytest.skip("every query certifies at iteration 0")


class TestTopKCache:
    def test_repeat_batches_hit_cache(self):
        graph, index, scalar, _ = _setup("social", 0, 1e-4)
        batch = BatchFastPPV(graph, index, delta=1e-4, cache_size=8)
        first = batch.query_top_k_many([7], k=5, max_iterations=30)
        assert (7, StopWhenCertified(k=5, max_iterations=30)) in batch._cache
        second = batch.query_top_k_many([7], k=5, max_iterations=30)
        np.testing.assert_array_equal(first[0].scores, second[0].scores)
        assert first[0].iterations == second[0].iterations

    def test_different_k_cached_separately(self):
        graph, index, scalar, _ = _setup("social", 0, 1e-4)
        batch = BatchFastPPV(graph, index, delta=1e-4, cache_size=8)
        batch.query_top_k_many([7], k=3)
        batch.query_top_k_many([7], k=4)
        assert len(batch._cache) == 2
