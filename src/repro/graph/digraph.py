"""Immutable CSR directed graph.

The whole library funnels through this one structure.  Nodes are dense
integers ``0..n-1``; the out-adjacency is stored as two numpy arrays in
compressed-sparse-row form (``indptr`` of length ``n+1`` and ``indices`` of
length ``m``), which keeps the hot kernels (push, power iteration, random
walks) allocation-free and cache-friendly.

An optional node-label table maps external identifiers (author names, user
ids, ...) to the dense integer space, so example applications can speak in
domain terms.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np
from scipy import sparse


class DiGraph:
    """A directed graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; out-neighbours of node ``u``
        are ``indices[indptr[u]:indptr[u + 1]]``.
    indices:
        ``int32`` array of length ``m`` holding neighbour ids.
    labels:
        Optional sequence of ``n`` hashable node labels.  When given, the
        reverse mapping is built lazily on first :meth:`node_id` call.

    Notes
    -----
    Instances are immutable: the constructor copies nothing but marks the
    arrays read-only.  Use :class:`repro.graph.GraphBuilder` or
    :func:`repro.graph.from_edges` to construct graphs.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_weights",
        "_edge_probabilities",
        "_out_degree",
        "_labels",
        "_label_index",
        "_reverse",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: Sequence[Hashable] | None = None,
        weights: np.ndarray | None = None,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int32)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if indptr.size == 0:
            raise ValueError("indptr must have length n + 1 >= 1")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("edge endpoints out of range")
        if labels is not None and len(labels) != n:
            raise ValueError(f"expected {n} labels, got {len(labels)}")
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.shape != indices.shape:
                raise ValueError("need exactly one weight per edge")
            if np.any(weights <= 0.0):
                raise ValueError("edge weights must be positive")
            weights.setflags(write=False)
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._edge_probabilities: np.ndarray | None = None
        out_degree = np.diff(indptr).astype(np.int64)
        out_degree.setflags(write=False)
        self._out_degree = out_degree
        self._labels = list(labels) if labels is not None else None
        self._label_index: dict[Hashable, int] | None = None
        self._reverse: DiGraph | None = None

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return self._indices.size

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (read-only)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array (read-only)."""
        return self._indices

    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries per-edge weights."""
        return self._weights is not None

    @property
    def weights(self) -> np.ndarray | None:
        """Per-edge weights aligned with :attr:`indices` (or ``None``)."""
        return self._weights

    @property
    def edge_probabilities(self) -> np.ndarray:
        """Random-walk step probabilities per edge (row-normalised).

        The single array every kernel (push, power iteration, sampling)
        consumes: entry ``e`` is the probability of the surfer at the
        edge's source choosing that edge, i.e. ``w_e / sum of the source's
        out-weights`` — or ``1 / out_degree`` when unweighted.  Built
        lazily and cached; read-only.
        """
        if self._edge_probabilities is None:
            if self._weights is None:
                with np.errstate(divide="ignore"):
                    inverse = np.where(
                        self._out_degree > 0,
                        1.0 / np.maximum(self._out_degree, 1),
                        0.0,
                    )
                probabilities = np.repeat(inverse, self._out_degree)
            else:
                row_ids = np.repeat(
                    np.arange(self.num_nodes, dtype=np.int64), self._out_degree
                )
                row_sums = np.zeros(self.num_nodes)
                np.add.at(row_sums, row_ids, self._weights)
                probabilities = self._weights / row_sums[row_ids]
            probabilities.setflags(write=False)
            self._edge_probabilities = probabilities
        return self._edge_probabilities

    def edge_probability(self, src: int, dst: int) -> float:
        """Step probability of the edge ``src -> dst``.

        Raises
        ------
        ValueError
            If the edge does not exist.
        """
        start, end = self._indptr[src], self._indptr[src + 1]
        row = self._indices[start:end]
        hits = np.nonzero(row == dst)[0]
        if hits.size == 0:
            raise ValueError(f"no edge {src} -> {dst}")
        return float(self.edge_probabilities[start + hits[0]])

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node as an ``int64`` array (read-only)."""
        return self._out_degree

    def out_degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        return int(self._out_degree[node])

    def out_neighbors(self, node: int) -> np.ndarray:
        """Out-neighbours of ``node`` as a read-only array view."""
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node (computed on demand)."""
        return np.bincount(self._indices, minlength=self.num_nodes).astype(np.int64)

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the directed edge ``src -> dst`` exists."""
        row = self.out_neighbors(src)
        return bool(np.any(row == dst))

    def nodes(self) -> range:
        """Iterable of all node ids."""
        return range(self.num_nodes)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over directed edges as ``(src, dst)`` pairs."""
        for u in range(self.num_nodes):
            for v in self.out_neighbors(u):
                yield u, int(v)

    # ------------------------------------------------------------------ #
    # Labels
    # ------------------------------------------------------------------ #

    @property
    def labels(self) -> list[Hashable] | None:
        """Node labels if the graph was built with them, else ``None``."""
        return self._labels

    def label(self, node: int) -> Hashable:
        """Label of ``node`` (the node id itself if unlabelled)."""
        if self._labels is None:
            return node
        return self._labels[node]

    def node_id(self, label: Hashable) -> int:
        """Dense node id for ``label``.

        Raises
        ------
        KeyError
            If the graph is unlabelled or the label is unknown.
        """
        if self._labels is None:
            raise KeyError("graph has no labels")
        if self._label_index is None:
            self._label_index = {lab: i for i, lab in enumerate(self._labels)}
        return self._label_index[label]

    # ------------------------------------------------------------------ #
    # Derived structures
    # ------------------------------------------------------------------ #

    def reverse(self) -> "DiGraph":
        """The graph with every edge reversed (cached after first call)."""
        if self._reverse is None:
            n = self.num_nodes
            srcs = np.repeat(
                np.arange(n, dtype=np.int32), np.diff(self._indptr).astype(np.int64)
            )
            order = np.argsort(self._indices, kind="stable")
            rev_indices = srcs[order]
            rev_indptr = np.zeros(n + 1, dtype=np.int64)
            counts = np.bincount(self._indices, minlength=n)
            np.cumsum(counts, out=rev_indptr[1:])
            rev_weights = (
                self._weights[order] if self._weights is not None else None
            )
            rev = DiGraph(
                rev_indptr, rev_indices, labels=self._labels, weights=rev_weights
            )
            rev._reverse = self
            self._reverse = rev
        return self._reverse

    def transition_matrix(self) -> sparse.csr_matrix:
        """Row-stochastic random-walk matrix ``P``.

        ``P[u, v]`` is the per-step probability of walking ``u -> v``
        (``1/out(u)`` unweighted, weight-proportional otherwise).
        Dangling nodes (out-degree zero) produce an all-zero row; callers
        decide how to treat the lost mass (the PPV solvers in
        :mod:`repro.core.exact` let the walk end there, matching the
        tour-reachability semantics of Eq. 1-2).
        """
        n = self.num_nodes
        return sparse.csr_matrix(
            (
                self.edge_probabilities.copy(),
                self._indices.astype(np.int64),
                self._indptr,
            ),
            shape=(n, n),
        )

    def subgraph(self, nodes: Iterable[int]) -> tuple["DiGraph", np.ndarray]:
        """Node-induced subgraph.

        Returns
        -------
        (subgraph, node_map):
            ``node_map[i]`` is the original id of subgraph node ``i``.
        """
        keep = np.asarray(sorted(set(int(v) for v in nodes)), dtype=np.int64)
        remap = -np.ones(self.num_nodes, dtype=np.int64)
        remap[keep] = np.arange(keep.size)
        indptr = [0]
        out: list[np.ndarray] = []
        out_weights: list[np.ndarray] = []
        for u in keep:
            start, end = self._indptr[int(u)], self._indptr[int(u) + 1]
            nbrs = remap[self._indices[start:end]]
            mask = nbrs >= 0
            out.append(nbrs[mask].astype(np.int32))
            if self._weights is not None:
                out_weights.append(self._weights[start:end][mask])
            indptr.append(indptr[-1] + int(mask.sum()))
        indices = (
            np.concatenate(out) if out else np.empty(0, dtype=np.int32)
        )
        weights = None
        if self._weights is not None:
            weights = (
                np.concatenate(out_weights) if out_weights else np.empty(0)
            )
        labels = None
        if self._labels is not None:
            labels = [self._labels[int(u)] for u in keep]
        sub = DiGraph(
            np.asarray(indptr, dtype=np.int64), indices, labels=labels,
            weights=weights,
        )
        return sub, keep

    # ------------------------------------------------------------------ #
    # Dunder
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.num_nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        if (self._weights is None) != (other._weights is None):
            return False
        weights_equal = (
            self._weights is None
            or np.array_equal(self._weights, other._weights)
        )
        return (
            self.num_nodes == other.num_nodes
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
            and weights_equal
        )

    def __hash__(self) -> int:  # graphs are immutable, so hashing is safe
        return hash((self.num_nodes, self.num_edges, self._indices.tobytes()[:256]))

    def __repr__(self) -> str:
        return f"DiGraph(n={self.num_nodes}, m={self.num_edges})"
