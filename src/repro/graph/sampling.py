"""Growing-graph series for the scalability study (Fig. 13-15).

Two mechanisms mirror the paper:

* DBLP grows by *time*: :func:`snapshot_series` cuts a
  :class:`~repro.graph.generators.BibliographicGraph` at a set of years,
  keeping only papers published up to each year (authors/venues appear once
  they have at least one retained paper).
* LiveJournal grows by *sampling*: :func:`edge_sample` keeps a uniform
  fraction of directed edges.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.build import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.generators import BibliographicGraph


def snapshot(bib: BibliographicGraph, year: int) -> DiGraph:
    """Subgraph of papers published up to and including ``year``.

    The node id space is re-densified; isolated authors/venues (no retained
    paper) are dropped, matching how a real bibliography snapshot would be
    extracted.
    """
    keep_paper = bib.paper_years <= year
    builder = GraphBuilder()  # labelled: original ids become labels
    graph = bib.graph
    for paper in np.nonzero(keep_paper)[0]:
        paper_node = bib.paper_node(int(paper))
        for nbr in graph.out_neighbors(paper_node):
            builder.add_undirected_edge(paper_node, int(nbr))
    return builder.build()


def snapshot_series(
    bib: BibliographicGraph, years: Sequence[int]
) -> list[tuple[int, DiGraph]]:
    """Snapshots at each year, e.g. ``[1994, 1998, 2002, 2006, 2010]``."""
    return [(year, snapshot(bib, year)) for year in years]


def edge_sample(graph: DiGraph, fraction: float, seed: int = 0) -> DiGraph:
    """Keep a uniform ``fraction`` of directed edges.

    Nodes that lose all incident edges are dropped and ids re-densified,
    mirroring the paper's LiveJournal samples S1..S5 whose node counts grow
    with the edge counts.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    keep = rng.random(graph.num_edges) < fraction
    builder = GraphBuilder()  # labelled: original ids become labels
    edge_index = 0
    for src in range(graph.num_nodes):
        for dst in graph.out_neighbors(src):
            if keep[edge_index]:
                builder.add_edge(src, int(dst))
            edge_index += 1
    return builder.build()


def sample_series(
    graph: DiGraph, fractions: Sequence[float], seed: int = 0
) -> list[tuple[float, DiGraph]]:
    """Edge-sampled graphs at each fraction, smallest first."""
    return [
        (fraction, edge_sample(graph, fraction, seed=seed))
        for fraction in sorted(fractions)
    ]
