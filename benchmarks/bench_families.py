"""Query-family registry: per-family served throughput, coalescing
effectiveness, and equivalence spot-checks.

Three claims for :mod:`repro.serving.families`:

* **Routing is free for PPV.** Serving ``ppv`` through the family
  registry costs no measurable throughput against the direct batch
  engine (the registry adds key-prefixing and dispatch, not numerics).
* **Coalescing helps the new families too.** Same-target ``hitting``
  queries in one coalesced group share a prime-push cache, so the
  coalesced path beats one-at-a-time submission.
* **Equivalence holds at bench scale.** Spot-checked served results
  equal the direct :mod:`repro.core` calls (bitwise for ``hitting``,
  array-equal for ``reachability``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.common import BENCH_QUERIES, BENCH_SCALE, emit, emit_json
from repro import StopAfterIterations, build_index, select_hubs, social_graph
from repro.core.batch import BatchFastPPV
from repro.core.hitting import scheduled_hitting
from repro.core.reachability import reachability_query
from repro.experiments.report import Table
from repro.serving import PPVService, QuerySpec

DELTA = 1e-4


@pytest.fixture(scope="module")
def setup():
    num_nodes = max(800, int(3000 * BENCH_SCALE))
    num_hubs = max(80, int(300 * BENCH_SCALE))
    graph = social_graph(num_nodes=num_nodes, seed=13)
    hubs = select_hubs(graph, num_hubs=num_hubs)
    index = build_index(graph, hubs, epsilon=1e-6)
    rng = np.random.default_rng(7)
    queries = [
        int(q)
        for q in rng.choice(
            graph.num_nodes, size=max(8, BENCH_QUERIES), replace=False
        )
    ]
    return graph, index, queries


def _best_seconds(run, repetitions: int = 3) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def test_family_throughput_and_equivalence(setup):
    graph, index, queries = setup
    stop = StopAfterIterations(2)
    target = queries[0]

    ppv_specs = [QuerySpec(q, stop=stop) for q in queries]
    # Hitting is the heavyweight family (level-scheduled pushes per
    # query): a small same-target workload is enough to measure the
    # coalesced push-sharing without dominating the bench.
    hit_queries = queries[: max(4, len(queries) // 2)]
    hit_specs = [
        QuerySpec(
            q, family="hitting", params={"target": target, "max_levels": 8}
        )
        for q in hit_queries
    ]
    reach_specs = [
        QuerySpec(q, family="reachability", params={"max_length": 3})
        for q in queries
    ]

    batch = BatchFastPPV(graph, index, delta=DELTA, cache_size=0)
    with PPVService.open(
        index, graph=graph, delta=DELTA, cache_size=0
    ) as service:
        service.warm()
        direct_ppv_seconds = _best_seconds(
            lambda: batch.query_many(queries, stop=stop)
        )
        served_ppv_seconds = _best_seconds(
            lambda: service.query_many(ppv_specs)
        )
        hit_loop_seconds = _best_seconds(
            lambda: [service.query(spec) for spec in hit_specs],
            repetitions=2,
        )
        hit_coalesced_seconds = _best_seconds(
            lambda: service.query_many(hit_specs), repetitions=2
        )
        reach_coalesced_seconds = _best_seconds(
            lambda: service.query_many(reach_specs)
        )

        # Equivalence spot-checks ride the timed workloads' specs.
        served_hits = service.query_many(hit_specs[:4])
        for spec, served in zip(hit_specs[:4], served_hits):
            direct = scheduled_hitting(
                graph, spec.nodes[0], target, index.hub_mask, max_levels=8
            )
            assert served.value == direct.value
            assert served.history == direct.history
        served_reach = service.query_many(reach_specs[:4])
        for spec, served in zip(reach_specs[:4], served_reach):
            direct = reachability_query(graph, spec.nodes[0], 3)
            np.testing.assert_array_equal(served.scores, direct.scores)

        families = service.stats().families

    rate = lambda seconds, n=len(queries): n / seconds
    hit_rate = lambda seconds: rate(seconds, len(hit_specs))
    table = Table(
        title=(
            f"Query-family serving ({graph.num_nodes} nodes, "
            f"{index.num_hubs} hubs, {len(queries)} queries/family)"
        ),
        headers=["path", "q/s"],
    )
    table.add_row("ppv, direct batch engine", f"{rate(direct_ppv_seconds):.0f}")
    table.add_row("ppv, served via registry", f"{rate(served_ppv_seconds):.0f}")
    table.add_row("hitting, one at a time", f"{hit_rate(hit_loop_seconds):.1f}")
    table.add_row("hitting, coalesced",
                  f"{hit_rate(hit_coalesced_seconds):.1f}")
    table.add_row("reachability, coalesced",
                  f"{rate(reach_coalesced_seconds):.0f}")
    emit("families", table)
    emit_json(
        "families",
        {
            "families": {
                "num_nodes": graph.num_nodes,
                "num_hubs": int(index.num_hubs),
                "num_queries": len(queries),
                "ppv_direct_qps": rate(direct_ppv_seconds),
                "ppv_served_qps": rate(served_ppv_seconds),
                "hitting_loop_qps": hit_rate(hit_loop_seconds),
                "hitting_coalesced_qps": hit_rate(hit_coalesced_seconds),
                "reachability_coalesced_qps": rate(reach_coalesced_seconds),
                "hitting_coalescing_speedup": (
                    hit_loop_seconds / hit_coalesced_seconds
                ),
            }
        },
    )

    # Acceptance: per-family stats saw every submission, and coalesced
    # hitting is no slower than the one-at-a-time loop (it shares the
    # target's prime pushes across the group).
    assert families["ppv"]["submitted"] >= 3 * len(queries)
    assert families["hitting"]["submitted"] >= len(hit_specs)
    assert families["reachability"]["submitted"] >= len(queries)
    assert hit_coalesced_seconds <= hit_loop_seconds * 1.10, (
        f"coalesced hitting {hit_coalesced_seconds:.3f}s slower than "
        f"one-at-a-time {hit_loop_seconds:.3f}s"
    )
