"""Binary on-disk PPV index.

Layout (little-endian throughout)::

    header   magic 'FPPV' | version u32 | alpha f64 | epsilon f64 | clip f64
             | num_nodes u64 | num_hubs u64
    directory (num_hubs records, fixed width)
             hub_id u64 | offset u64 | num_entries u64 | num_borders u64
    payload  per hub at its offset:
             nodes i64[num_entries] | scores f64[num_entries]
             | border_hubs i64[num_borders] | border_masses f64[num_borders]

The fixed-width directory is read once and kept in memory (it is tiny:
32 bytes per hub); each :meth:`DiskPPVStore.get` then costs exactly one
seek + read — the "one random access to the disk" of Sect. 6.3.1.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from repro.core.index import IndexStats, PPVIndex
from repro.core.prime import PrimePPV

_MAGIC = b"FPPV"
_VERSION = 1
_HEADER = struct.Struct("<4sI3d2Q")
_DIR_ENTRY = struct.Struct("<4Q")


def save_index(index: PPVIndex, path: str | os.PathLike[str]) -> int:
    """Serialise a :class:`PPVIndex` to ``path``.

    Returns the number of bytes written.
    """
    hubs = sorted(index.entries)
    with open(path, "wb") as handle:
        handle.write(
            _HEADER.pack(
                _MAGIC,
                _VERSION,
                index.alpha,
                index.epsilon,
                index.clip,
                index.hub_mask.size,
                len(hubs),
            )
        )
        directory_pos = handle.tell()
        handle.write(b"\x00" * _DIR_ENTRY.size * len(hubs))
        records = []
        for hub in hubs:
            entry = index.entries[hub]
            offset = handle.tell()
            handle.write(entry.nodes.astype("<i8").tobytes())
            handle.write(entry.scores.astype("<f8").tobytes())
            handle.write(entry.border_hubs.astype("<i8").tobytes())
            handle.write(entry.border_masses.astype("<f8").tobytes())
            records.append(
                (hub, offset, entry.nodes.size, entry.border_hubs.size)
            )
        end = handle.tell()
        handle.seek(directory_pos)
        for record in records:
            handle.write(_DIR_ENTRY.pack(*record))
    return end


def _read_header(handle) -> tuple[float, float, float, int, int]:
    raw = handle.read(_HEADER.size)
    magic, version, alpha, epsilon, clip, num_nodes, num_hubs = _HEADER.unpack(raw)
    if magic != _MAGIC:
        raise ValueError("not a FastPPV index file")
    if version != _VERSION:
        raise ValueError(f"unsupported index version {version}")
    return alpha, epsilon, clip, num_nodes, num_hubs


class DiskPPVStore:
    """Lazy reader over a saved index: one disk access per hub fetch.

    Use as a context manager or call :meth:`close` explicitly.  The
    ``reads`` counter records how many hub payloads were fetched — the I/O
    accounting of the disk-based experiments.

    ``fault_plan`` (tests only) fires the ``ppv_store.read`` site before
    each payload fetch; without a plan the hook costs one ``is None``.
    """

    def __init__(
        self, path: str | os.PathLike[str], *, fault_plan=None
    ) -> None:
        self.fault_plan = fault_plan
        self._handle = open(path, "rb")
        self.alpha, self.epsilon, self.clip, self.num_nodes, num_hubs = _read_header(
            self._handle
        )
        self._directory: dict[int, tuple[int, int, int]] = {}
        for _ in range(num_hubs):
            hub, offset, entries, borders = _DIR_ENTRY.unpack(
                self._handle.read(_DIR_ENTRY.size)
            )
            self._directory[hub] = (offset, entries, borders)
        self.reads = 0
        self.bytes_read = 0
        hub_mask = np.zeros(self.num_nodes, dtype=bool)
        hub_mask[list(self._directory)] = True
        self.hub_mask = hub_mask
        self._hub_list: "list[bool] | None" = None

    def __enter__(self) -> "DiskPPVStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Release the file handle."""
        if not self._handle.closed:
            self._handle.close()

    def __contains__(self, hub: int) -> bool:
        return int(hub) in self._directory

    @property
    def hubs(self) -> np.ndarray:
        """Sorted hub ids available in the store."""
        return np.asarray(sorted(self._directory), dtype=np.int64)

    @property
    def hub_list(self) -> list[bool]:
        """``hub_mask`` as a plain list — O(1) lookups without numpy
        scalar overhead on the disk push's per-edge hot path (the twin
        of :attr:`DiskGraphStore.labels_list`)."""
        if self._hub_list is None:
            self._hub_list = self.hub_mask.tolist()
        return self._hub_list

    def get(self, hub: int) -> PrimePPV:
        """Fetch one hub's prime PPV from disk (one seek + read)."""
        if self.fault_plan is not None:
            self.fault_plan.fire("ppv_store.read", hub=int(hub))
        offset, entries, borders = self._directory[int(hub)]
        self._handle.seek(offset)
        payload = self._handle.read(16 * entries + 16 * borders)
        self.bytes_read += len(payload)
        nodes = np.frombuffer(payload, dtype="<i8", count=entries, offset=0)
        scores = np.frombuffer(payload, dtype="<f8", count=entries, offset=8 * entries)
        border_hubs = np.frombuffer(
            payload, dtype="<i8", count=borders, offset=16 * entries
        )
        border_masses = np.frombuffer(
            payload, dtype="<f8", count=borders, offset=16 * entries + 8 * borders
        )
        self.reads += 1
        return PrimePPV(
            source=int(hub),
            nodes=nodes.astype(np.int64),
            scores=scores.astype(np.float64),
            border_hubs=border_hubs.astype(np.int64),
            border_masses=border_masses.astype(np.float64),
        )

    def get_many(self, hubs) -> "dict[int, PrimePPV]":
        """Fetch several hubs' prime PPVs, one read per *unique* hub.

        Reads are issued in file-offset order, so a batch prefetch
        degrades into one forward sweep over the payload region instead
        of the random seek per hub per query that scalar serving pays.
        ``reads`` increases once per unique hub.
        """
        unique = sorted(
            {int(hub) for hub in hubs}, key=lambda hub: self._directory[hub][0]
        )
        return {hub: self.get(hub) for hub in unique}


def load_index(path: str | os.PathLike[str]) -> PPVIndex:
    """Eagerly load a saved index back into a :class:`PPVIndex`."""
    with DiskPPVStore(path) as store:
        index = PPVIndex(
            alpha=store.alpha,
            epsilon=store.epsilon,
            clip=store.clip,
            hub_mask=store.hub_mask.copy(),
        )
        stats = IndexStats(num_hubs=len(store.hubs))
        for hub in store.hubs:
            entry = store.get(int(hub))
            index.entries[int(hub)] = entry
            stats.stored_entries += entry.nodes.size
            stats.border_entries += entry.border_hubs.size
            stats.stored_bytes += entry.nbytes
        index.stats = stats
        return index
