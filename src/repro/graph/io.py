"""Edge-list serialisation.

The on-disk format is the venerable whitespace-separated edge list used by
SNAP and friends: one ``src dst`` pair per line, ``#``-prefixed comment
lines ignored.  This is the format the paper's public datasets ship in, so
the loaders here are what a user would point at the real DBLP/LiveJournal
dumps.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.graph.build import from_edges
from repro.graph.digraph import DiGraph


def read_edge_list(
    path: str | os.PathLike[str],
    undirected: bool = False,
    num_nodes: int | None = None,
) -> DiGraph:
    """Load a graph from a whitespace-separated edge-list file.

    Parameters
    ----------
    path:
        File with one ``src dst`` integer pair per line.
    undirected:
        Store each edge in both directions.
    num_nodes:
        Force the node-count (useful when high-numbered isolated nodes
        exist); inferred from the data when omitted.
    """

    def _edges() -> Iterable[tuple[int, int]]:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) < 2:
                    raise ValueError(f"{path}:{lineno}: expected 'src dst', got {line!r}")
                yield int(parts[0]), int(parts[1])

    return from_edges(_edges(), num_nodes=num_nodes, undirected=undirected)


def write_edge_list(graph: DiGraph, path: str | os.PathLike[str]) -> None:
    """Write ``graph`` as a whitespace-separated edge list with a size header."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for src, dst in graph.edges():
            handle.write(f"{src} {dst}\n")
