"""Fig. 16: disk-based online query processing.

Sweeps the number of clusters and reports, per query: cluster faults,
time, and the memory need (largest cluster as a fraction of the graph).
Expected shape (Sect. 6.4.2): faults grow with cluster count, query time
stays roughly stable, memory need shrinks.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.index import PPVIndex
from repro.core.query import StopAfterIterations
from repro.experiments.report import Table
from repro.graph.digraph import DiGraph
from repro.storage.clustering import cluster_graph
from repro.storage.disk_engine import DiskFastPPV, DiskGraphStore
from repro.storage.ppv_store import DiskPPVStore, save_index


@dataclass
class DiskSweepPoint:
    """Results at one cluster count."""

    num_clusters: int
    faults_per_query: float
    ms_per_query: float
    memory_need: float  # largest cluster / total graph size


def run_disk_sweep(
    graph: DiGraph,
    index: PPVIndex,
    cluster_counts: Sequence[int] = (10, 15, 25, 35, 50),
    queries: Sequence[int] | None = None,
    eta: int = 2,
    seed: int = 0,
    workdir: str | None = None,
) -> list[DiskSweepPoint]:
    """Sweep cluster counts over the same query set.

    ``workdir`` (a scratch directory) defaults to a fresh temp dir; the
    cluster files and the serialised index live there for the duration.
    """
    if queries is None:
        rng = np.random.default_rng(seed)
        queries = rng.choice(graph.num_nodes, size=30, replace=False).tolist()
    scratch = Path(workdir) if workdir is not None else Path(tempfile.mkdtemp())
    index_path = scratch / "index.fppv"
    save_index(index, index_path)

    points = []
    for num_clusters in cluster_counts:
        assignment = cluster_graph(graph, num_clusters, seed=seed)
        store_dir = scratch / f"clusters_{num_clusters}"
        graph_store = DiskGraphStore(graph, assignment, store_dir)
        with DiskPPVStore(index_path) as ppv_store:
            engine = DiskFastPPV(graph_store, ppv_store)
            faults = []
            seconds = []
            for query in queries:
                result = engine.query(int(query), stop=StopAfterIterations(eta))
                faults.append(result.cluster_faults)
                seconds.append(result.seconds)
        points.append(
            DiskSweepPoint(
                num_clusters=num_clusters,
                faults_per_query=float(np.mean(faults)),
                ms_per_query=float(np.mean(seconds)) * 1000.0,
                memory_need=assignment.largest_fraction(graph),
            )
        )
    return points


@dataclass
class BudgetSweepPoint:
    """Results at one memory budget (clusters resident simultaneously)."""

    memory_budget: int
    faults_per_query: float
    ms_per_query: float


def run_budget_sweep(
    graph: DiGraph,
    index: PPVIndex,
    num_clusters: int = 25,
    budgets: Sequence[int] = (1, 2, 4, 8),
    queries: Sequence[int] | None = None,
    eta: int = 2,
    seed: int = 0,
    workdir: str | None = None,
) -> list[BudgetSweepPoint]:
    """Ablation: LRU memory budget vs cluster faults (fixed clustering).

    The paper's deployment keeps exactly one cluster resident; this sweep
    quantifies what additional memory buys.
    """
    if queries is None:
        rng = np.random.default_rng(seed)
        queries = rng.choice(graph.num_nodes, size=20, replace=False).tolist()
    scratch = Path(workdir) if workdir is not None else Path(tempfile.mkdtemp())
    index_path = scratch / "index.fppv"
    save_index(index, index_path)
    assignment = cluster_graph(graph, num_clusters, seed=seed)

    points = []
    for budget in budgets:
        graph_store = DiskGraphStore(
            graph, assignment, scratch / f"clusters_b{budget}",
            memory_budget=budget,
        )
        with DiskPPVStore(index_path) as ppv_store:
            # No fault-budget truncation here: the ablation measures the
            # *demand* for swaps, which truncation would mask.
            engine = DiskFastPPV(graph_store, ppv_store, fault_budget=10**9)
            faults = []
            seconds = []
            for query in queries:
                result = engine.query(int(query), stop=StopAfterIterations(eta))
                faults.append(result.cluster_faults)
                seconds.append(result.seconds)
        points.append(
            BudgetSweepPoint(
                memory_budget=budget,
                faults_per_query=float(np.mean(faults)),
                ms_per_query=float(np.mean(seconds)) * 1000.0,
            )
        )
    return points


def budget_table(points: list[BudgetSweepPoint], dataset: str) -> Table:
    """The memory-budget ablation table."""
    table = Table(
        title=f"Ablation ({dataset}) — LRU memory budget vs cluster faults",
        headers=["Resident clusters", "# Faults per query", "Time per query (ms)"],
    )
    for point in points:
        table.add_row(
            point.memory_budget, point.faults_per_query, point.ms_per_query
        )
    return table


def fig16_table(points: list[DiskSweepPoint], dataset: str) -> Table:
    """Disk-based online processing (Fig. 16)."""
    table = Table(
        title=f"Fig. 16 ({dataset}) — disk-based online query processing",
        headers=[
            "# Clusters",
            "# Faults per query",
            "Time per query (ms)",
            "Memory need (%)",
        ],
    )
    for point in points:
        table.add_row(
            point.num_clusters,
            point.faults_per_query,
            point.ms_per_query,
            point.memory_need * 100.0,
        )
    return table
