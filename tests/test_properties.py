"""Property-based tests (hypothesis) for core invariants.

Random small graphs exercise the full engine pipeline; each property is
one of the paper's formal claims (Theorems 1-4, Eq. 6) or a structural
invariant of the substrate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FastPPV, StopAfterIterations, build_index, from_edges
from repro.core.errors import l1_error_bound
from repro.core.exact import exact_ppv_dense_solve
from repro.core.prime import prime_ppv
from repro.metrics import kendall_tau, precision_at_k, rag, top_k_nodes

ALPHA = 0.15

# ----------------------------------------------------------------------- #
# Strategies
# ----------------------------------------------------------------------- #

NODE_COUNT = st.integers(min_value=2, max_value=8)


@st.composite
def graphs(draw, dangling_free: bool = True):
    """A random small digraph; dangling-free variants add a Hamilton cycle."""
    n = draw(NODE_COUNT)
    edge_pool = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(edge_pool), min_size=0, max_size=2 * n)
    )
    if dangling_free:
        edges += [(u, (u + 1) % n) for u in range(n)]
    return from_edges(edges, num_nodes=n)


@st.composite
def graph_with_hubs(draw, dangling_free: bool = True):
    graph = draw(graphs(dangling_free=dangling_free))
    hubs = draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.num_nodes - 1),
            unique=True,
            max_size=graph.num_nodes,
        )
    )
    return graph, sorted(hubs)


@st.composite
def score_vectors(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(values)


# ----------------------------------------------------------------------- #
# Engine-level properties (the paper's theorems)
# ----------------------------------------------------------------------- #


class TestEngineProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph_with_hubs())
    def test_full_schedule_recovers_exact_ppv(self, gh):
        """Theorem 1's endpoint: covering all partitions gives the exact PPV."""
        graph, hubs = gh
        index = build_index(graph, hubs, alpha=ALPHA, epsilon=1e-14, clip=0.0)
        engine = FastPPV(graph, index, delta=0.0, max_iterations=300)
        for query in range(graph.num_nodes):
            result = engine.query(query, stop=StopAfterIterations(250))
            expected = exact_ppv_dense_solve(graph, query, alpha=ALPHA)
            np.testing.assert_allclose(result.scores, expected, atol=1e-7)

    @settings(max_examples=30, deadline=None)
    @given(graph_with_hubs(), st.integers(min_value=0, max_value=5))
    def test_monotone_underestimate(self, gh, eta):
        """Theorem 1: estimates grow entry-wise and never exceed exact."""
        graph, hubs = gh
        index = build_index(graph, hubs, alpha=ALPHA, epsilon=1e-12, clip=0.0)
        engine = FastPPV(graph, index, delta=0.0)
        query = 0
        previous = np.zeros(graph.num_nodes)
        exact = exact_ppv_dense_solve(graph, query, alpha=ALPHA)
        for level in range(eta + 1):
            scores = engine.query(query, stop=StopAfterIterations(level)).scores
            assert np.all(scores >= previous - 1e-12)
            assert np.all(scores <= exact + 1e-9)
            previous = scores

    @settings(max_examples=30, deadline=None)
    @given(graph_with_hubs(), st.integers(min_value=0, max_value=6))
    def test_theorem2_bound(self, gh, eta):
        """Theorem 2: query-time L1 error <= (1 - alpha)^(eta + 2)."""
        graph, hubs = gh
        index = build_index(graph, hubs, alpha=ALPHA, epsilon=1e-12, clip=0.0)
        engine = FastPPV(graph, index, delta=0.0)
        result = engine.query(0, stop=StopAfterIterations(eta))
        assert result.l1_error <= l1_error_bound(eta, ALPHA) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(graph_with_hubs())
    def test_eq6_error_identity(self, gh):
        """Eq. 6: query-time error equals 1 - ||estimate||_1 equals the
        true L1 error on dangling-free graphs (no clipping/pruning)."""
        graph, hubs = gh
        index = build_index(graph, hubs, alpha=ALPHA, epsilon=1e-14, clip=0.0)
        engine = FastPPV(graph, index, delta=0.0)
        result = engine.query(0, stop=StopAfterIterations(3))
        exact = exact_ppv_dense_solve(graph, 0, alpha=ALPHA)
        true_error = np.abs(exact - result.scores).sum()
        assert result.l1_error == pytest.approx(true_error, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(graph_with_hubs())
    def test_prime_ppv_is_partition_zero(self, gh):
        """The prime PPV never exceeds the exact PPV (it covers T^0 only),
        and border scores relate to arrival masses by the alpha factor."""
        graph, hubs = gh
        hub_mask = np.zeros(graph.num_nodes, dtype=bool)
        hub_mask[hubs] = True
        for source in range(graph.num_nodes):
            prime = prime_ppv(graph, source, hub_mask, alpha=ALPHA, epsilon=1e-14)
            exact = exact_ppv_dense_solve(graph, source, alpha=ALPHA)
            dense = prime.to_dense(graph.num_nodes)
            assert np.all(dense <= exact + 1e-9)
            for hub, mass in zip(prime.border_hubs, prime.border_masses):
                if int(hub) != source:
                    assert prime.score_of(int(hub)) == pytest.approx(
                        ALPHA * mass, abs=1e-12
                    )


# ----------------------------------------------------------------------- #
# Substrate properties
# ----------------------------------------------------------------------- #


class TestGraphProperties:
    @settings(max_examples=50, deadline=None)
    @given(graphs(dangling_free=False))
    def test_reverse_involution(self, graph):
        reversed_twice = graph.reverse().reverse()
        assert reversed_twice == graph

    @settings(max_examples=50, deadline=None)
    @given(graphs(dangling_free=False))
    def test_reverse_swaps_degrees(self, graph):
        np.testing.assert_array_equal(
            graph.reverse().out_degrees, graph.in_degrees()
        )

    @settings(max_examples=50, deadline=None)
    @given(graphs(dangling_free=False))
    def test_edge_iteration_matches_counts(self, graph):
        edges = list(graph.edges())
        assert len(edges) == graph.num_edges
        assert len(set(edges)) == len(edges)  # builder deduplicates

    @settings(max_examples=50, deadline=None)
    @given(graphs(dangling_free=False))
    def test_transition_matrix_row_sums(self, graph):
        sums = np.asarray(graph.transition_matrix().sum(axis=1)).ravel()
        has_out = graph.out_degrees > 0
        np.testing.assert_allclose(sums[has_out], 1.0, atol=1e-12)
        np.testing.assert_allclose(sums[~has_out], 0.0, atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(graphs(dangling_free=True))
    def test_exact_ppv_is_distribution(self, graph):
        scores = exact_ppv_dense_solve(graph, 0, alpha=ALPHA)
        assert scores.min() >= -1e-12
        assert scores.sum() == pytest.approx(1.0, abs=1e-9)


# ----------------------------------------------------------------------- #
# Metric properties
# ----------------------------------------------------------------------- #


class TestMetricProperties:
    @settings(max_examples=60, deadline=None)
    @given(score_vectors())
    def test_identity_scores_perfect(self, scores):
        assert kendall_tau(scores, scores.copy(), k=5) == pytest.approx(1.0)
        assert precision_at_k(scores, scores.copy(), k=5) == 1.0
        assert rag(scores, scores.copy(), k=5) == pytest.approx(1.0)

    @settings(max_examples=60, deadline=None)
    @given(score_vectors(), score_vectors())
    def test_metric_ranges(self, a, b):
        n = min(a.size, b.size)
        a, b = a[:n], b[:n]
        assert -1.0 <= kendall_tau(a, b, k=4) <= 1.0
        assert 0.0 <= precision_at_k(a, b, k=4) <= 1.0
        assert rag(a, b, k=4) >= 0.0

    @settings(max_examples=60, deadline=None)
    @given(score_vectors(), st.integers(min_value=1, max_value=6))
    def test_topk_sorted_by_score(self, scores, k):
        top = top_k_nodes(scores, k)
        values = scores[top]
        assert np.all(np.diff(values) <= 1e-15)

    @settings(max_examples=60, deadline=None)
    @given(score_vectors(), st.floats(min_value=0.1, max_value=10.0))
    def test_metrics_scale_invariant(self, scores, factor):
        noisy = scores * factor
        assert precision_at_k(scores, noisy, k=3) == 1.0
        assert rag(scores, noisy, k=3) == pytest.approx(1.0)


class TestBoundProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=60),
        st.floats(min_value=0.01, max_value=0.99),
    )
    def test_bound_monotone_in_k(self, k, alpha):
        assert l1_error_bound(k + 1, alpha) <= l1_error_bound(k, alpha)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=60))
    def test_bound_monotone_in_alpha(self, k):
        assert l1_error_bound(k, 0.3) <= l1_error_bound(k, 0.1)


# ----------------------------------------------------------------------- #
# Weighted-graph properties
# ----------------------------------------------------------------------- #


@st.composite
def weighted_graphs(draw):
    """A random small weighted digraph with a dangling-free backbone."""
    n = draw(NODE_COUNT)
    edge_pool = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(edge_pool), min_size=0, max_size=2 * n)
    )
    edges += [(u, (u + 1) % n) for u in range(n)]
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            min_size=len(edges),
            max_size=len(edges),
        )
    )
    from repro.graph.build import from_weighted_edges

    return from_weighted_edges(
        [(s, d, w) for (s, d), w in zip(edges, weights)], num_nodes=n
    )


class TestWeightedProperties:
    @settings(max_examples=40, deadline=None)
    @given(weighted_graphs())
    def test_edge_probabilities_rows_sum_to_one(self, graph):
        probabilities = graph.edge_probabilities
        for node in range(graph.num_nodes):
            start, end = graph.indptr[node], graph.indptr[node + 1]
            if end > start:
                assert probabilities[start:end].sum() == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(weighted_graphs())
    def test_weighted_exact_ppv_is_distribution(self, graph):
        scores = exact_ppv_dense_solve(graph, 0, alpha=ALPHA)
        assert scores.min() >= -1e-12
        assert scores.sum() == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(weighted_graphs())
    def test_weighted_full_schedule_recovers_exact(self, graph):
        hubs = [0] if graph.num_nodes > 1 else []
        index = build_index(graph, hubs, alpha=ALPHA, epsilon=1e-14, clip=0.0)
        engine = FastPPV(graph, index, delta=0.0, max_iterations=300)
        result = engine.query(
            graph.num_nodes - 1, stop=StopAfterIterations(250)
        )
        expected = exact_ppv_dense_solve(graph, graph.num_nodes - 1, alpha=ALPHA)
        np.testing.assert_allclose(result.scores, expected, atol=1e-7)

    @settings(max_examples=40, deadline=None)
    @given(weighted_graphs())
    def test_uniform_weights_match_unweighted(self, graph):
        # Replacing all weights by a constant must reproduce the
        # unweighted transition structure exactly.
        from repro.graph.digraph import DiGraph

        flat = DiGraph(graph.indptr, graph.indices)
        constant = DiGraph(
            graph.indptr,
            graph.indices,
            weights=np.full(graph.num_edges, 2.5),
        )
        np.testing.assert_allclose(
            constant.edge_probabilities, flat.edge_probabilities, atol=1e-15
        )


# ----------------------------------------------------------------------- #
# Top-k certificate properties
# ----------------------------------------------------------------------- #


class TestTopKProperties:
    @settings(max_examples=25, deadline=None)
    @given(graph_with_hubs(), st.integers(min_value=1, max_value=4))
    def test_certified_topk_is_exact(self, gh, k):
        from repro.core.topk import query_top_k
        from repro.metrics import top_k_nodes

        graph, hubs = gh
        index = build_index(graph, hubs, alpha=ALPHA, epsilon=1e-14, clip=0.0)
        engine = FastPPV(graph, index, delta=0.0, max_iterations=300)
        result = query_top_k(engine, 0, k=k, max_iterations=200)
        if result.certified:
            exact = exact_ppv_dense_solve(graph, 0, alpha=ALPHA)
            expected = set(top_k_nodes(exact, k).tolist())
            got = set(int(x) for x in result.nodes.tolist())
            # Ties at the boundary can make several sets "the" top-k; use
            # score comparison instead of id comparison.
            worst_got = min(exact[list(got)])
            best_missed = max(
                (exact[i] for i in range(graph.num_nodes) if i not in got),
                default=-1.0,
            )
            assert worst_got >= best_missed - 1e-9
            del expected
