"""Tests for hub-count auto-configuration."""

import pytest

from repro.core.autotune import (
    AutotuneResult,
    autotune_hub_count,
    default_candidates,
)


class TestDefaultCandidates:
    def test_geometric_ladder(self, small_social):
        ladder = default_candidates(small_social)
        assert ladder
        assert all(b == 2 * a for a, b in zip(ladder, ladder[1:]))
        assert max(ladder) <= small_social.num_nodes // 4

    def test_tiny_graph(self):
        from repro.graph.generators import cycle_graph

        ladder = default_candidates(cycle_graph(8))
        assert ladder == [1, 2]


class TestAutotune:
    @pytest.fixture(scope="class")
    def result(self, small_social) -> AutotuneResult:
        return autotune_hub_count(
            small_social, candidates=[10, 40, 100], num_probe_queries=8, seed=1
        )

    def test_probes_all_candidates(self, result):
        assert [p.num_hubs for p in result.probes] == [10, 40, 100]

    def test_best_minimises_work(self, result):
        best = min(result.probes, key=lambda p: p.mean_work)
        assert result.best_num_hubs == best.num_hubs

    def test_probe_fields_sane(self, result):
        for probe in result.probes:
            assert probe.mean_work > 0
            assert 0.0 <= probe.mean_l1_error <= 1.0
            assert probe.index_megabytes > 0

    def test_space_budget_respected(self, small_social, result):
        tightest = min(p.index_megabytes for p in result.probes)
        budgeted = autotune_hub_count(
            small_social,
            candidates=[10, 40, 100],
            num_probe_queries=8,
            seed=1,
            space_budget_mb=tightest,
        )
        chosen = next(
            p for p in budgeted.probes if p.num_hubs == budgeted.best_num_hubs
        )
        assert chosen.index_megabytes <= tightest + 1e-9

    def test_impossible_budget_falls_back_to_smallest(self, small_social):
        result = autotune_hub_count(
            small_social,
            candidates=[10, 40],
            num_probe_queries=5,
            space_budget_mb=0.0,
        )
        smallest = min(result.probes, key=lambda p: p.index_megabytes)
        assert result.best_num_hubs == smallest.num_hubs

    def test_empty_candidates_rejected(self, small_social):
        with pytest.raises(ValueError):
            autotune_hub_count(small_social, candidates=[])
