"""Certified top-k serving through the façade, in memory and from disk.

Two serving modes built on the same certificate (Eq. 6's missing-mass
bound), both behind one :class:`~repro.serving.PPVService` API: the
memory backend checks every in-flight query's top-k certificate
vectorised each round and retires queries the moment their top set is
provably exact; the disk backend serves the same workload with cluster
faults and index reads amortised across each coalesced batch — so two
*concurrent* clients share cluster residency instead of thrashing it.

Run with:  python examples/topk_batch_serving.py
"""

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro import (
    PPVService,
    QuerySpec,
    build_index,
    select_hubs,
    social_graph,
)
from repro.storage import DiskGraphStore, DiskPPVStore, cluster_graph, save_index


def main() -> None:
    graph = social_graph(num_nodes=1500, seed=12)
    hubs = select_hubs(graph, num_hubs=150)
    # clip=0 + delta=0: sound certificates (see repro.core.topk).
    index = build_index(graph, hubs, clip=0.0, epsilon=1e-6)

    rng = np.random.default_rng(3)
    queries = [int(q) for q in rng.choice(graph.num_nodes, 12, replace=False)]
    specs = [QuerySpec(q, top_k=5, top_k_budget=40) for q in queries]

    # ---- memory backend: vectorised certificates, per-query retirement --
    with PPVService.open(index, graph=graph, delta=0.0) as service:
        results = service.query_many(specs)
    print("memory backend, certified top-5 per query:")
    print(f"{'query':>7} {'iters':>6} {'L1 err at stop':>15} {'certified':>10}")
    for query, result in zip(queries, results):
        print(
            f"{query:>7} {result.iterations:>6} {result.l1_error:>15.4f} "
            f"{str(result.certified):>10}"
        )
    iters = [r.iterations for r in results]
    print(
        f"\nqueries retire individually: iteration counts span "
        f"{min(iters)}..{max(iters)} — nobody waits for the slowest "
        "certificate.\n"
    )

    # ---- the same workload from a disk-resident deployment ----
    workdir = Path(tempfile.mkdtemp(prefix="fastppv_topk_"))
    save_index(index, workdir / "index.fppv")
    assignment = cluster_graph(graph, num_clusters=10, seed=1)

    print("disk backend, same top-5 workload:")

    def serve(label, run):
        store = DiskGraphStore(graph, assignment, workdir / label)
        with DiskPPVStore(workdir / "index.fppv") as ppv_store:
            run_results = run(store, ppv_store)
            print(
                f"{label:>10}: {store.faults:>4} cluster faults, "
                f"{ppv_store.reads:>5} hub reads for {len(queries)} queries"
            )
        return run_results

    def sequential_run(store, ppv_store):
        # Two clients served one after the other, each query alone:
        # per-query I/O with nothing to amortise.
        with PPVService.open(
            ppv_store, graph_store=store, delta=0.0, fault_budget=10**9
        ) as service:
            return [service.query(spec) for spec in specs]

    def concurrent_run(store, ppv_store):
        # Two concurrent clients submitting to one service: the
        # scheduler coalesces both bursts into shared cluster-grouped
        # batches, so each wave faults a cluster in once for everybody.
        with PPVService.open(
            ppv_store, graph_store=store, delta=0.0, fault_budget=10**9
        ) as service:
            outcome: dict[int, list] = {}

            def client(which, chunk):
                handles = [service.submit(spec) for spec in chunk]
                outcome[which] = [h.result() for h in handles]

            threads = [
                threading.Thread(target=client, args=(0, specs[:6])),
                threading.Thread(target=client, args=(1, specs[6:])),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return outcome[0] + outcome[1]

    one_by_one = serve("sequential", sequential_run)
    coalesced = serve("concurrent", concurrent_run)
    agree = all(
        set(a.topk.nodes.tolist()) == set(b.topk.nodes.tolist())
        for a, b in zip(one_by_one, coalesced)
    )
    print(f"\nsame certified sets either way: {agree}")
    certified_match = sum(
        set(r.topk.nodes.tolist()) == set(m.nodes.tolist())
        for r, m in zip(coalesced, results)
        if r.topk.certified
    )
    print(f"certified disk answers matching the memory backend: {certified_match}")


if __name__ == "__main__":
    main()
