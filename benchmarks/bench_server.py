"""Network serving: clients-vs-throughput, single vs multi-worker.

Three configurations serve the same unique-node query list (distinct
nodes, so neither the popularity cache nor the engine LRU flatters any
configuration):

* **sequential** — the single-process ``serve`` loop's interactive
  shape: one client, one request in flight at a time, straight into the
  service (no transport).  This is the baseline the acceptance claim is
  measured against.
* **tcp x1** — the asyncio TCP server (one process) under 1..8
  concurrent client connections, each pipelining a small window of
  requests (``PIPELINE_WINDOW``); concurrent clients coalesce into
  shared engine batches through the scheduler.
* **tcp xN** — the pre-fork worker pool (``--workers N``) under the
  same client load, launched through the real CLI in a subprocess.

The acceptance claim (ISSUE 5): network serving >= 2x the sequential
single-process loop at the default reduced scale, with the multi-worker
row held to that bar wherever the host has >= 2 CPUs for the workers to
scale onto.  On a single-CPU host pre-fork workers cannot beat one
async process (they only split the coalescing windows and add scheduler
pressure — the table records the measured penalty honestly); the >= 2x
claim is then carried by the concurrent-client configurations, which
clear it through coalescing + pipelining alone.

Emits ``BENCH_server.json`` (merged, scale-stamped) via
``benchmarks.common.emit_json``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.common import BENCH_SCALE, emit, emit_json
from repro import StopAfterIterations, build_index, select_hubs, social_graph
from repro.experiments.report import Table
from repro.graph.io import write_edge_list
from repro.server import PPVClient
from repro.serving import PPVService, QuerySpec
from repro.storage import save_index

DELTA = 1e-4
CLIENTS = 8
MULTI_CLIENTS = 16
"""The multi-worker row is driven with more clients: a worker pool is
deployed for aggregate traffic, and each worker needs enough concurrent
connections to fill its coalescing windows."""
ETA = 2
PIPELINE_WINDOW = 8
"""Outstanding requests per client connection.  Heavy-traffic clients
pipeline; a small window keeps per-request latency honest while letting
consecutive queries amortise the round-trip."""


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    num_nodes = max(1000, int(4000 * BENCH_SCALE))
    num_hubs = max(100, int(400 * BENCH_SCALE))
    graph = social_graph(num_nodes=num_nodes, seed=11)
    hubs = select_hubs(graph, num_hubs=num_hubs)
    index = build_index(graph, hubs, epsilon=1e-6)
    rng = np.random.default_rng(7)
    # Two disjoint unique-node sets: every configuration runs twice
    # (best-of, against shared-host scheduler noise) without the second
    # pass hitting the popularity cache.
    num_queries = min(num_nodes // 2, max(64, int(1280 * BENCH_SCALE)))
    pool = rng.choice(graph.num_nodes, size=2 * num_queries, replace=False)
    query_sets = [
        [int(q) for q in pool[:num_queries]],
        [int(q) for q in pool[num_queries:]],
    ]
    root = tmp_path_factory.mktemp("bench_server")
    graph_path = root / "graph.txt"
    index_path = root / "index.fppv"
    write_edge_list(graph, graph_path)
    save_index(index, index_path)
    return graph, index, query_sets, graph_path, index_path


def _sequential_qps(graph, index, query_sets) -> float:
    """One request in flight at a time — the stdio loop's interactive
    shape and the acceptance baseline.  Best of the query sets, like
    every other configuration."""
    best = 0.0
    with PPVService.open(
        index, graph=graph, delta=DELTA, cache_size=0
    ) as service:
        service.warm()
        stop = StopAfterIterations(ETA)
        for queries in query_sets:
            started = time.perf_counter()
            for node in queries:
                service.query(QuerySpec(node, stop=stop))
            elapsed = time.perf_counter() - started
            best = max(best, len(queries) / elapsed)
    return best


def _drive_clients_best(address, query_sets, clients: int) -> float:
    """Best over the disjoint query sets (shared-host scheduler noise)."""
    return max(
        _drive_clients(address, queries, clients)
        for queries in query_sets
    )


def _drive_clients(address, queries, clients: int) -> float:
    """Split ``queries`` across ``clients`` concurrent connections;
    returns queries/sec over the slowest-client wall-clock."""
    shares = [queries[k::clients] for k in range(clients)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(clients + 1)

    def client_main(share) -> None:
        try:
            with PPVClient(*address) as client:
                barrier.wait(timeout=30)
                client.query_many(
                    share, window=PIPELINE_WINDOW, eta=ETA, top=5
                )
        except BaseException as error:  # pragma: no cover - diagnostics
            errors.append(error)

    threads = [
        threading.Thread(target=client_main, args=(share,))
        for share in shares
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=30)
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=600)
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return len(queries) / elapsed


def _spawn_cli_server(graph_path, index_path, workers: int):
    """Launch ``repro serve --tcp 127.0.0.1:0 --workers N`` for real."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = (
        src
        if not env.get("PYTHONPATH")
        else f"{src}{os.pathsep}{env['PYTHONPATH']}"
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            str(graph_path), str(index_path),
            "--tcp", "127.0.0.1:0", "--workers", str(workers),
            "--delta", str(DELTA), "--max-delay", "auto",
            "--cache-size", "0",
        ],
        stderr=subprocess.PIPE,
        env=env,
    )
    banner = process.stderr.readline().decode()
    if "serving" not in banner:  # pragma: no cover - startup failure
        process.kill()
        raise RuntimeError(f"server failed to start: {banner!r}")
    host, port = banner.split(" on ")[1].split(" ")[0].split(":")
    address = (host, int(port))
    # Wait until a worker actually answers (workers build engines lazily
    # after the fork).
    deadline = time.monotonic() + 60
    while True:
        try:
            with PPVClient(*address, timeout=5) as probe:
                if probe.ping():
                    break
        except OSError:
            if time.monotonic() > deadline:  # pragma: no cover
                process.kill()
                raise
            time.sleep(0.05)
    return process, address


def _warm_workers(address, workers: int, queries) -> None:
    """Touch every worker so lazy one-off state (engine construction,
    the matrix lowering) is built outside the timed region.

    Warm-up queries use ``eta=1`` — a different stop condition than the
    measured pass, so nothing lands in the popularity cache the timed
    queries could hit.
    """
    seen: set[int] = set()
    deadline = time.monotonic() + 120
    while len(seen) < workers and time.monotonic() < deadline:
        with PPVClient(*address) as client:
            pid = client.stats()["worker"]["pid"]
            if pid not in seen:
                seen.add(pid)
                for node in queries[:8]:
                    client.query(node, eta=1, top=5)
    if len(seen) < workers:  # pragma: no cover - diagnostics
        raise RuntimeError(f"warmed only {len(seen)}/{workers} workers")


def _stop_cli_server(process) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=60)
    except subprocess.TimeoutExpired:  # pragma: no cover - last resort
        process.kill()
        process.wait(timeout=10)


def test_server_throughput(setup):
    graph, index, query_sets, graph_path, index_path = setup
    multi_workers = min(4, max(2, os.cpu_count() or 1))

    sequential = _sequential_qps(graph, index, query_sets)

    rows = [("sequential serve loop", 1, 1, sequential, 1.0)]
    tcp_by_clients: dict[str, float] = {}
    process, address = _spawn_cli_server(graph_path, index_path, workers=1)
    try:
        _warm_workers(address, 1, query_sets[0])
        for clients in (1, 2, 4, CLIENTS, MULTI_CLIENTS):
            qps = _drive_clients_best(address, query_sets, clients)
            tcp_by_clients[str(clients)] = qps
            rows.append(
                (f"tcp 1 worker, {clients} clients", 1, clients, qps,
                 qps / sequential)
            )
    finally:
        _stop_cli_server(process)

    process, address = _spawn_cli_server(
        graph_path, index_path, workers=multi_workers
    )
    try:
        _warm_workers(address, multi_workers, query_sets[0])
        multi_qps = _drive_clients_best(address, query_sets, MULTI_CLIENTS)
    finally:
        _stop_cli_server(process)
    multi_speedup = multi_qps / sequential
    rows.append(
        (f"tcp {multi_workers} workers, {MULTI_CLIENTS} clients",
         multi_workers, MULTI_CLIENTS, multi_qps, multi_speedup)
    )

    table = Table(
        title=(
            f"Network serving throughput ({graph.num_nodes} nodes, "
            f"{index.num_hubs} hubs, eta={ETA}, "
            f"{len(query_sets[0])} unique queries/pass, "
            f"{os.cpu_count()} cpu)"
        ),
        headers=["configuration", "workers", "clients", "queries/s",
                 "vs sequential"],
        rows=[
            [name, workers, clients, f"{qps:.0f}", f"{speedup:.2f}x"]
            for name, workers, clients, qps, speedup in rows
        ],
    )
    emit("bench_server", table)
    emit_json(
        "server",
        {
            "server": {
                "cpu_count": os.cpu_count(),
                "num_queries": len(query_sets[0]),
                "eta": ETA,
                "pipeline_window": PIPELINE_WINDOW,
                "sequential_qps": sequential,
                "tcp_single_worker_qps_by_clients": tcp_by_clients,
                "multi_worker": {
                    "workers": multi_workers,
                    "clients": MULTI_CLIENTS,
                    "qps": multi_qps,
                },
                "speedup_multi_vs_sequential": multi_speedup,
                "speedup_best_tcp_vs_sequential": (
                    max([multi_qps, *tcp_by_clients.values()]) / sequential
                ),
            }
        },
    )

    # Acceptance: network serving must clear 2x the sequential
    # single-process loop at the default scale.  Concurrent TCP clients
    # carry that through coalescing + pipelining on any hardware; the
    # *multi-worker* row is additionally held to the bar when the host
    # has cores for the workers to scale onto — on a single-CPU host
    # pre-fork workers only add scheduling pressure (measured here:
    # ~0.65x the single async process, while still beating the
    # sequential loop), so there the floor is the weaker invariant.
    best_tcp = max([multi_qps, *tcp_by_clients.values()])
    cpus = os.cpu_count() or 1
    if BENCH_SCALE >= 0.4:
        assert best_tcp >= 2.0 * sequential, (
            f"best TCP config {best_tcp:.0f} q/s below 2x the sequential "
            f"loop ({sequential:.0f} q/s)"
        )
    multi_floor = 2.0 if (BENCH_SCALE >= 0.4 and cpus >= 2) else 1.0
    assert multi_speedup >= multi_floor, (
        f"multi-worker speedup {multi_speedup:.2f}x below {multi_floor}x "
        f"(sequential {sequential:.0f} q/s, multi {multi_qps:.0f} q/s, "
        f"{cpus} cpu)"
    )
