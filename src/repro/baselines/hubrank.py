"""HubRankP baseline (Chakrabarti, Pathak, Gupta [7]).

The most competitive prior method in the "reuse computation" family.  It
improves Berkhin's bookmark coloring in two ways the paper describes:

* **Offline**: the *full* PPVs of a hub set are precomputed (by push to a
  fine threshold) and stored clipped.  This is the expensive part — each
  hub's push ranges over the whole graph, which is why the paper measures
  FastPPV's offline phase 4.3-11.0x faster (FastPPV only pushes over prime
  subgraphs).
* **Hub selection**: hubs are chosen by expected *benefit* under a query
  log.  With a uniform query log (the paper's stated assumption, fair
  because test queries are sampled uniformly), the probability that a
  random not-yet-stopped walk sits at node ``v`` is proportional to ``v``'s
  global PageRank, and the work a cached vector saves grows with ``v``'s
  push cost; we estimate benefit as ``pagerank(v) * log2(2 + out_degree(v))``
  and keep the top ``num_hubs``.

Online, a query is one forward push that splices cached hub vectors
(:func:`repro.baselines.push.forward_push` with ``hub_vectors``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.push import forward_push
from repro.baselines.result import BaselineResult
from repro.core.index import DEFAULT_CLIP, IndexStats
from repro.graph.digraph import DiGraph
from repro.graph.pagerank import DEFAULT_ALPHA, global_pagerank


class HubRankP:
    """Push-based PPV engine with precomputed hub vectors.

    Parameters
    ----------
    graph:
        The graph.
    num_hubs:
        How many hub vectors to precompute.
    push_threshold:
        Online degree-normalised residual threshold (the ``push`` knob of
        Fig. 5): smaller is more accurate and slower.
    offline_threshold:
        Push threshold used for the offline hub vectors; defaults to a
        tenth of the online threshold so cached vectors are finer than
        online pushes.
    alpha:
        Teleport probability.
    clip:
        Storage clip for hub vectors (the shared 1e-4 convention).
    pagerank:
        Optional precomputed global PageRank to skip recomputation.
    """

    def __init__(
        self,
        graph: DiGraph,
        num_hubs: int,
        push_threshold: float = 1e-4,
        offline_threshold: float | None = None,
        alpha: float = DEFAULT_ALPHA,
        clip: float = DEFAULT_CLIP,
        pagerank: np.ndarray | None = None,
    ) -> None:
        if push_threshold <= 0.0:
            raise ValueError("push_threshold must be positive")
        self.graph = graph
        self.alpha = alpha
        self.push_threshold = push_threshold
        self.offline_threshold = (
            offline_threshold if offline_threshold is not None else push_threshold / 10.0
        )
        self.clip = clip
        self.offline_stats = IndexStats()
        self._hub_vectors: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._precompute(num_hubs, pagerank)

    # ------------------------------------------------------------------ #

    def _select_hubs(self, num_hubs: int, pagerank: np.ndarray | None) -> np.ndarray:
        if pagerank is None:
            pagerank = global_pagerank(self.graph, alpha=self.alpha)
        benefit = pagerank * np.log2(2.0 + self.graph.out_degrees)
        order = np.lexsort((np.arange(self.graph.num_nodes), -benefit))
        return np.sort(order[: min(num_hubs, self.graph.num_nodes)])

    def _precompute(self, num_hubs: int, pagerank: np.ndarray | None) -> None:
        started = time.perf_counter()
        hubs = self._select_hubs(num_hubs, pagerank)
        # Hubs are computed in *descending benefit-free* id order but each
        # push may splice previously finished hubs, which accelerates the
        # offline phase the same way the online phase is accelerated.
        for hub in hubs:
            estimate, _ = forward_push(
                self.graph,
                int(hub),
                alpha=self.alpha,
                threshold=self.offline_threshold,
                hub_vectors=self._hub_vectors,
                skip_source_splice=True,
            )
            support = np.nonzero(estimate >= self.clip)[0]
            nodes = support.astype(np.int64)
            scores = estimate[support]
            self._hub_vectors[int(hub)] = (nodes, scores)
            self.offline_stats.stored_entries += nodes.size
            self.offline_stats.stored_bytes += nodes.nbytes + scores.nbytes
        self.offline_stats.num_hubs = hubs.size
        self.offline_stats.build_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------ #

    @property
    def hubs(self) -> np.ndarray:
        """Sorted ids of the cached hub vectors."""
        return np.asarray(sorted(self._hub_vectors), dtype=np.int64)

    def query(self, query: int) -> BaselineResult:
        """Approximate the PPV of ``query`` by hub-splicing forward push."""
        started = time.perf_counter()
        counters: dict = {}
        estimate, _ = forward_push(
            self.graph,
            query,
            alpha=self.alpha,
            threshold=self.push_threshold,
            hub_vectors=self._hub_vectors,
            skip_source_splice=True,
            counters=counters,
        )
        return BaselineResult(
            query=query,
            scores=estimate,
            seconds=time.perf_counter() - started,
            work_units=counters["edges"] + counters["splice_entries"],
        )
