"""The asyncio TCP front-end over one :class:`~repro.serving.PPVService`.

One :class:`PPVServer` owns one service and multiplexes any number of
client connections onto it.  The event loop only parses, admits and
replies; every query still executes on the service's scheduler drain
thread, so concurrent connections coalesce into shared engine batches
exactly like concurrent ``submit()`` callers in one process — the
server rides :meth:`~repro.serving.spec.QueryHandle.add_done_callback`
instead of parking a thread per in-flight request.

Admission control (backpressure)
--------------------------------
Two bounds, both enforced *before* the next line is read from a
connection, so a client that outruns the service is throttled by TCP
flow control rather than ballooning server memory:

* ``max_inflight`` — server-wide bound on admitted-but-unanswered
  requests (the in-flight admission queue);
* ``max_inflight_per_conn`` — per-connection share, so one firehose
  client cannot starve the rest.

Structured errors (malformed JSON, oversized lines, unknown verbs, bad
fields) are replied per request and never tear down the connection; see
:mod:`repro.server.protocol` for the codes.

Hot swap and shutdown
---------------------
``swap_index`` closes the admission gate (arrivals are held, not
dropped), drains in-flight work via the service's own
``update_index`` flush, swaps, then reopens the gate — an accepted
query is always answered, from the old index or the new one.
``shutdown`` (verb, signal, or :meth:`PPVServer.request_shutdown`)
stops accepting connections, answers everything in flight, then closes.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.server import protocol
from repro.server.protocol import (
    DEFAULT_MAX_LINE_BYTES,
    E_INTERNAL,
    E_INVALID,
    E_MALFORMED,
    E_OVERSIZED,
    E_SHARD_UNAVAILABLE,
    E_UNAVAILABLE,
    E_UNSUPPORTED_FAMILY,
    ProtocolError,
    ShardUnavailableError,
)
from repro.serving.families import UnsupportedFamilyError, supported_families

DEFAULT_MAX_INFLIGHT = 256
DEFAULT_MAX_INFLIGHT_PER_CONN = 32


def _package_version() -> str:
    # Imported lazily: repro/__init__ pulls in the whole serving stack.
    from repro import __version__

    return __version__


@dataclass
class ServerConfig:
    """Tunables of one :class:`PPVServer` (transport-level only;
    engine/scheduler knobs live on the service)."""

    host: str = "127.0.0.1"
    port: int = 0
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    max_inflight_per_conn: int = DEFAULT_MAX_INFLIGHT_PER_CONN
    default_top: int = 10

    def __post_init__(self) -> None:
        if self.max_line_bytes < 64:
            raise ValueError("max_line_bytes must be at least 64")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.max_inflight_per_conn < 1:
            raise ValueError("max_inflight_per_conn must be at least 1")


@dataclass
class ServerCounters:
    """Server-level counters surfaced by the ``stats`` verb (alongside
    the service's own :class:`~repro.serving.service.ServiceStats`)."""

    connections_total: int = 0
    connections_open: int = 0
    requests_total: int = 0
    responses_total: int = 0
    frames_total: int = 0
    errors_total: int = 0
    errors_by_code: dict = field(default_factory=dict)
    swaps_total: int = 0

    def count_error(self, code: str) -> None:
        self.errors_total += 1
        self.errors_by_code[code] = self.errors_by_code.get(code, 0) + 1

    def as_dict(self) -> dict:
        return {
            "connections_total": self.connections_total,
            "connections_open": self.connections_open,
            "requests_total": self.requests_total,
            "responses_total": self.responses_total,
            "frames_total": self.frames_total,
            "errors_total": self.errors_total,
            "errors_by_code": dict(self.errors_by_code),
            "swaps_total": self.swaps_total,
        }


class _Connection:
    """Per-connection state: serialised writes and an in-flight bound."""

    __slots__ = ("reader", "writer", "write_lock", "slots", "tasks")

    def __init__(self, reader, writer, per_conn_limit: int) -> None:
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.slots = asyncio.Semaphore(per_conn_limit)
        self.tasks: set[asyncio.Task] = set()


class PPVServer:
    """Serve one :class:`~repro.serving.PPVService` over TCP (JSONL).

    Parameters
    ----------
    service:
        The service to serve.  The server never closes it — the caller
        (or worker harness) that opened the service owns its lifetime.
    config:
        Transport tunables; defaults are fine for tests and benchmarks.
    worker_index:
        Cosmetic tag reported by ``stats`` in multi-worker mode.
    fault_plan:
        Tests only: a :class:`repro.faults.FaultPlan`.  The
        ``server.request`` site fires per parsed request line (a
        ``kill`` rule implements "SIGKILL this worker after m
        requests"); ``server.send`` fires per response frame (a
        ``torn`` rule truncates the frame and drops the connection, a
        raising rule simulates a mid-write disconnect).  ``None`` keeps
        both paths hook-free.
    """

    def __init__(
        self,
        service,
        config: ServerConfig | None = None,
        worker_index: int = 0,
        fault_plan=None,
    ) -> None:
        self.service = service
        self.config = config or ServerConfig()
        self.worker_index = worker_index
        self.fault_plan = fault_plan
        self.counters = ServerCounters()
        # Observability rides on the service: a PPVService built with
        # obs=... makes this front-end trace-aware and its counters
        # visible in the registry snapshot; a bare service keeps every
        # hook at one None check.
        self.obs = getattr(service, "obs", None)
        self._started_monotonic = time.monotonic()
        if self.obs is not None:
            self._register_metrics()
        self.address: tuple | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._shutdown: asyncio.Event | None = None
        self._gate: asyncio.Event | None = None
        self._slots: asyncio.Semaphore | None = None
        self._swap_lock: asyncio.Lock | None = None
        self._connections: set[_Connection] = set()
        self._started = threading.Event()

    def _register_metrics(self) -> None:
        """Expose the transport counters as function-backed metrics."""
        registry = self.obs.registry
        counters = self.counters
        registry.counter_func(
            "repro_server_requests_total",
            "Request lines parsed by the TCP front-end.",
            lambda: counters.requests_total,
        )
        registry.counter_func(
            "repro_server_responses_total",
            "Responses written by the TCP front-end.",
            lambda: counters.responses_total,
        )
        registry.counter_func(
            "repro_server_errors_total",
            "Structured errors returned, by code.",
            lambda: {
                (code,): count
                for code, count in counters.errors_by_code.items()
            },
            labelnames=("code",),
        )
        registry.gauge_func(
            "repro_server_connections_open",
            "Client connections currently open.",
            lambda: counters.connections_open,
        )
        registry.gauge_func(
            "repro_server_uptime_seconds",
            "Seconds since this server object was created.",
            lambda: time.monotonic() - self._started_monotonic,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle

    async def serve(self, sock=None, on_ready=None) -> None:
        """Accept and serve connections until shutdown is requested.

        ``sock`` overrides ``config.host``/``config.port`` with an
        already-bound listening socket — the pre-fork worker path, where
        every worker accepts from the same inherited socket.
        ``on_ready`` (if given) is called with the bound ``(host,
        port)`` once the server is listening.
        """
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._shutdown = asyncio.Event()
        self._gate = asyncio.Event()
        self._gate.set()
        self._slots = asyncio.Semaphore(self.config.max_inflight)
        self._swap_lock = asyncio.Lock()
        # readuntil() needs headroom above the payload bound so the
        # oversized error path triggers deterministically at our limit,
        # not the transport's.
        limit = self.config.max_line_bytes + 2
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=sock, limit=limit
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection,
                self.config.host,
                self.config.port,
                limit=limit,
            )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._install_signal_handlers(loop)
        self._started.set()
        if on_ready is not None:
            on_ready(self.address)
        try:
            await self._shutdown.wait()
            # Graceful: stop accepting, answer what is in flight, close
            # every connection, and only then wait for the listener —
            # on Python >= 3.12.1 Server.wait_closed() blocks until all
            # connection handlers finish, and the handlers are parked
            # in read() until _drain_connections() closes their
            # sockets, so the drain must come first.
            self._server.close()
            await self._drain_connections()
            await self._server.wait_closed()
        finally:
            # Covers the exception/cancellation path too (the normal
            # path above already closed; close() is idempotent).
            self._server.close()
            self._started.clear()

    def _install_signal_handlers(self, loop) -> None:
        try:
            import signal

            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self._shutdown.set)
        except (ImportError, NotImplementedError, RuntimeError, ValueError):
            # Not the main thread (test harnesses) or an exotic platform:
            # request_shutdown() and the shutdown verb still work.
            pass

    def request_shutdown(self) -> None:
        """Thread-safe graceful shutdown trigger (idempotent; a no-op
        once the event loop is already gone)."""
        if self._loop is not None and self._shutdown is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already closed: the server is down

    async def _drain_connections(self) -> None:
        for connection in list(self._connections):
            pending = [t for t in connection.tasks if not t.done()]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            await self._close_connection(connection)

    async def _close_connection(self, connection: _Connection) -> None:
        writer = connection.writer
        try:
            if not writer.is_closing():
                writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------ #
    # Connection handling

    async def _on_connection(self, reader, writer) -> None:
        # Small JSONL responses must not sit in Nagle's buffer waiting
        # for the client's delayed ACK.
        try:
            conn_sock = writer.get_extra_info("socket")
            if conn_sock is not None:
                conn_sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
        except OSError:  # pragma: no cover - exotic transports
            pass
        connection = _Connection(
            reader, writer, self.config.max_inflight_per_conn
        )
        self._connections.add(connection)
        self.counters.connections_total += 1
        self.counters.connections_open += 1
        try:
            await self._read_loop(connection)
            # EOF from the client: answer its outstanding requests
            # before closing our side.
            pending = [t for t in connection.tasks if not t.done()]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except (ConnectionError, OSError):
            pass
        finally:
            for task in connection.tasks:
                task.cancel()
            await self._close_connection(connection)
            self._connections.discard(connection)
            self.counters.connections_open -= 1

    async def _read_loop(self, connection: _Connection) -> None:
        # The loop runs until the peer (or the shutdown drain, which
        # closes every connection once in-flight work is answered) ends
        # the connection; requests arriving after shutdown get a
        # structured ``unavailable`` reply from _dispatch_line rather
        # than silence.
        reader = connection.reader
        while True:
            try:
                line = await reader.readuntil(b"\n")
            except asyncio.IncompleteReadError as error:
                if error.partial.strip():
                    await self._dispatch_line(connection, error.partial)
                return
            except asyncio.LimitOverrunError as error:
                await self._discard_oversized(connection, error.consumed)
                continue
            # The bound applies to the payload, excluding the record
            # separator readuntil includes.
            if len(line.rstrip(b"\r\n")) > self.config.max_line_bytes:
                await self._reply_oversized(connection)
                continue
            line = line.strip()
            if not line:
                continue
            await self._dispatch_line(connection, line)

    async def _discard_oversized(self, connection: _Connection, consumed: int) -> None:
        """Skip exactly the over-limit line, then report it.

        Consumes byte-exact amounts so pipelined requests queued behind
        the offending newline survive intact.
        """
        reader = connection.reader
        while True:
            if consumed:
                try:
                    await reader.readexactly(consumed)
                except asyncio.IncompleteReadError:
                    break
            try:
                await reader.readuntil(b"\n")  # the tail of the long line
                break
            except asyncio.LimitOverrunError as error:
                consumed = error.consumed
            except asyncio.IncompleteReadError:
                break
        await self._reply_oversized(connection)

    async def _reply_oversized(self, connection: _Connection) -> None:
        self.counters.count_error(E_OVERSIZED)
        await self._send(
            connection,
            protocol.error_response(
                None,
                E_OVERSIZED,
                f"request line exceeds {self.config.max_line_bytes} bytes",
            ),
        )

    async def _send(self, connection: _Connection, message: dict) -> None:
        async with connection.write_lock:
            payload = protocol.encode(message)
            if self.fault_plan is not None:
                action = self.fault_plan.fire("server.send")
                if action is not None and action.torn:
                    # Write a prefix of the frame, then drop the
                    # connection: the client sees a line with no
                    # terminator followed by EOF — a torn frame.
                    connection.writer.write(payload[: max(1, len(payload) // 2)])
                    try:
                        await connection.writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    connection.writer.close()
                    raise ConnectionResetError("injected torn frame")
            connection.writer.write(payload)
            await connection.writer.drain()

    async def _dispatch_line(self, connection: _Connection, line) -> None:
        """Parse one request line and route it.

        Control verbs are answered inline; query/stream verbs first
        acquire both admission bounds — stalling this coroutine (and
        with it the connection's read loop) is exactly the backpressure
        contract — then run as a task so the connection can pipeline.
        """
        self.counters.requests_total += 1
        if self.fault_plan is not None:
            self.fault_plan.fire(
                "server.request", requests=self.counters.requests_total
            )
        request_id = None
        try:
            request = protocol.parse_request(line)
            request_id = request.get("id")
            protocol.check_version(request)
            verb = protocol.request_verb(request)
            if verb == "ping":
                await self._send(
                    connection,
                    protocol.ok_response(request_id, {"pong": True}),
                )
                self.counters.responses_total += 1
                return
            if verb == "stats":
                # Off the event loop: a shard router's stats fan out to
                # every shard over the network.
                payload = await asyncio.to_thread(self._stats_payload)
                await self._send(
                    connection, protocol.ok_response(request_id, payload)
                )
                self.counters.responses_total += 1
                return
            if verb == "trace":
                # Off the event loop: a shard router's trace fan-out
                # queries every shard over the network.
                payload = await asyncio.to_thread(
                    self._trace_payload, request
                )
                await self._send(
                    connection, protocol.ok_response(request_id, payload)
                )
                self.counters.responses_total += 1
                return
            if verb in ("fetch_hubs", "fetch_cluster", "shard_info"):
                # The shard-side half of a traced fetch: record how long
                # this worker spent serving the remote store's request.
                span = self._request_span(request, verb)
                try:
                    await self._serve_fetch(
                        connection, request_id, verb, request
                    )
                finally:
                    if span is not None:
                        span.end()
                return
            if verb == "shutdown":
                await self._send(connection, protocol.ok_response(request_id))
                self.counters.responses_total += 1
                self._shutdown.set()
                return
            if verb == "swap_index":
                await self._swap_index(connection, request_id, request)
                return
            # query / stream: admit under both bounds.
            spec = protocol.spec_from_request(request)
            top = protocol.top_from_request(request, self.config.default_top)
            if self._shutdown.is_set():
                raise ProtocolError(
                    E_UNAVAILABLE, "server is shutting down"
                )
            # A traced request gets a server-hop span covering admission
            # wait through response; downstream spans parent under it so
            # the tree reads client → server → service → kernel.
            span = None
            if spec.trace is not None and self.obs is not None:
                span = self.obs.tracer.start_span(
                    f"server.{verb}", spec.trace, worker=self.worker_index
                )
                spec = spec.with_trace(span.context())
            try:
                await self._gate.wait()
                await self._slots.acquire()
                await connection.slots.acquire()
            except BaseException:
                if span is not None:
                    span.end(error="admission")
                raise
            runner = (
                self._serve_stream if verb == "stream" else self._serve_query
            )
            task = asyncio.ensure_future(
                self._admitted(
                    runner, connection, request_id, spec, top, span
                )
            )
            connection.tasks.add(task)
            task.add_done_callback(connection.tasks.discard)
        except ProtocolError as error:
            self.counters.count_error(error.code)
            await self._send(
                connection,
                protocol.error_response(request_id, error.code, error.message),
            )
        except (ConnectionError, OSError):
            raise
        except Exception as error:  # pragma: no cover - defensive
            self.counters.count_error(E_INTERNAL)
            await self._send(
                connection,
                protocol.error_response(request_id, E_INTERNAL, str(error)),
            )

    async def _admitted(
        self, runner, connection: _Connection, request_id, spec, top,
        span=None,
    ) -> None:
        """Run one admitted request, releasing its slots afterwards."""
        try:
            # Re-check the swap gate here, after the slot waits: a
            # request that passed the dispatch-time gate and then sat
            # in an admission queue across the start of a swap must not
            # submit into the middle of the engine rebuild — from this
            # wait to the actual submit there is no further await, so
            # the swap (which closes the gate before flushing) cannot
            # interleave.
            await self._gate.wait()
            await runner(connection, request_id, spec, top)
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            pass  # client went away; the read loop notices on its own
        except Exception as error:  # pragma: no cover - defensive
            self.counters.count_error(E_INTERNAL)
            try:
                await self._send(
                    connection,
                    protocol.error_response(request_id, E_INTERNAL, str(error)),
                )
            except (ConnectionError, OSError):
                pass
        finally:
            if span is not None:
                span.end()
            connection.slots.release()
            self._slots.release()

    def _request_span(self, request: dict, verb: str):
        """A server-hop span for a traced request, or ``None`` when the
        request (or this server) is untraced."""
        if self.obs is None:
            return None
        context = protocol.trace_from_request(request)
        if context is None:
            return None
        return self.obs.tracer.start_span(
            f"server.{verb}", context, worker=self.worker_index
        )

    def _trace_payload(self, request: dict) -> dict:
        """The ``trace`` verb: recent spans, locally recorded plus —
        behind a router engine — fanned out across every shard."""
        trace_id = request.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            raise ProtocolError(E_INVALID, '"trace_id" must be a string')
        limit = request.get("limit")
        if limit is not None and (
            not isinstance(limit, int) or isinstance(limit, bool)
            or limit < 1
        ):
            raise ProtocolError(
                E_INVALID, '"limit" must be a positive integer'
            )
        spans: list = []
        if self.obs is not None:
            spans.extend(self.obs.tracer.spans(trace_id=trace_id, limit=limit))
        fan_out = getattr(self.service.engine, "trace_spans", None)
        payload = {"schema": protocol.TRACE_SCHEMA_VERSION}
        if fan_out is not None:
            try:
                spans.extend(fan_out(trace_id=trace_id, limit=limit))
            except ShardUnavailableError as error:
                payload["error"] = str(error)
        spans.sort(key=lambda record: record.get("start") or 0.0)
        payload["spans"] = spans
        payload["count"] = len(spans)
        return payload

    # ------------------------------------------------------------------ #
    # Verb implementations

    async def _serve_fetch(
        self, connection: _Connection, request_id, verb: str, request: dict
    ) -> None:
        """Shard-internal data verbs: raw hub entries, one cluster's
        adjacency, or the shard's partition coordinates.

        Served by engines that expose the matching method (the shard
        engine of :mod:`repro.sharding`); every other backend refuses
        with ``invalid``.  The payloads can dwarf ``max_line_bytes`` —
        the line bound applies to requests only, and the client reads
        responses unbounded.
        """
        method = getattr(self.service.engine, verb, None)
        if method is None:
            backend = getattr(self.service.engine, "backend", None)
            raise ProtocolError(
                E_INVALID,
                f"the {backend!r} backend does not serve {verb!r}; "
                "only shard processes do",
            )
        try:
            if verb == "fetch_hubs":
                hubs = request.get("hubs")
                if not isinstance(hubs, list):
                    raise ProtocolError(
                        E_INVALID, 'fetch_hubs needs a "hubs" list'
                    )
                payload = await asyncio.to_thread(
                    method, [int(hub) for hub in hubs]
                )
            elif verb == "fetch_cluster":
                cluster = request.get("cluster")
                if not isinstance(cluster, int) or isinstance(cluster, bool):
                    raise ProtocolError(
                        E_INVALID, 'fetch_cluster needs an integer "cluster"'
                    )
                payload = await asyncio.to_thread(method, cluster)
            else:
                payload = await asyncio.to_thread(method)
        except ProtocolError:
            raise
        except (KeyError, ValueError, TypeError) as error:
            raise ProtocolError(E_INVALID, str(error)) from None
        await self._send(connection, protocol.ok_response(request_id, payload))
        self.counters.responses_total += 1

    async def _await_handle(self, handle):
        """Await a service handle without blocking the event loop."""
        future = self._loop.create_future()

        def on_done(_handle) -> None:
            self._loop.call_soon_threadsafe(
                lambda: future.done() or future.set_result(None)
            )

        handle.add_done_callback(on_done)
        await future
        return handle.result(timeout=0)

    async def _serve_query(
        self, connection: _Connection, request_id, spec, top
    ) -> None:
        try:
            handle = self.service.submit(spec)
        except UnsupportedFamilyError as error:
            self.counters.count_error(E_UNSUPPORTED_FAMILY)
            await self._send(
                connection,
                protocol.error_response(
                    request_id, E_UNSUPPORTED_FAMILY, str(error)
                ),
            )
            return
        except ValueError as error:
            self.counters.count_error(E_INVALID)
            await self._send(
                connection,
                protocol.error_response(request_id, E_INVALID, str(error)),
            )
            return
        try:
            result = await self._await_handle(handle)
        except ShardUnavailableError as error:
            self.counters.count_error(E_SHARD_UNAVAILABLE)
            await self._send(
                connection,
                protocol.error_response(
                    request_id, E_SHARD_UNAVAILABLE, str(error)
                ),
            )
            return
        except ValueError as error:
            # e.g. a shard process refusing direct queries.
            self.counters.count_error(E_INVALID)
            await self._send(
                connection,
                protocol.error_response(request_id, E_INVALID, str(error)),
            )
            return
        except Exception as error:
            self.counters.count_error(E_INTERNAL)
            await self._send(
                connection,
                protocol.error_response(request_id, E_INTERNAL, str(error)),
            )
            return
        await self._send(
            connection,
            protocol.ok_response(
                request_id, protocol.render_result(spec, result, top)
            ),
        )
        self.counters.responses_total += 1

    async def _serve_stream(
        self, connection: _Connection, request_id, spec, top
    ) -> None:
        frames: asyncio.Queue = asyncio.Queue()
        abandon = threading.Event()
        loop = self._loop

        def emit(item) -> None:
            try:
                loop.call_soon_threadsafe(frames.put_nowait, item)
            except RuntimeError:  # loop already closed during shutdown
                pass

        def pump() -> None:
            """Iterate the service stream on a worker thread.

            Closing the iterator (normal end, abandon, or error) cancels
            the query at its next iteration boundary via the service's
            streaming contract.
            """
            try:
                iterator = self.service.stream(spec)
                try:
                    for snapshot in iterator:
                        if abandon.is_set():
                            break
                        emit(("frame", protocol.render_snapshot(snapshot, top)))
                finally:
                    iterator.close()
                emit(("done", None))
            except BaseException as error:
                emit(("error", error))

        thread = threading.Thread(
            target=pump, name="ppv-server-stream", daemon=True
        )
        thread.start()
        sent = 0
        try:
            while True:
                kind, payload = await frames.get()
                if kind == "frame":
                    await self._send(
                        connection, protocol.frame_response(request_id, payload)
                    )
                    sent += 1
                    self.counters.frames_total += 1
                elif kind == "done":
                    await self._send(
                        connection,
                        protocol.ok_response(
                            request_id, done=True, frames=sent
                        ),
                    )
                    self.counters.responses_total += 1
                    return
                else:  # error
                    if isinstance(payload, ShardUnavailableError):
                        code = E_SHARD_UNAVAILABLE
                    elif isinstance(payload, UnsupportedFamilyError):
                        code = E_UNSUPPORTED_FAMILY
                    elif isinstance(payload, (ValueError, TypeError)):
                        code = E_INVALID
                    else:
                        code = E_INTERNAL
                    self.counters.count_error(code)
                    await self._send(
                        connection,
                        protocol.error_response(request_id, code, str(payload)),
                    )
                    return
        finally:
            # Mid-stream disconnect (send raised) or task cancellation:
            # tell the pump to stop so the engine abandons the query at
            # the next iteration boundary instead of streaming into the
            # void.
            abandon.set()

    async def _swap_index(
        self, connection: _Connection, request_id, request: dict
    ) -> None:
        path = request.get("path")
        if not isinstance(path, str) or not path:
            self.counters.count_error(E_INVALID)
            await self._send(
                connection,
                protocol.error_response(
                    request_id, E_INVALID, 'swap_index needs a "path"'
                ),
            )
            return
        # Hold new admissions (they queue behind the gate — accepted,
        # never dropped), drain what was admitted, swap, resume.  The
        # lock serialises concurrent swap requests.
        async with self._swap_lock:
            await self._swap_index_locked(connection, request_id, path)

    async def _swap_index_locked(
        self, connection: _Connection, request_id, path: str
    ) -> None:
        self._gate.clear()
        try:
            # The service routes: engines with a ``replace_from_path``
            # hook (the shard router, which rolls the swap across every
            # shard) reopen from the path; the rest load the .fppv and
            # go through update_index as before.
            await asyncio.to_thread(self.service.swap_path, path)
        except FileNotFoundError:
            self.counters.count_error(E_INVALID)
            await self._send(
                connection,
                protocol.error_response(
                    request_id, E_INVALID, f"no index at {path!r}"
                ),
            )
            return
        except ShardUnavailableError as error:
            self.counters.count_error(E_SHARD_UNAVAILABLE)
            await self._send(
                connection,
                protocol.error_response(
                    request_id, E_SHARD_UNAVAILABLE, str(error)
                ),
            )
            return
        except (NotImplementedError, ValueError) as error:
            self.counters.count_error(E_INVALID)
            await self._send(
                connection,
                protocol.error_response(request_id, E_INVALID, str(error)),
            )
            return
        finally:
            self._gate.set()
        self.counters.swaps_total += 1
        await self._send(
            connection,
            protocol.ok_response(request_id, {"swapped": True, "path": path}),
        )
        self.counters.responses_total += 1

    def _stats_payload(self) -> dict:
        service_stats = self.service.stats()
        payload = {
            "server": self.counters.as_dict(),
            "service": {
                "submitted": service_stats.submitted,
                "batches": service_stats.batches,
                "largest_batch": service_stats.largest_batch,
                "cache_hits": service_stats.cache_hits,
                "cache_misses": service_stats.cache_misses,
                "cache_entries": service_stats.cache_entries,
                "queue_depth": service_stats.queue_depth,
                "in_flight": service_stats.in_flight,
                "latency": service_stats.latency,
                "families": service_stats.families,
            },
            "worker": {"index": self.worker_index, "pid": os.getpid()},
            "backend": getattr(self.service.engine, "backend", None),
            # Capability advertisement: the query families this
            # worker's engine can answer.
            "families": list(supported_families(self.service.engine)),
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "version": _package_version(),
            "pid": os.getpid(),
        }
        if self.obs is not None:
            payload["metrics"] = self.obs.registry.snapshot()
            if self.obs.slow_log is not None:
                payload["slow_queries"] = self.obs.slow_log.entries(
                    tracer=self.obs.tracer
                )
        # A shard router aggregates its shards' stats (merged latency,
        # per-shard balance) into one extra section.
        shard_stats = getattr(self.service.engine, "shard_stats", None)
        if shard_stats is not None:
            try:
                payload["shards"] = shard_stats()
            except ShardUnavailableError as error:
                payload["shards"] = {"error": str(error)}
        return payload

    # ------------------------------------------------------------------ #
    # Test/benchmark convenience

    def background(self) -> "_BackgroundServer":
        """Run this server on a daemon thread::

            with PPVServer(service).background() as (host, port):
                client = PPVClient(host, port)

        The context manager shuts the server down gracefully on exit.
        """
        return _BackgroundServer(self)


class _BackgroundServer:
    """Context manager running a :class:`PPVServer` on its own thread."""

    def __init__(self, server: PPVServer) -> None:
        self.server = server
        self._thread: threading.Thread | None = None
        self._failure: BaseException | None = None

    def __enter__(self) -> tuple:
        def run() -> None:
            try:
                asyncio.run(self.server.serve())
            except BaseException as error:  # surfaced on __exit__
                self._failure = error

        self._thread = threading.Thread(
            target=run, name="ppv-server", daemon=True
        )
        self._thread.start()
        deadline = time.monotonic() + 10.0
        while not self.server._started.is_set():
            if self._failure is not None:
                raise self._failure
            if time.monotonic() > deadline:
                raise TimeoutError("server did not start listening")
            time.sleep(0.005)
        return self.server.address

    def __exit__(self, *exc_info) -> None:
        self.server.request_shutdown()
        self._thread.join(timeout=30.0)
        if self._thread.is_alive():
            raise TimeoutError("server did not shut down")
        if self._failure is not None:
            raise self._failure


def serve_stdio(service, source, sink, default_top: int = 10, stats_sink=None):
    """The single-process JSONL request loop (``repro serve --stdio``).

    Reads requests from the ``source`` file object, admits them as they
    are read (coalescing through the service's scheduler), and writes
    JSONL responses **in request order** to ``sink`` at every blank line
    and at end of input.  The response shape is the flat pre-TCP one
    (``{"id": ..., "nodes": ..., ...}`` / ``{"id": ..., "error": ...}``)
    so existing request files and consumers keep working.

    Returns the number of requests served.
    """
    pending: list[tuple] = []

    def emit_pending() -> None:
        if not pending:
            return
        service.flush()
        for request_id, spec, handle, top in pending:
            if spec is None:  # parse/validation failure
                print(
                    json.dumps({"id": request_id, "error": handle}), file=sink
                )
                continue
            try:
                result = handle.result()
            except Exception as error:
                print(
                    json.dumps({"id": request_id, "error": str(error)}),
                    file=sink,
                )
                continue
            print(
                json.dumps(
                    {
                        "id": request_id,
                        **protocol.render_result(spec, result, top),
                    }
                ),
                file=sink,
            )
        pending.clear()

    served = 0
    for line in source:
        line = line.strip()
        if not line:
            emit_pending()
            continue
        served += 1
        request_id = None
        try:
            request = protocol.parse_request(line)
            request_id = request.get("id")
            protocol.check_version(request)
            verb = protocol.request_verb(request)
            if verb != "query":
                # Control/streaming verbs need the bidirectional TCP
                # transport; say so instead of failing on a missing
                # "node" field.
                raise protocol.ProtocolError(
                    protocol.E_INVALID,
                    f"verb {verb!r} is only available over --tcp",
                )
            spec = protocol.spec_from_request(request)
            top = protocol.top_from_request(request, default_top)
            pending.append((request_id, spec, service.submit(spec), top))
        except Exception as error:
            pending.append((request_id, None, str(error), None))
    emit_pending()
    if stats_sink is not None:
        stats = service.stats()
        print(
            f"served {stats.submitted} requests in {stats.batches} "
            f"batches (largest {stats.largest_batch}); cache "
            f"{stats.cache_hits} hits / {stats.cache_misses} misses",
            file=stats_sink,
        )
    return served
