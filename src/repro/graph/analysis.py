"""Structural graph statistics.

Used by the CLI's ``info`` command, by DESIGN.md's generator-fidelity
claims (degree skew, reciprocity, effective diameter), and by
auto-configuration heuristics that the paper suggests correlating with
"graph properties like density and diameter" (Sect. 7).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph."""

    num_nodes: int
    num_edges: int
    is_weighted: bool
    num_dangling: int
    min_out_degree: int
    max_out_degree: int
    mean_out_degree: float
    max_in_degree: int
    reciprocity: float
    effective_diameter: float

    def as_dict(self) -> dict[str, object]:
        """Ordered name -> value mapping for tabular display."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "weighted": self.is_weighted,
            "dangling nodes": self.num_dangling,
            "out-degree (min/mean/max)": (
                f"{self.min_out_degree}/{self.mean_out_degree:.2f}/"
                f"{self.max_out_degree}"
            ),
            "max in-degree": self.max_in_degree,
            "reciprocity": round(self.reciprocity, 4),
            "effective diameter (est.)": round(self.effective_diameter, 2),
        }


def reciprocity(graph: DiGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    if graph.num_edges == 0:
        return 0.0
    edge_set = set(graph.edges())
    mutual = sum(1 for src, dst in edge_set if (dst, src) in edge_set)
    return mutual / len(edge_set)


def bfs_eccentricity(graph: DiGraph, source: int) -> int:
    """Largest finite BFS distance from ``source``."""
    distance = -np.ones(graph.num_nodes, dtype=np.int64)
    distance[source] = 0
    queue: deque[int] = deque([source])
    furthest = 0
    while queue:
        node = queue.popleft()
        for neighbor in graph.out_neighbors(node):
            neighbor = int(neighbor)
            if distance[neighbor] < 0:
                distance[neighbor] = distance[node] + 1
                furthest = max(furthest, int(distance[neighbor]))
                queue.append(neighbor)
    return furthest


def effective_diameter(graph: DiGraph, samples: int = 16, seed: int = 0) -> float:
    """Mean BFS eccentricity over sampled sources — a cheap diameter proxy.

    Exact diameters need all-pairs BFS; sampled eccentricities are the
    standard estimate and sufficient for the density/diameter heuristics.
    """
    if graph.num_nodes == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    sources = rng.choice(
        graph.num_nodes, size=min(samples, graph.num_nodes), replace=False
    )
    return float(np.mean([bfs_eccentricity(graph, int(s)) for s in sources]))


def graph_stats(graph: DiGraph, diameter_samples: int = 16, seed: int = 0) -> GraphStats:
    """Compute the full :class:`GraphStats` bundle."""
    out_degrees = graph.out_degrees
    in_degrees = graph.in_degrees()
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        is_weighted=graph.is_weighted,
        num_dangling=int((out_degrees == 0).sum()) if graph.num_nodes else 0,
        min_out_degree=int(out_degrees.min()) if graph.num_nodes else 0,
        max_out_degree=int(out_degrees.max()) if graph.num_nodes else 0,
        mean_out_degree=float(out_degrees.mean()) if graph.num_nodes else 0.0,
        max_in_degree=int(in_degrees.max()) if graph.num_nodes else 0,
        reciprocity=reciprocity(graph),
        effective_diameter=effective_diameter(
            graph, samples=diameter_samples, seed=seed
        ),
    )
