"""Unit tests for the experiment harness (workloads, configs, runner, report)."""

import numpy as np
import pytest

from repro.core.exact import exact_ppv
from repro.experiments import (
    CONFIGS,
    Config,
    Table,
    dblp_graph,
    format_table,
    livejournal_graph,
    make_workload,
    run_fastppv,
    run_hubrank,
    run_montecarlo,
)


class TestDatasets:
    def test_dblp_scales(self):
        small = dblp_graph(scale=0.05)
        large = dblp_graph(scale=0.1)
        assert small.graph.num_nodes < large.graph.num_nodes

    def test_livejournal_scales(self):
        small = livejournal_graph(scale=0.05)
        large = livejournal_graph(scale=0.1)
        assert small.num_nodes < large.num_nodes

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            dblp_graph(scale=0.0)
        with pytest.raises(ValueError):
            livejournal_graph(scale=-1.0)

    def test_deterministic(self):
        assert livejournal_graph(scale=0.05) == livejournal_graph(scale=0.05)


class TestWorkload:
    def test_exact_rows_match(self, small_social):
        workload = make_workload(small_social, num_queries=5, seed=1)
        assert len(workload) == 5
        for i, (query, exact) in enumerate(workload):
            np.testing.assert_allclose(
                exact, exact_ppv(small_social, query), atol=1e-9
            )
            assert query == workload.queries[i]

    def test_queries_unique_sorted(self, small_social):
        workload = make_workload(small_social, num_queries=10, seed=2)
        assert np.all(np.diff(workload.queries) > 0)

    def test_capped_at_num_nodes(self):
        from repro.graph.generators import cycle_graph

        workload = make_workload(cycle_graph(4), num_queries=100)
        assert len(workload) == 4

    def test_invalid_count(self, small_social):
        with pytest.raises(ValueError):
            make_workload(small_social, num_queries=0)


class TestConfigs:
    def test_four_configs(self):
        assert set(CONFIGS) == {"I", "II", "III", "IV"}

    def test_datasets_valid(self):
        for config in CONFIGS.values():
            assert config.dataset in ("dblp", "livejournal")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            Config(
                name="X",
                dataset="twitter",
                num_hubs=10,
                hubrank_push=1e-3,
                montecarlo_samples=100,
                fastppv_eta=1,
            )


class TestRunners:
    @pytest.fixture(scope="class")
    def workload(self, small_social):
        return make_workload(small_social, num_queries=6, seed=0)

    def test_run_fastppv(self, small_social, workload):
        outcome = run_fastppv(small_social, workload, num_hubs=30, eta=2)
        assert outcome.method == "FastPPV"
        assert 0.0 <= outcome.accuracy.precision <= 1.0
        assert outcome.online_ms_per_query > 0
        assert outcome.offline_seconds > 0
        assert outcome.online_work_per_query > 0

    def test_run_fastppv_with_prebuilt_index(
        self, small_social, workload, small_social_index
    ):
        outcome = run_fastppv(
            small_social, workload, num_hubs=0, index=small_social_index
        )
        assert outcome.offline_seconds == small_social_index.stats.build_seconds

    def test_run_hubrank(self, small_social, workload):
        outcome = run_hubrank(
            small_social, workload, num_hubs=20, push_threshold=1e-3
        )
        assert outcome.method == "HubRankP"
        assert outcome.accuracy.precision > 0.3

    def test_run_montecarlo(self, small_social, workload):
        outcome = run_montecarlo(
            small_social, workload, num_hubs=20, samples_per_query=400
        )
        assert outcome.method == "MonteCarlo"
        assert outcome.accuracy.precision > 0.3
        assert outcome.online_work_per_query > 0

    def test_outcome_row_shape(self, small_social, workload):
        outcome = run_fastppv(small_social, workload, num_hubs=10, eta=1)
        assert len(outcome.row()) == 8
        assert outcome.row()[0] == "FastPPV"


class TestTable:
    def test_add_row_validates_width(self):
        table = Table(title="t", headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_contains_everything(self):
        table = Table(title="My Table", headers=["name", "value"])
        table.add_row("x", 1.5)
        table.add_row("y", 0.25)
        table.notes.append("hello")
        text = table.render()
        assert "My Table" in text
        assert "name" in text and "value" in text
        assert "1.50" in text and "0.2500" in text
        assert "note: hello" in text

    def test_column_accessor(self):
        table = Table(title="t", headers=["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_format_table_one_shot(self):
        text = format_table("T", ["x"], [[1], [2]])
        assert "T" in text and "x" in text

    def test_float_formatting(self):
        table = Table(title="t", headers=["v"])
        table.add_row(0.0)
        table.add_row(12345.0)
        table.add_row(2.5)
        text = table.render()
        assert "0" in text
        assert "12,345" in text
        assert "2.50" in text

    def test_empty_table_renders(self):
        assert "t" in Table(title="t", headers=["a"]).render()
