"""Scheduled approximation of discounted hitting probability
(paper's future work #3).

"It is promising to apply the same principle of partitioning and
prioritizing tours to other random walk-based algorithms, such as the
hitting and commute time measures." (Sect. 7.)

We demonstrate on the *discounted hitting probability*

    f_p(q) = E[ beta^tau ],   tau = first time a walk from q reaches p,

a standard proximity measure (Sarkar & Moore use its truncated sibling).
It is a sum over *first-passage* tours — tours from ``q`` whose only
visit to ``p`` is their last node — weighted ``beta^length / prod
out-degrees``.  Exactly like inverse P-distance, the tour set partitions
by hub length, each partition splices from hub-rooted *prime hitting
pushes* (hub-interior-free, ``p``-avoiding segments), and earlier
partitions dominate: the uncovered mass after level ``k`` is at most
``beta^(k+1)`` (each interior hub costs at least one edge).

Because first-passage segments must avoid the target, hub segments are
target-specific and cannot come from the global PPV index; the engine
caches them per query instead.  The point of the module is the
*principle transfer* — incremental anytime refinement with a computable
remaining-mass gauge — not index reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.digraph import DiGraph

DEFAULT_BETA = 0.85
"""Discount per step; matches ``1 - alpha`` of the PPV experiments."""


@dataclass
class HittingEstimate:
    """Anytime estimate of the discounted hitting probability.

    Attributes
    ----------
    value:
        Lower bound on ``f_p(q)``, tightening with each iteration.
    remaining_mass:
        Discounted mass still travelling (neither absorbed at the target
        nor dropped): ``value + remaining_mass`` upper-bounds the exact
        answer, so the bracket width is known at query time — the
        accuracy-aware property carried over from PPV.
    iterations:
        Hub-length levels processed.
    history:
        ``value`` after each level.
    """

    value: float
    remaining_mass: float
    iterations: int
    history: list[float] = field(default_factory=list)


def exact_hitting(
    graph: DiGraph,
    query: int,
    target: int,
    beta: float = DEFAULT_BETA,
    tol: float = 1e-12,
    max_iter: int = 1000,
) -> float:
    """Exact ``f_p(q)`` by value iteration on the absorbing chain.

    ``f_p(p) = 1``; for ``q != p``:
    ``f_p(q) = beta * mean over out-neighbours v of f_p(v)`` (dangling
    non-target nodes contribute 0 — the walk dies).
    """
    if not 0.0 < beta < 1.0:
        raise ValueError("beta must lie in (0, 1)")
    n = graph.num_nodes
    if not (0 <= query < n and 0 <= target < n):
        raise ValueError("query/target out of range")
    values = np.zeros(n)
    values[target] = 1.0
    indptr, indices = graph.indptr, graph.indices
    out_degrees = graph.out_degrees
    edge_probabilities = graph.edge_probabilities
    for _ in range(max_iter):
        spread = np.zeros(n)
        for node in range(n):
            if node == target or out_degrees[node] == 0:
                continue
            start, end = indptr[node], indptr[node + 1]
            neighbors = indices[start:end]
            spread[node] = beta * float(
                (values[neighbors] * edge_probabilities[start:end]).sum()
            )
        spread[target] = 1.0
        delta = np.abs(spread - values).max()
        values = spread
        if delta < tol:
            break
    return float(values[query])


def _prime_hitting_push(
    graph: DiGraph,
    source: int,
    target: int,
    hub_mask: np.ndarray,
    beta: float,
    epsilon: float,
) -> tuple[float, dict[int, float], float]:
    """Hub-interior-free, target-avoiding discounted push from ``source``.

    Returns ``(absorbed_at_target, border_masses, dropped_mass)`` where
    ``border_masses`` maps hub -> discounted arrival mass (for splicing)
    and ``dropped_mass`` is what the epsilon cut-off discarded (needed
    for the upper bound).
    """
    indptr, indices = graph.indptr, graph.indices
    out_degrees = graph.out_degrees
    edge_probabilities = graph.edge_probabilities
    absorbed = 0.0
    dropped = 0.0
    border: dict[int, float] = {}
    residual: dict[int, float] = {source: 1.0}
    first = True
    # beta^k bounds total residual after k levels, so the loop terminates.
    max_rounds = int(np.ceil(np.log(epsilon) / np.log(beta))) + 4
    for _ in range(max_rounds):
        if not residual:
            break
        next_residual: dict[int, float] = {}
        for node, mass in residual.items():
            if node == target:
                absorbed += mass
                continue
            if hub_mask[node] and not (first and node == source):
                border[node] = border.get(node, 0.0) + mass
                continue
            if mass < epsilon:
                dropped += mass
                continue
            degree = int(out_degrees[node])
            if degree == 0:
                dropped += mass  # walk dies; never hits the target
                continue
            start, end = indptr[node], indptr[node + 1]
            for neighbor, probability in zip(
                indices[start:end], edge_probabilities[start:end]
            ):
                key = int(neighbor)
                next_residual[key] = (
                    next_residual.get(key, 0.0) + beta * mass * probability
                )
        residual = next_residual
        first = False
    for mass in residual.values():
        dropped += mass
    return absorbed, border, dropped


def scheduled_hitting(
    graph: DiGraph,
    query: int,
    target: int,
    hub_mask: np.ndarray,
    beta: float = DEFAULT_BETA,
    max_levels: int = 16,
    epsilon: float = 1e-9,
    delta: float = 0.0,
    push_cache: dict[int, tuple[float, dict[int, float], float]] | None = None,
) -> HittingEstimate:
    """Discounted hitting probability by hub-length-scheduled splicing.

    Level 0 covers first-passage tours with no interior hubs; level ``i``
    splices hub-rooted prime hitting pushes (cached per call) onto the
    level ``i-1`` frontier.  Stops when the frontier dies, ``max_levels``
    is reached, or every frontier mass falls below ``delta``.

    ``push_cache`` shares prime hitting pushes across calls that agree on
    ``(target, beta, epsilon)`` and the graph/hub_mask — entries are pure
    functions of those, so sharing is result-preserving (serving batches
    same-target queries through one cache).
    """
    if hub_mask.shape != (graph.num_nodes,):
        raise ValueError("hub_mask must have one entry per node")
    cache = push_cache if push_cache is not None else {}

    def prime_of(node: int) -> tuple[float, dict[int, float], float]:
        if node not in cache:
            cache[node] = _prime_hitting_push(
                graph, node, target, hub_mask, beta, epsilon
            )
        return cache[node]

    absorbed, frontier, dropped = _prime_hitting_push(
        graph, query, target, hub_mask, beta, epsilon
    )
    value = absorbed
    history = [value]
    level = 0
    while frontier and level < max_levels:
        level += 1
        next_frontier: dict[int, float] = {}
        for hub, mass in frontier.items():
            if mass <= delta:
                dropped += mass
                continue
            hub_absorbed, hub_border, hub_dropped = prime_of(hub)
            value += mass * hub_absorbed
            dropped += mass * hub_dropped
            for border_hub, border_mass in hub_border.items():
                next_frontier[border_hub] = (
                    next_frontier.get(border_hub, 0.0) + mass * border_mass
                )
        frontier = next_frontier
        history.append(value)
    remaining = sum(frontier.values()) + dropped
    return HittingEstimate(
        value=value,
        remaining_mass=remaining,
        iterations=level,
        history=history,
    )


def scheduled_commute(
    graph: DiGraph,
    a: int,
    b: int,
    hub_mask: np.ndarray,
    beta: float = DEFAULT_BETA,
    max_levels: int = 16,
    epsilon: float = 1e-9,
) -> HittingEstimate:
    """Discounted commute probability ``E[beta^(tau_ab + tau_ba)]``.

    Sect. 7 names "hitting and commute time" as targets for the
    partition-and-prioritise principle.  By independence of the two legs
    (strong Markov property at the first hit of ``b``), the discounted
    commute factorises into the product of the two hitting estimates;
    the lower/upper brackets multiply accordingly.
    """
    forward = scheduled_hitting(
        graph, a, b, hub_mask, beta=beta, max_levels=max_levels, epsilon=epsilon
    )
    backward = scheduled_hitting(
        graph, b, a, hub_mask, beta=beta, max_levels=max_levels, epsilon=epsilon
    )
    value = forward.value * backward.value
    upper = (forward.value + forward.remaining_mass) * (
        backward.value + backward.remaining_mass
    )
    depth = max(len(forward.history), len(backward.history))

    def level_value(history: list, level: int) -> float:
        return history[min(level, len(history) - 1)]

    history = [
        level_value(forward.history, level) * level_value(backward.history, level)
        for level in range(depth)
    ]
    return HittingEstimate(
        value=value,
        remaining_mass=upper - value,
        iterations=max(forward.iterations, backward.iterations),
        history=history,
    )
