"""Exact PPV computation — the ground truth every approximation is scored
against (the "naive iterative method" of Sect. 2).

Semantics follow the tour model of Eq. 1-2 exactly: the PPV is

    r_q = alpha * sum_{k>=0} (1 - alpha)^k (P^T)^k e_q

where ``P`` is the out-degree-normalised transition matrix.  A walk that
reaches a dangling node (out-degree 0) simply ends — no tour continues from
it — so on graphs with dangling nodes ``sum(r_q) < 1``; on dangling-free
graphs (all graphs in the paper's evaluation, and all generator outputs
here) ``r_q`` is a probability distribution and the paper's query-time
error identity (Eq. 6) is exact.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.graph.digraph import DiGraph
from repro.graph.pagerank import DEFAULT_ALPHA


def _ppv_operator(graph: DiGraph) -> sparse.csr_matrix:
    """``P^T`` as CSR (column-stochastic up to dangling nodes)."""
    return graph.transition_matrix().T.tocsr()


def exact_ppv(
    graph: DiGraph,
    query: int,
    alpha: float = DEFAULT_ALPHA,
    tol: float = 1e-12,
    max_iter: int = 500,
) -> np.ndarray:
    """Exact PPV w.r.t. a single query node by power iteration.

    Parameters
    ----------
    graph:
        The graph.
    query:
        Query node id.
    alpha:
        Teleport probability.
    tol:
        Stop when the L1 norm of the next Neumann-series term falls below
        ``tol`` (the remaining tail is then at most ``tol / alpha``).
    max_iter:
        Hard iteration cap.

    Returns
    -------
    numpy.ndarray
        Score vector of length ``n``.
    """
    if not 0 <= query < graph.num_nodes:
        raise ValueError(f"query node {query} out of range")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    operator = _ppv_operator(graph)
    term = np.zeros(graph.num_nodes)
    term[query] = alpha
    scores = term.copy()
    for _ in range(max_iter):
        term = (1.0 - alpha) * (operator @ term)
        scores += term
        if term.sum() < tol:
            break
    return scores


def exact_ppv_matrix(
    graph: DiGraph,
    queries: np.ndarray | list[int],
    alpha: float = DEFAULT_ALPHA,
    tol: float = 1e-12,
    max_iter: int = 500,
) -> np.ndarray:
    """Exact PPVs for a batch of query nodes.

    Vectorised Neumann summation over a block of unit vectors — one sparse
    mat-mat per iteration, much faster than per-query loops when preparing
    workload ground truth.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(len(queries), n)``; row ``i`` is the PPV of
        ``queries[i]``.
    """
    queries = np.asarray(queries, dtype=np.int64)
    if queries.size and (queries.min() < 0 or queries.max() >= graph.num_nodes):
        raise ValueError("query node out of range")
    operator = _ppv_operator(graph)
    n = graph.num_nodes
    term = np.zeros((n, queries.size))
    term[queries, np.arange(queries.size)] = alpha
    scores = term.copy()
    for _ in range(max_iter):
        term = (1.0 - alpha) * (operator @ term)
        scores += term
        if term.sum() < tol * max(queries.size, 1):
            break
    return scores.T.copy()


def exact_ppv_dense_solve(
    graph: DiGraph, query: int, alpha: float = DEFAULT_ALPHA
) -> np.ndarray:
    """Exact PPV by a direct linear solve ``(I - (1-alpha) P^T) r = alpha e_q``.

    Exact to machine precision; dense, so only for small graphs (tests use
    it as an independent oracle against :func:`exact_ppv`).
    """
    n = graph.num_nodes
    matrix = np.eye(n) - (1.0 - alpha) * _ppv_operator(graph).toarray()
    rhs = np.zeros(n)
    rhs[query] = alpha
    return np.linalg.solve(matrix, rhs)
