"""Uniform method drivers: build offline, run the workload, score it.

All three methods (FastPPV and the two baselines) are reduced to a common
:class:`MethodOutcome` so the figure drivers can tabulate them side by
side, the way the paper's Figs. 6-7 do.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.hubrank import HubRankP
from repro.baselines.montecarlo import MonteCarlo
from repro.core.hubs import HubPolicy, select_hubs
from repro.core.index import PPVIndex, build_index
from repro.core.query import DEFAULT_DELTA, FastPPV, StopAfterIterations
from repro.experiments.workloads import Workload
from repro.serving import PPVService, QuerySpec
from repro.graph.digraph import DiGraph
from repro.metrics.suite import AccuracyReport, evaluate_accuracy


@dataclass
class MethodOutcome:
    """One method's full offline + online accounting over a workload."""

    method: str
    accuracy: AccuracyReport
    online_ms_per_query: float
    offline_seconds: float
    offline_megabytes: float
    online_work_per_query: float = 0.0
    """Mean scale-independent work units per query (edges traversed plus
    index entries touched); see ``QueryResult.work_units``."""

    def row(self) -> list[object]:
        """Tabular form: method, four metrics, online ms, offline s/MB."""
        return [
            self.method,
            self.accuracy.kendall,
            self.accuracy.precision,
            self.accuracy.rag,
            self.accuracy.l1_similarity,
            self.online_ms_per_query,
            self.offline_seconds,
            self.offline_megabytes,
        ]


def _score_workload(
    workload: Workload, run_query, run_workload=None
) -> tuple[AccuracyReport, float, float]:
    """Run the workload and score it; return (accuracy, ms/query,
    work/query).

    ``run_workload`` (a callable taking the whole query array and
    returning per-query results) takes precedence over the per-query
    ``run_query`` — FastPPV passes its batched ``query_many`` here so
    workload timings reflect the batch execution path.
    """
    reports = []
    started = time.perf_counter()
    if run_workload is not None:
        results = run_workload(workload.queries)
    else:
        results = [run_query(int(query)) for query in workload.queries]
    elapsed = time.perf_counter() - started
    for exact, result in zip(workload.exact, results):
        reports.append(evaluate_accuracy(exact, result.scores))
    mean_work = float(np.mean([r.work_units for r in results]))
    return (
        AccuracyReport.average(reports),
        elapsed / len(workload) * 1000.0,
        mean_work,
    )


DEFAULT_ONLINE_EPSILON = 1e-6
"""Query-time prime-push cut-off used by the experiment drivers (coarser
than the offline 1e-8: negligible accuracy impact, ~3x lower latency)."""


def run_fastppv(
    graph: DiGraph,
    workload: Workload,
    num_hubs: int,
    eta: int = 2,
    delta: float = DEFAULT_DELTA,
    policy: HubPolicy = HubPolicy.EXPECTED_UTILITY,
    pagerank: np.ndarray | None = None,
    index: PPVIndex | None = None,
    online_epsilon: float = DEFAULT_ONLINE_EPSILON,
    workers: int = 1,
) -> MethodOutcome:
    """Build (or reuse) a FastPPV index and score the workload.

    Passing a prebuilt ``index`` skips the offline phase (its recorded
    stats are reported instead) — used by the sweeps that vary only online
    parameters.  The online phase runs through the serving façade
    (:class:`~repro.serving.PPVService` over the memory backend, which
    drains the workload as one coalesced batch through the sparse-matrix
    engine); ``workers`` parallelises the offline build.
    """
    if index is None:
        hubs = select_hubs(
            graph, num_hubs, policy=policy, alpha=workload.alpha, pagerank=pagerank
        )
        index = build_index(graph, hubs, alpha=workload.alpha, workers=workers)
    engine = FastPPV(graph, index, delta=delta, online_epsilon=online_epsilon)
    stop = StopAfterIterations(eta)
    with PPVService.open(engine) as service:
        # Materialise the index's matrix lowering outside the timed
        # online region: it is a one-off offline-type cost (and is
        # cached on the index), not per-query work.
        service.warm()
        accuracy, online_ms, work = _score_workload(
            workload,
            lambda q: engine.query(q, stop=stop),
            run_workload=lambda qs: service.query_many(
                [QuerySpec(int(q), stop=stop) for q in qs]
            ),
        )
    return MethodOutcome(
        method="FastPPV",
        accuracy=accuracy,
        online_ms_per_query=online_ms,
        offline_seconds=index.stats.build_seconds,
        offline_megabytes=index.stats.megabytes,
        online_work_per_query=work,
    )


def run_hubrank(
    graph: DiGraph,
    workload: Workload,
    num_hubs: int,
    push_threshold: float,
    pagerank: np.ndarray | None = None,
) -> MethodOutcome:
    """Build HubRankP and score the workload."""
    engine = HubRankP(
        graph,
        num_hubs=num_hubs,
        push_threshold=push_threshold,
        alpha=workload.alpha,
        pagerank=pagerank,
    )
    accuracy, online_ms, work = _score_workload(workload, engine.query)
    return MethodOutcome(
        method="HubRankP",
        accuracy=accuracy,
        online_ms_per_query=online_ms,
        offline_seconds=engine.offline_stats.build_seconds,
        offline_megabytes=engine.offline_stats.megabytes,
        online_work_per_query=work,
    )


def run_montecarlo(
    graph: DiGraph,
    workload: Workload,
    num_hubs: int,
    samples_per_query: int,
    pagerank: np.ndarray | None = None,
    seed: int = 0,
) -> MethodOutcome:
    """Build MonteCarlo fingerprints and score the workload."""
    engine = MonteCarlo(
        graph,
        num_hubs=num_hubs,
        samples_per_query=samples_per_query,
        alpha=workload.alpha,
        seed=seed,
        pagerank=pagerank,
    )
    accuracy, online_ms, work = _score_workload(workload, engine.query)
    return MethodOutcome(
        method="MonteCarlo",
        accuracy=accuracy,
        online_ms_per_query=online_ms,
        offline_seconds=engine.offline_stats.build_seconds,
        offline_megabytes=engine.offline_stats.megabytes,
        online_work_per_query=work,
    )
