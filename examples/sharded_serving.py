"""Hub-sharded scale-out serving: the router over a partitioned index.

One FastPPV index is split across shard processes (whole PPR clusters
— hence their hubs — per shard, LPT-balanced) and served through a
:class:`~repro.sharding.ShardRouter`: shard pools that only answer
``fetch_hubs`` / ``fetch_cluster``, and a router front-end where the
real disk kernels run, speaking the ordinary JSONL wire protocol.
Results are **bitwise equal** to an unsharded disk deployment of the
same index — certified top-k included — because the identical kernels
see bit-identical data in the identical order.

Shown here:

1. the offline partitioner (``partition_index`` == ``repro
   shard-index``) and its ``shard_map.json`` manifest,
2. a 2-shard router serving plain, multi-source and certified top-k
   queries, checked bitwise against the unsharded deployment,
3. aggregated fleet stats: per-shard fetch counters, merged latency
   histogram, fetch balance,
4. a rolling hot swap across the whole fleet under the same router.

The CLI equivalent:

    repro shard-index graph.txt index.fppv part/ --shards 2
    repro serve graph.txt index.fppv --tcp 127.0.0.1:0 --shard-map part/

Run with:  python examples/sharded_serving.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    PPVService,
    QuerySpec,
    StopAfterIterations,
    build_index,
    select_hubs,
    social_graph,
)
from repro.server import PPVClient, protocol
from repro.sharding import ShardRouter, load_shard_map, partition_index
from repro.storage import DiskGraphStore, cluster_graph, save_index


def main() -> None:
    graph = social_graph(num_nodes=1200, seed=9)
    hubs = select_hubs(graph, num_hubs=120)
    index = build_index(graph, hubs, clip=0.0, epsilon=1e-6)
    assignment = cluster_graph(graph, 8, seed=1)

    rng = np.random.default_rng(3)
    nodes = [int(n) for n in rng.choice(graph.num_nodes, 12, replace=False)]

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        # 1. Partition offline: per-shard DiskPPVStore/DiskGraphStore
        #    directories plus a shard_map.json manifest.
        part = root / "part2"
        partition_index(graph, index, 2, part, assignment=assignment)
        manifest = load_shard_map(part)
        for entry in manifest["shards"]:
            print(f"shard {entry['shard']}: {len(entry['hubs'])} hubs, "
                  f"{entry['nodes']} nodes in clusters {entry['clusters']}")

        # The unsharded reference deployment: same index, same cluster
        # assignment, so the kernels see identical segmentation.
        index_path = root / "index.fppv"
        save_index(index, index_path)
        store_dir = root / "clusters"
        DiskGraphStore(graph, assignment, store_dir)

        specs = [QuerySpec(n, stop=StopAfterIterations(2)) for n in nodes[:4]]
        specs.append(QuerySpec((nodes[4], nodes[5]), weights=(2.0, 1.0)))
        specs.append(QuerySpec(nodes[6], top_k=5))
        with PPVService.open(
            str(index_path), backend="disk",
            graph_store=DiskGraphStore.open(store_dir),
            delta=0.0, cache_size=0,
        ) as reference:
            expected = [
                protocol.render_result(spec, result, top=10)
                for spec, result in zip(
                    specs, reference.query_many(specs)
                )
            ]

        # 2. Serve the partition: shard pools + router front-end.
        with ShardRouter(part, delta=0.0, cache_size=0) as (host, port):
            print(f"router serving on {host}:{port} over "
                  f"{manifest['num_shards']} shards")
            with PPVClient(host, port) as client:
                got = [
                    client.query(nodes[k], eta=2, top=10) for k in range(4)
                ]
                got.append(
                    client.query(
                        [nodes[4], nodes[5]], weights=[2.0, 1.0],
                        eta=2, top=10,
                    )
                )
                topk_spec = specs[-1]
                got.append(
                    client.query(
                        nodes[6], top_k=5, budget=topk_spec.top_k_budget,
                        top=10,
                    )
                )
                assert got == expected  # dict equality == bitwise scores
                print("6 queries (plain, weighted multi-source, certified "
                      "top-k) bitwise equal to the unsharded deployment")

                # 3. Aggregated fleet stats through the stats verb.
                shards = client.stats()["shards"]
                for entry in shards["per_shard"]:
                    print(f"  shard {entry['shard']}: "
                          f"{entry['hub_fetches']} hub fetches, "
                          f"{entry['cluster_fetches']} cluster fetches, "
                          f"{entry['requests_total']} wire requests")
                print(f"  fetch balance {shards['fetch_balance']:.2f} "
                      f"(1.0 = perfect)")

                # 4. Rolling hot swap: a second partition of a richer
                #    index, rolled shard by shard under the gate.
                richer = build_index(
                    graph, select_hubs(graph, num_hubs=180),
                    clip=0.0, epsilon=1e-6,
                )
                part_b = root / "part2b"
                partition_index(
                    graph, richer, 2, part_b, assignment=assignment
                )
                client.swap_index(str(part_b))
                result = client.query(nodes[0], eta=2, top=3)
                print(f"swapped the whole fleet to a 180-hub partition; "
                      f"node {nodes[0]} now tops at "
                      f"{result['top'][0][0]}")


if __name__ == "__main__":
    main()
