"""Unit tests for offline precomputation (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.index import DEFAULT_CLIP, PPVIndex, build_index, clip_prime_ppv
from repro.core.prime import prime_ppv
from tests.conftest import ALPHA, FIG3_HUBS


class TestBuildIndex:
    def test_contains_all_hubs(self, fig1_graph):
        index = build_index(fig1_graph, FIG3_HUBS, alpha=ALPHA)
        assert index.num_hubs == 3
        for hub in FIG3_HUBS:
            assert hub in index
            assert index.is_hub(hub)
        assert index.hubs.tolist() == sorted(FIG3_HUBS)

    def test_entries_match_direct_prime_ppv(self, fig1_graph, fig1_hub_mask):
        index = build_index(
            fig1_graph, FIG3_HUBS, alpha=ALPHA, epsilon=1e-10, clip=0.0
        )
        for hub in FIG3_HUBS:
            direct = prime_ppv(
                fig1_graph, hub, fig1_hub_mask, alpha=ALPHA, epsilon=1e-10
            )
            entry = index.get(hub)
            np.testing.assert_allclose(entry.scores, direct.scores, atol=1e-15)
            np.testing.assert_array_equal(entry.nodes, direct.nodes)
            np.testing.assert_array_equal(entry.border_hubs, direct.border_hubs)

    def test_get_missing_hub_raises(self, fig1_graph):
        index = build_index(fig1_graph, FIG3_HUBS)
        with pytest.raises(KeyError):
            index.get(0)

    def test_duplicate_hubs_rejected(self, fig1_graph):
        with pytest.raises(ValueError, match="unique"):
            build_index(fig1_graph, [1, 1, 3])

    def test_out_of_range_hub_rejected(self, fig1_graph):
        with pytest.raises(ValueError):
            build_index(fig1_graph, [99])

    def test_clip_at_least_below_alpha(self, fig1_graph):
        with pytest.raises(ValueError, match="clip"):
            build_index(fig1_graph, FIG3_HUBS, alpha=0.15, clip=0.5)

    def test_empty_hub_set(self, fig1_graph):
        index = build_index(fig1_graph, [])
        assert index.num_hubs == 0
        assert index.hubs.size == 0

    def test_stats_populated(self, small_social):
        from repro.core.hubs import select_hubs

        hubs = select_hubs(small_social, 20)
        index = build_index(small_social, hubs)
        assert index.stats.num_hubs == 20
        assert index.stats.build_seconds > 0.0
        assert index.stats.stored_entries > 0
        assert index.stats.stored_bytes > 0
        assert index.stats.megabytes == pytest.approx(
            index.stats.stored_bytes / 1e6
        )


class TestClipping:
    def test_clip_drops_small_scores(self, fig1_graph, fig1_hub_mask):
        raw = prime_ppv(fig1_graph, 1, fig1_hub_mask, alpha=ALPHA)
        clipped = clip_prime_ppv(raw, 0.05)
        assert clipped.nodes.size <= raw.nodes.size
        assert np.all(clipped.scores >= 0.05)

    def test_clip_zero_is_identity(self, fig1_graph, fig1_hub_mask):
        raw = prime_ppv(fig1_graph, 1, fig1_hub_mask, alpha=ALPHA)
        assert clip_prime_ppv(raw, 0.0) is raw

    def test_clip_keeps_border_masses(self, fig1_graph, fig1_hub_mask):
        raw = prime_ppv(fig1_graph, 1, fig1_hub_mask, alpha=ALPHA)
        clipped = clip_prime_ppv(raw, 0.05)
        np.testing.assert_array_equal(clipped.border_hubs, raw.border_hubs)
        np.testing.assert_array_equal(clipped.border_masses, raw.border_masses)

    def test_noop_clip_returns_same_object(self, fig1_graph, fig1_hub_mask):
        raw = prime_ppv(fig1_graph, 1, fig1_hub_mask, alpha=ALPHA)
        # Every retained score exceeds 1e-12, so clipping changes nothing
        # and the original object is returned (no copy).
        assert clip_prime_ppv(raw, 1e-12) is raw

    def test_index_clip_bounds_storage(self, small_social):
        from repro.core.hubs import select_hubs

        hubs = select_hubs(small_social, 20)
        fine = build_index(small_social, hubs, clip=0.0)
        coarse = build_index(small_social, hubs, clip=DEFAULT_CLIP)
        assert coarse.stats.stored_entries <= fine.stats.stored_entries

    def test_hub_self_entry_survives_clip(self, small_social):
        from repro.core.hubs import select_hubs

        hubs = select_hubs(small_social, 20)
        index = build_index(small_social, hubs, clip=DEFAULT_CLIP)
        for hub in hubs:
            # The trivial tour guarantees score >= alpha at the hub itself.
            assert index.get(int(hub)).score_of(int(hub)) >= ALPHA


class TestIndexAccessors:
    def test_hubs_property_matches_mask(self, small_social_index):
        import numpy as np

        mask_hubs = np.nonzero(small_social_index.hub_mask)[0]
        np.testing.assert_array_equal(small_social_index.hubs, mask_hubs)

    def test_contains_uses_entries(self, fig1_graph):
        from repro.core.index import build_index

        index = build_index(fig1_graph, [1, 3])
        assert 1 in index and 3 in index
        assert 0 not in index

    def test_is_hub_matches_contains(self, small_social_index):
        for node in (0, 1, 2, 50, 100):
            assert small_social_index.is_hub(node) == (node in small_social_index)
