"""Unit tests for snapshots and edge sampling (Fig. 13 inputs)."""

import numpy as np
import pytest

from repro.graph.generators import bibliographic_graph, social_graph
from repro.graph.sampling import edge_sample, sample_series, snapshot, snapshot_series


class TestSnapshot:
    def test_snapshots_grow(self, small_bib):
        series = snapshot_series(small_bib, [1998, 2002, 2006, 2010])
        sizes = [g.num_nodes + g.num_edges for _, g in series]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_final_snapshot_contains_all_papers(self, small_bib):
        final = snapshot(small_bib, 2010)
        expected_papers = int((small_bib.paper_years <= 2010).sum())
        paper_labels = [
            lab
            for lab in final.labels
            if small_bib.node_kind(int(lab)) == "paper"
        ]
        assert len(paper_labels) == expected_papers

    def test_snapshot_undirected(self, small_bib):
        graph = snapshot(small_bib, 2002)
        for src, dst in list(graph.edges())[:100]:
            assert graph.has_edge(dst, src)

    def test_snapshot_before_first_year_empty(self, small_bib):
        graph = snapshot(small_bib, 1900)
        assert graph.num_nodes == 0

    def test_snapshot_labels_map_back(self, small_bib):
        graph = snapshot(small_bib, 2006)
        assert graph.labels is not None
        for node in range(min(graph.num_nodes, 50)):
            original = int(graph.label(node))
            assert 0 <= original < small_bib.graph.num_nodes


class TestEdgeSample:
    def test_fraction_one_keeps_all_edges(self, small_social):
        sampled = edge_sample(small_social, 1.0, seed=1)
        assert sampled.num_edges == small_social.num_edges

    def test_fraction_reduces_edges(self, small_social):
        sampled = edge_sample(small_social, 0.3, seed=1)
        ratio = sampled.num_edges / small_social.num_edges
        assert 0.2 < ratio < 0.4

    def test_invalid_fraction(self, small_social):
        with pytest.raises(ValueError):
            edge_sample(small_social, 0.0)
        with pytest.raises(ValueError):
            edge_sample(small_social, 1.5)

    def test_deterministic(self, small_social):
        a = edge_sample(small_social, 0.5, seed=7)
        b = edge_sample(small_social, 0.5, seed=7)
        assert a == b

    def test_sampled_edges_exist_in_original(self, small_social):
        sampled = edge_sample(small_social, 0.4, seed=2)
        assert sampled.labels is not None
        for src, dst in list(sampled.edges())[:200]:
            orig_src = int(sampled.label(src))
            orig_dst = int(sampled.label(dst))
            assert small_social.has_edge(orig_src, orig_dst)

    def test_series_ordered(self, small_social):
        series = sample_series(small_social, [0.8, 0.2, 0.5], seed=3)
        fractions = [f for f, _ in series]
        assert fractions == [0.2, 0.5, 0.8]
        edge_counts = [g.num_edges for _, g in series]
        assert edge_counts == sorted(edge_counts)
