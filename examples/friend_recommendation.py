"""Scenario 2 of the paper's introduction: friends recommendation.

"Given a user in the network, how can we recommend some potential
friends to her?"  The query is a user node; candidates are ranked by
their PPV score, excluding the user and people she already follows.

Run with:  python examples/friend_recommendation.py
"""

from repro import FastPPV, StopAtL1Error, any_of, build_index, select_hubs, social_graph
from repro.core.query import StopAfterIterations


def main() -> None:
    graph = social_graph(num_nodes=3000, reciprocity=0.4, seed=8)
    print(f"social network: {graph}")

    hubs = select_hubs(graph, num_hubs=200)
    index = build_index(graph, hubs)
    engine = FastPPV(graph, index)

    user = 777
    already_friends = set(int(v) for v in graph.out_neighbors(user))
    print(f"\nuser {user} already follows {len(already_friends)} people")

    # Accuracy-aware stopping: iterate until the PPV estimate is within
    # 0.05 L1 of exact, but never more than 8 iterations.
    stop = any_of(StopAtL1Error(0.05), StopAfterIterations(8))
    result = engine.query(user, stop=stop)
    print(
        f"stopped after {result.iterations} iterations at "
        f"L1 error {result.l1_error:.4f} "
        f"({result.seconds * 1000:.1f} ms)"
    )

    recommendations = [
        int(node)
        for node in result.top_k(60, exclude_query=True)
        if int(node) not in already_friends
    ]
    print("\nrecommended friends (not yet followed):")
    for rank, node in enumerate(recommendations[:10], start=1):
        mutuals = already_friends & set(
            int(v) for v in graph.out_neighbors(node)
        )
        print(
            f"  {rank:2d}. user {node:5d}  score {result.scores[node]:.5f}"
            f"  ({len(mutuals)} mutual friends)"
        )


if __name__ == "__main__":
    main()
