"""Distributed tracing for the serving stack.

A trace is a tree of :class:`Span` records sharing one ``trace_id``.
The client (or CLI) opens the root span and sends its
:class:`SpanContext` over the wire as the optional ``trace`` request
field (schema versioned in :mod:`repro.server.protocol`); every hop —
TCP server, router, shard worker — continues the same trace by opening
child spans, so the assembled tree attributes end-to-end latency to
admission wait, coalescing, kernel time, per-shard fetches and cache
lookups, across process boundaries (each span records its ``pid``).

Finished spans land in the owning :class:`Tracer`'s bounded in-memory
ring (and optional JSONL log); the ``trace`` verb fetches them back out.
Layers that hold no tracer reference (remote stores, fault sites) reach
the live trace through the thread-local :func:`current_span` that
:func:`activate` maintains — the scheduler's drain thread activates the
batch/kernel spans around engine calls, so anything the engine touches
can attach children or events without plumbing.

Everything here is stdlib-only and zero-cost when tracing is off: the
instrumented code guards every hook behind a single ``is not None``
check, the same discipline as :mod:`repro.faults`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import NamedTuple, Optional, Sequence

DEFAULT_TRACE_CAPACITY = 2048


def new_id() -> str:
    """A fresh 64-bit random identifier as 16 hex characters."""
    return os.urandom(8).hex()


class SpanContext(NamedTuple):
    """The wire-portable coordinates of a span: which trace it belongs
    to and (optionally) which span new work should parent under."""

    trace_id: str
    span_id: Optional[str] = None


class Span:
    """One timed operation inside a trace.

    Spans accumulate attributes (:meth:`set`) and point-in-time events
    (:meth:`event`, used by fault injection), spawn children
    (:meth:`child`), and report themselves to their tracer exactly once
    on :meth:`end` — only ended spans are recorded.
    """

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "events",
        "start",
        "duration",
        "pid",
        "_start_monotonic",
        "_ended",
    )

    def __init__(
        self,
        tracer: "Optional[Tracer]",
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        attributes: Optional[dict] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_id()
        self.parent_id = parent_id
        self.attributes = dict(attributes) if attributes else {}
        self.events: list[dict] = []
        self.start = time.time()
        self.duration: Optional[float] = None
        self.pid = os.getpid()
        self._start_monotonic = time.monotonic()
        self._ended = False

    def context(self) -> SpanContext:
        """This span's coordinates, for children (local or remote)."""
        return SpanContext(self.trace_id, self.span_id)

    def set(self, **attributes) -> None:
        """Attach or overwrite span attributes."""
        self.attributes.update(attributes)

    def event(self, name: str, **attributes) -> None:
        """Record a point-in-time event at the current offset (seconds
        since span start)."""
        self.events.append(
            {
                "name": name,
                "at": time.monotonic() - self._start_monotonic,
                **attributes,
            }
        )

    def child(self, name: str, **attributes) -> "Span":
        """A new span under this one, in the same trace, reporting to
        the same tracer."""
        return Span(
            self.tracer,
            name,
            self.trace_id,
            parent_id=self.span_id,
            attributes=attributes,
        )

    def end(self, **attributes) -> None:
        """Stop the clock and hand the finished span to the tracer.

        Idempotent: only the first call records anything.
        """
        if self._ended:
            return
        self._ended = True
        if attributes:
            self.attributes.update(attributes)
        self.duration = time.monotonic() - self._start_monotonic
        if self.tracer is not None:
            self.tracer._record(self)

    def to_dict(self) -> dict:
        """The versioned wire form of this span (see
        ``protocol.TRACE_SCHEMA_VERSION``)."""
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "pid": self.pid,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attributes),
            "events": list(self.events),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, "
            f"span={self.span_id}, parent={self.parent_id})"
        )


class Tracer:
    """A bounded ring of finished spans, with an optional JSONL log.

    ``capacity`` bounds memory; once full, the oldest spans fall off.
    When ``log_path`` is given every finished span is also appended to
    that file as one JSON object per line (opened lazily, flushed per
    span — the log is for post-mortems, not throughput).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        log_path=None,
    ) -> None:
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=max(1, int(capacity)))
        self._log_path = log_path
        self._log = None

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def start_span(
        self,
        name: str,
        context: Optional[SpanContext] = None,
        **attributes,
    ) -> Span:
        """Open a span: a brand-new trace when ``context`` is ``None``,
        otherwise a continuation of the trace ``context`` describes
        (parented under ``context.span_id`` when present).  ``context``
        may be a :class:`SpanContext` or another :class:`Span`.
        """
        if context is None:
            return Span(self, name, new_id(), None, attributes)
        return Span(
            self,
            name,
            context.trace_id,
            parent_id=getattr(context, "span_id", None),
            attributes=attributes,
        )

    def _record(self, span: Span) -> None:
        record = span.to_dict()
        with self._lock:
            self._ring.append(record)
            if self._log_path is not None:
                if self._log is None:
                    self._log = open(
                        self._log_path, "a", encoding="utf-8", buffering=1
                    )
                self._log.write(
                    json.dumps(record, separators=(",", ":"), default=str)
                    + "\n"
                )

    def spans(
        self,
        trace_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> list[dict]:
        """Recorded spans, oldest first; ``trace_id`` filters to one
        trace and ``limit`` keeps only the most recent matches."""
        with self._lock:
            records = list(self._ring)
        if trace_id is not None:
            records = [r for r in records if r["trace"] == trace_id]
        if limit is not None:
            records = records[-max(0, int(limit)):] if int(limit) else []
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        with self._lock:
            if self._log is not None:
                self._log.close()
                self._log = None


_ACTIVE = threading.local()


def current_span() -> Optional[Span]:
    """The span :func:`activate` installed on this thread, if any."""
    return getattr(_ACTIVE, "span", None)


@contextmanager
def activate(span: Span):
    """Make ``span`` this thread's :func:`current_span` for the block
    (restoring whatever was active before on exit)."""
    previous = getattr(_ACTIVE, "span", None)
    _ACTIVE.span = span
    try:
        yield span
    finally:
        _ACTIVE.span = previous


_DEFAULT_TRACER = Tracer()


def default_tracer() -> Tracer:
    """The process-wide tracer client entry points record into."""
    return _DEFAULT_TRACER


def span_tree(
    spans: Sequence[dict],
) -> "tuple[list[dict], dict[str, list[dict]]]":
    """Index span records for tree rendering: ``(roots, children)``
    where ``children`` maps a span id to its child records, each level
    sorted by start time.  Spans whose parent is absent from ``spans``
    (e.g. rotated out of the ring) are treated as roots.
    """
    by_id = {record["span"]: record for record in spans}
    roots: list[dict] = []
    children: dict[str, list[dict]] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    roots.sort(key=lambda r: r.get("start") or 0.0)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.get("start") or 0.0)
    return roots, children
