"""Common result type for baseline engines."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BaselineResult:
    """Outcome of one baseline query.

    Mirrors the fields of :class:`repro.core.query.QueryResult` that the
    experiment harness consumes, so FastPPV and the baselines can be
    scored by the same code path.
    """

    query: int
    scores: np.ndarray
    seconds: float
    work_units: int = 0
    """Scale-independent work: edge traversals plus spliced index entries
    (walk steps for MonteCarlo).  See ``QueryResult.work_units``."""

    def top_k(self, k: int = 10, exclude_query: bool = False) -> np.ndarray:
        """Node ids of the ``k`` highest scores, best first, ties by id."""
        scores = self.scores
        if exclude_query:
            scores = scores.copy()
            scores[self.query] = -np.inf
        order = np.lexsort((np.arange(scores.size), -scores))
        return order[:k]
