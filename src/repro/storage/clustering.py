"""PPR-based graph clustering (Sect. 5.3, after Sarkar & Moore [18]).

"A number of 'anchor' nodes are chosen randomly, and every other node in
the graph is assigned to its 'nearest' anchor in terms of their
personalized PageRank w.r.t. the anchor."  Personalized PageRank has good
clustering quality (Andersen-Chung-Lang [1]), so random anchors suffice.

Anchor PPVs are computed with forward push at a moderate threshold; nodes
no anchor reaches fall back to the anchor with the smallest id (they are
typically isolated or peripheral, and any assignment is equally good for
the one-cluster-in-memory simulation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.push import forward_push
from repro.graph.digraph import DiGraph
from repro.graph.pagerank import DEFAULT_ALPHA


@dataclass(frozen=True)
class ClusterAssignment:
    """Result of :func:`cluster_graph`.

    Attributes
    ----------
    anchors:
        The anchor node of each cluster (length ``k``).
    labels:
        Cluster id of every node (length ``n``).
    """

    anchors: np.ndarray
    labels: np.ndarray

    @property
    def num_clusters(self) -> int:
        """Number of clusters ``k``."""
        return self.anchors.size

    def members(self, cluster: int) -> np.ndarray:
        """Node ids belonging to ``cluster``."""
        return np.nonzero(self.labels == cluster)[0]

    def sizes(self) -> np.ndarray:
        """Node count of every cluster."""
        return np.bincount(self.labels, minlength=self.num_clusters)

    def largest_fraction(self, graph: DiGraph) -> float:
        """Size of the largest cluster as a fraction of graph size
        (nodes + edges) — the "memory need" column of Fig. 16."""
        sizes = np.zeros(self.num_clusters)
        degrees = graph.out_degrees
        for cluster in range(self.num_clusters):
            nodes = self.members(cluster)
            sizes[cluster] = nodes.size + degrees[nodes].sum()
        total = graph.num_nodes + graph.num_edges
        return float(sizes.max() / total) if total else 0.0


def cluster_graph(
    graph: DiGraph,
    num_clusters: int,
    alpha: float = DEFAULT_ALPHA,
    push_threshold: float = 1e-5,
    seed: int = 0,
) -> ClusterAssignment:
    """Partition ``graph`` into ``num_clusters`` PPR clusters.

    Parameters
    ----------
    graph:
        The graph.
    num_clusters:
        Number of anchors/clusters.
    alpha:
        Teleport probability for the anchor PPVs.
    push_threshold:
        Forward-push threshold for the anchor PPVs; coarser is faster but
        leaves more nodes to the fallback assignment.
    seed:
        Random seed for anchor selection.
    """
    if num_clusters < 1:
        raise ValueError("need at least one cluster")
    num_clusters = min(num_clusters, graph.num_nodes)
    rng = np.random.default_rng(seed)
    anchors = np.sort(
        rng.choice(graph.num_nodes, size=num_clusters, replace=False)
    ).astype(np.int64)

    best_score = np.full(graph.num_nodes, -1.0)
    labels = np.zeros(graph.num_nodes, dtype=np.int64)
    for cluster, anchor in enumerate(anchors):
        scores, _ = forward_push(
            graph, int(anchor), alpha=alpha, threshold=push_threshold
        )
        better = scores > best_score
        labels[better] = cluster
        best_score[better] = scores[better]
    # Anchors always own themselves (an anchor's PPV peaks at itself, but a
    # coarse push from a huge-degree neighbour could in principle shade it).
    labels[anchors] = np.arange(num_clusters)
    return ClusterAssignment(anchors=anchors, labels=labels)
