"""Unit tests for global PageRank."""

import numpy as np
import pytest

from repro.graph import from_edges, global_pagerank
from repro.graph.generators import complete_graph, cycle_graph, star_graph


class TestGlobalPageRank:
    def test_sums_to_one(self, small_social):
        rank = global_pagerank(small_social)
        assert rank.sum() == pytest.approx(1.0, abs=1e-9)

    def test_uniform_on_cycle(self):
        rank = global_pagerank(cycle_graph(6))
        assert np.allclose(rank, 1.0 / 6, atol=1e-9)

    def test_uniform_on_complete(self):
        rank = global_pagerank(complete_graph(5))
        assert np.allclose(rank, 0.2, atol=1e-9)

    def test_star_center_dominates(self):
        rank = global_pagerank(star_graph(8))
        assert rank[0] > rank[1]
        assert np.allclose(rank[1:], rank[1], atol=1e-12)

    def test_dangling_mass_redistributed(self):
        # 0 -> 1, 1 dangling: ranks must still sum to one.
        rank = global_pagerank(from_edges([(0, 1)], num_nodes=2))
        assert rank.sum() == pytest.approx(1.0, abs=1e-9)
        assert rank[1] > rank[0]

    def test_matches_networkx(self, small_social):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.DiGraph(list(small_social.edges()))
        nx_graph.add_nodes_from(range(small_social.num_nodes))
        expected = networkx.pagerank(nx_graph, alpha=0.85, tol=1e-12)
        got = global_pagerank(small_social, alpha=0.15)
        for node, value in expected.items():
            assert got[node] == pytest.approx(value, abs=1e-6)

    def test_empty_graph(self):
        graph = from_edges([], num_nodes=0)
        assert global_pagerank(graph).size == 0

    def test_invalid_alpha(self):
        graph = cycle_graph(3)
        with pytest.raises(ValueError):
            global_pagerank(graph, alpha=0.0)
        with pytest.raises(ValueError):
            global_pagerank(graph, alpha=1.0)

    def test_higher_indegree_higher_rank(self, small_social):
        rank = global_pagerank(small_social)
        in_degrees = small_social.in_degrees()
        top_rank = int(np.argmax(rank))
        assert in_degrees[top_rank] >= np.percentile(in_degrees, 95)
