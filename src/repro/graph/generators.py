"""Synthetic workload graphs.

The paper evaluates on DBLP (undirected bibliographic network of authors,
papers and venues; 2.0M nodes / 8.8M edges) and a LiveJournal sample
(directed friendship graph; 1.2M / 4.8M).  Neither dataset is available in
this offline environment, so this module provides structural stand-ins:

* :func:`bibliographic_graph` — an undirected tripartite author-paper-venue
  network organised into research *communities* (venues and authors cluster
  by field, papers mostly stay within their field).  Papers carry
  publication years, enabling the year-snapshot growth series of
  Fig. 13(a).  Author productivity and venue sizes are power-law
  distributed so high-expected-utility hub nodes exist.
* :func:`social_graph` — a directed friendship network combining strong
  *locality* (most friendships connect nearby nodes on a ring, à la
  small-world models) with a few popularity-weighted long-range links, and
  a reciprocity knob (LiveJournal friendships are declared, i.e. directed,
  but often reciprocated).

Locality is the property that makes the scheduled approximation behave at
small scale the way it does on the paper's multi-million-node graphs: PPV
mass concentrates near the query, so the first few hub-length partitions
capture almost everything.  A scale-free graph of only ~10^4 nodes has
diameter ~3 and every walk crosses a celebrity hub immediately, which is
*not* representative of a 2M-node graph where a random query sits far from
the core (see DESIGN.md, "Substitutions").

Both generators take an explicit seed and are deterministic for a given
parameter set.  Small deterministic topologies (cycle, path, star,
complete) round out the module for tests and docs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.build import GraphBuilder
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class BibliographicGraph:
    """A DBLP-like network plus its paper timestamps.

    Attributes
    ----------
    graph:
        Undirected (bidirectional) tripartite graph.  Node ids are laid out
        as ``[authors | papers | venues]``.
    num_authors, num_papers, num_venues:
        Sizes of the three node classes.
    paper_years:
        Publication year of each paper (length ``num_papers``), aligned with
        node ids ``num_authors .. num_authors + num_papers - 1``.
    """

    graph: DiGraph
    num_authors: int
    num_papers: int
    num_venues: int
    paper_years: np.ndarray

    def author_node(self, i: int) -> int:
        """Node id of author ``i``."""
        return i

    def paper_node(self, i: int) -> int:
        """Node id of paper ``i``."""
        return self.num_authors + i

    def venue_node(self, i: int) -> int:
        """Node id of venue ``i``."""
        return self.num_authors + self.num_papers + i

    def node_kind(self, node: int) -> str:
        """``"author"``, ``"paper"`` or ``"venue"`` for a node id."""
        if node < self.num_authors:
            return "author"
        if node < self.num_authors + self.num_papers:
            return "paper"
        return "venue"


def _zipf_weights(
    rng: np.random.Generator, count: int, exponent: float, max_value: int = 10_000
) -> np.ndarray:
    """Power-law positive weights, clipped — models skewed activity."""
    raw = rng.zipf(exponent, size=count)
    return np.minimum(raw, max_value).astype(float)


def bibliographic_graph(
    num_authors: int = 2000,
    num_papers: int = 4000,
    num_venues: int = 60,
    authors_per_paper: int = 3,
    cross_community: float = 0.08,
    year_range: tuple[int, int] = (1994, 2010),
    seed: int = 7,
) -> BibliographicGraph:
    """Generate a DBLP-like author-paper-venue network.

    Authors and venues are split into research communities (about four
    venues each).  A paper belongs to its first author's community: it
    picks its venue there and its co-authors mostly there too, each with
    probability ``cross_community`` of reaching outside — giving the graph
    the community structure (and therefore query locality) of a real
    bibliography.  Author productivity and venue size follow clipped Zipf
    laws, so a few prolific authors / large venues become natural hubs.

    Every author-paper and paper-venue relation becomes a bidirectional
    edge, matching the paper's undirected DBLP graph.  Papers receive years
    spread over ``year_range`` with volume growing over time — later
    snapshots are strictly larger, as in Fig. 13(a).
    """
    if min(num_authors, num_papers, num_venues) <= 0:
        raise ValueError("all node-class sizes must be positive")
    first_year, last_year = year_range
    if last_year < first_year:
        raise ValueError("year_range must be (first, last) with first <= last")
    rng = np.random.default_rng(seed)
    total = num_authors + num_papers + num_venues
    builder = GraphBuilder(num_nodes=total)

    num_communities = max(1, num_venues // 4)
    author_community = rng.integers(0, num_communities, size=num_authors)
    venue_community = rng.integers(0, num_communities, size=num_venues)
    # Guarantee every community has at least one venue by round-robin fill.
    venue_community[:num_communities] = np.arange(num_communities) % max(
        num_venues, 1
    )

    author_weight = _zipf_weights(rng, num_authors, 2.0)
    venue_weight = _zipf_weights(rng, num_venues, 1.6)

    authors_by_community = [
        np.nonzero(author_community == c)[0] for c in range(num_communities)
    ]
    venues_by_community = [
        np.nonzero(venue_community == c)[0] for c in range(num_communities)
    ]

    def pick(pool: np.ndarray, weights: np.ndarray, exclude: set[int]) -> int:
        probs = weights[pool].copy()
        for member in exclude:
            hits = np.nonzero(pool == member)[0]
            probs[hits] = 0.0
        if probs.sum() <= 0.0:
            probs = np.ones(pool.size)
        return int(rng.choice(pool, p=probs / probs.sum()))

    # Publication volume grows over time: year sampled with linearly
    # increasing weight so that successive snapshots grow super-linearly.
    years = np.arange(first_year, last_year + 1)
    year_prob = np.linspace(1.0, 3.0, years.size)
    year_prob /= year_prob.sum()
    paper_years = rng.choice(years, size=num_papers, p=year_prob)
    paper_years.sort()

    all_authors = np.arange(num_authors)
    all_venues = np.arange(num_venues)
    for paper in range(num_papers):
        paper_node = num_authors + paper
        lead = pick(all_authors, author_weight, set())
        community = int(author_community[lead])
        chosen: set[int] = {lead}
        extra = int(rng.integers(0, authors_per_paper))
        for _ in range(extra):
            if rng.random() < cross_community:
                pool = all_authors
            else:
                pool = authors_by_community[community]
            if pool.size <= len(chosen):
                continue
            chosen.add(pick(pool, author_weight, chosen))
        if rng.random() < cross_community:
            venue_pool = all_venues
        else:
            venue_pool = venues_by_community[community]
            if venue_pool.size == 0:
                venue_pool = all_venues
        venue = pick(venue_pool, venue_weight, set())
        builder.add_undirected_edge(paper_node, num_authors + num_papers + venue)
        for author in chosen:
            builder.add_undirected_edge(author, paper_node)

    graph = builder.build()
    return BibliographicGraph(
        graph=graph,
        num_authors=num_authors,
        num_papers=num_papers,
        num_venues=num_venues,
        paper_years=paper_years,
    )


def social_graph(
    num_nodes: int = 5000,
    edges_per_node: int = 5,
    long_range: float = 0.05,
    locality: float = 0.45,
    reciprocity: float = 0.5,
    seed: int = 11,
) -> DiGraph:
    """Generate a LiveJournal-like directed friendship network.

    Nodes sit on a ring (a stand-in for geographic/social proximity).
    Each node declares ``edges_per_node`` friends: with probability
    ``1 - long_range`` a *nearby* node (ring offset geometric with
    parameter ``locality`` — larger means tighter neighbourhoods), else a
    *popular* node anywhere (static Zipf popularity, so a few celebrities
    accumulate large in-degree).  Each declared edge is reciprocated
    independently with probability ``reciprocity``, mirroring
    LiveJournal's "friendship not necessarily reciprocal" semantics.

    Every node declares at least one friendship, so the graph has no
    dangling nodes and the query-time error identity of Eq. 6 is exact.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if not 0.0 <= reciprocity <= 1.0:
        raise ValueError("reciprocity must lie in [0, 1]")
    if not 0.0 <= long_range <= 1.0:
        raise ValueError("long_range must lie in [0, 1]")
    if not 0.0 < locality < 1.0:
        raise ValueError("locality must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(num_nodes=num_nodes)

    popularity = _zipf_weights(rng, num_nodes, 2.0)
    cumulative = np.cumsum(popularity)
    total_weight = cumulative[-1]

    for node in range(num_nodes):
        targets: set[int] = set()
        attempts = 0
        while len(targets) < edges_per_node and attempts < 20 * edges_per_node:
            attempts += 1
            if rng.random() < long_range:
                target = int(
                    np.searchsorted(cumulative, rng.random() * total_weight)
                )
            else:
                offset = int(rng.geometric(locality))
                sign = 1 if rng.random() < 0.5 else -1
                target = (node + sign * offset) % num_nodes
            if target != node:
                targets.add(target)
        if not targets:  # pathological RNG streak: keep the node non-dangling
            targets.add((node + 1) % num_nodes)
        for target in targets:
            builder.add_edge(node, target)
            if rng.random() < reciprocity:
                builder.add_edge(target, node)
    return builder.build()


# --------------------------------------------------------------------- #
# Small deterministic topologies (tests, docs, analytic sanity checks)
# --------------------------------------------------------------------- #


def erdos_renyi_graph(num_nodes: int, edge_prob: float, seed: int = 0) -> DiGraph:
    """G(n, p) directed random graph without self-loops."""
    if not 0.0 <= edge_prob <= 1.0:
        raise ValueError("edge_prob must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    mask = rng.random((num_nodes, num_nodes)) < edge_prob
    np.fill_diagonal(mask, False)
    srcs, dsts = np.nonzero(mask)
    builder = GraphBuilder(num_nodes=num_nodes)
    for src, dst in zip(srcs, dsts):
        builder.add_edge(int(src), int(dst))
    return builder.build()


def cycle_graph(num_nodes: int) -> DiGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    builder = GraphBuilder(num_nodes=num_nodes)
    for u in range(num_nodes):
        builder.add_edge(u, (u + 1) % num_nodes)
    return builder.build()


def path_graph(num_nodes: int) -> DiGraph:
    """Directed path ``0 -> 1 -> ... -> n-1`` (last node dangling)."""
    builder = GraphBuilder(num_nodes=num_nodes)
    for u in range(num_nodes - 1):
        builder.add_edge(u, u + 1)
    return builder.build()


def star_graph(num_leaves: int) -> DiGraph:
    """Hub node 0 with bidirectional edges to ``num_leaves`` leaves."""
    builder = GraphBuilder(num_nodes=num_leaves + 1)
    for leaf in range(1, num_leaves + 1):
        builder.add_undirected_edge(0, leaf)
    return builder.build()


def complete_graph(num_nodes: int) -> DiGraph:
    """Every ordered pair of distinct nodes is an edge."""
    builder = GraphBuilder(num_nodes=num_nodes)
    for u in range(num_nodes):
        for v in range(num_nodes):
            if u != v:
                builder.add_edge(u, v)
    return builder.build()
