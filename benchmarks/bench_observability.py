"""Observability overhead: tracing off must be (within noise) free.

The ``repro.obs`` instrumentation follows the fault-injection
discipline: with ``obs=None`` every hook is one ``is not None`` check,
and with obs enabled but queries untraced the only additions are two
histogram records per scheduler drain plus function-backed metrics read
at snapshot time — nothing per query.  This bench pins that claim
against the PR-9 serving baseline:

* **baseline** — ``PPVService`` with ``obs=None`` (the pre-obs hot
  path, byte-identical instructions).
* **obs on, untraced** — a registry + tracer attached, no trace field
  on any query.  Hard acceptance: throughput within **2%** of baseline.
* **obs on, traced** — every query carries a trace context and the full
  span tree is recorded (reported for scale; no acceptance bound).

Configurations are timed interleaved (best-of-N each) so clock drift
and cache warmup hit all three alike.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.common import BENCH_SCALE, emit, emit_json
from repro import StopAfterIterations, build_index, select_hubs, social_graph
from repro.experiments.report import Table
from repro.obs import Observability
from repro.serving import PPVService, QuerySpec

DELTA = 1e-4
ONLINE_EPSILON = 1e-5
REPETITIONS = 5
MAX_OFF_OVERHEAD = 1.02  # tracing-off throughput within 2% of baseline


@pytest.fixture(scope="module")
def setup():
    num_nodes = max(1000, int(4000 * BENCH_SCALE))
    num_hubs = max(100, int(400 * BENCH_SCALE))
    graph = social_graph(num_nodes=num_nodes, seed=11)
    hubs = select_hubs(graph, num_hubs=num_hubs)
    index = build_index(graph, hubs, epsilon=1e-6)
    rng = np.random.default_rng(0)
    queries = [
        int(q)
        for q in rng.choice(graph.num_nodes, size=64, replace=False)
    ]
    return graph, index, queries


def test_tracing_overhead(setup):
    graph, index, queries = setup
    stop = StopAfterIterations(2)
    specs = [QuerySpec(q, stop=stop) for q in queries]

    def open_service(obs):
        service = PPVService.open(
            index, graph=graph, delta=DELTA, online_epsilon=ONLINE_EPSILON,
            cache_size=0, obs=obs,
        )
        service.warm()
        return service

    obs = Observability()
    with open_service(None) as baseline_service, \
            open_service(obs) as obs_service:

        def run_baseline():
            return baseline_service.query_many(specs)

        def run_untraced():
            return obs_service.query_many(specs)

        def run_traced():
            span = obs.tracer.start_span("bench.burst")
            try:
                return obs_service.query_many(
                    [spec.with_trace(span.context()) for spec in specs]
                )
            finally:
                span.end()

        # Traced serving must not change a single score.
        reference = run_baseline()
        traced = run_traced()
        for expected, got in zip(reference, traced):
            np.testing.assert_array_equal(expected.scores, got.scores)

        best = {"baseline": float("inf"), "untraced": float("inf"),
                "traced": float("inf")}
        runs = (
            ("baseline", run_baseline),
            ("untraced", run_untraced),
            ("traced", run_traced),
        )
        for _ in range(REPETITIONS):
            for name, run in runs:  # interleaved: noise hits all alike
                started = time.perf_counter()
                run()
                best[name] = min(best[name], time.perf_counter() - started)

    rate = lambda seconds: len(queries) / seconds
    off_ratio = best["untraced"] / best["baseline"]
    traced_ratio = best["traced"] / best["baseline"]
    table = Table(
        title=f"Observability overhead ({graph.num_nodes} nodes, "
        f"{index.num_hubs} hubs, eta=2, {len(queries)} queries, "
        f"best of {REPETITIONS})",
        headers=["configuration", "q/s", "vs baseline"],
    )
    table.add_row("obs=None (baseline)", f"{rate(best['baseline']):.0f}", "1.000")
    table.add_row(
        "obs on, untraced", f"{rate(best['untraced']):.0f}", f"{off_ratio:.3f}"
    )
    table.add_row(
        "obs on, traced", f"{rate(best['traced']):.0f}", f"{traced_ratio:.3f}"
    )
    emit("observability_overhead", table)
    emit_json(
        "observability",
        {
            "overhead": {
                "num_nodes": graph.num_nodes,
                "num_hubs": int(index.num_hubs),
                "num_queries": len(queries),
                "repetitions": REPETITIONS,
                "baseline_qps": rate(best["baseline"]),
                "obs_untraced_qps": rate(best["untraced"]),
                "obs_traced_qps": rate(best["traced"]),
                "untraced_overhead_ratio": off_ratio,
                "traced_overhead_ratio": traced_ratio,
                "max_untraced_overhead": MAX_OFF_OVERHEAD,
            }
        },
    )

    # Acceptance: with tracing off, the instrumented service serves at
    # baseline throughput (<= 2% overhead).
    assert best["untraced"] <= MAX_OFF_OVERHEAD * best["baseline"], (
        f"obs-on untraced took {off_ratio:.3f}x the obs=None baseline "
        f"(bound {MAX_OFF_OVERHEAD}x)"
    )
