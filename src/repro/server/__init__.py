"""Cross-process network serving over :class:`~repro.serving.PPVService`.

Everything before this package lives inside one Python process; this is
the layer that puts the serving façade on the network:

* :mod:`repro.server.protocol` — the versioned JSONL request/response
  protocol (queries, certified top-k, streaming frames, stats, hot
  index swap, graceful shutdown) shared by the TCP server, the stdio
  loop and the client.
* :class:`PPVServer` (:mod:`repro.server.server`) — the asyncio TCP
  front-end: many concurrent connections multiplexed onto one service
  with bounded in-flight admission (server-wide and per-connection
  backpressure) and structured error replies.
* :func:`run_pool` (:mod:`repro.server.pool`) — pre-fork multi-worker
  mode: N processes accepting from one shared listen socket, each with
  its own service over the copy-on-write index, so throughput scales
  past the GIL.
* :class:`PPVClient` (:mod:`repro.server.client`) — the small blocking
  client used by tests, benchmarks and examples.

The CLI front door is ``repro serve --tcp HOST:PORT [--workers N]``
(and ``repro serve --stdio`` for the single-process pipe loop).
"""

from repro.server.client import (
    ClientTimeout,
    PPVClient,
    ProtocolViolation,
    ServerError,
)
from repro.server.pool import ServerPool, open_listen_socket, run_pool
from repro.server.server import (
    PPVServer,
    ServerConfig,
    ServerCounters,
    serve_stdio,
)

__all__ = [
    "PPVClient",
    "PPVServer",
    "ServerConfig",
    "ServerCounters",
    "ServerError",
    "ServerPool",
    "ClientTimeout",
    "ProtocolViolation",
    "open_listen_socket",
    "run_pool",
    "serve_stdio",
]
