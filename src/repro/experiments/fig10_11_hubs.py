"""Figs. 10-11: effect of the number of hubs |H|.

One sweep produces both exhibits: online accuracy + query time per hub
count (Fig. 10) and offline space + precomputation time (Fig. 11).  The
paper's findings to reproduce in shape: query time falls as |H| grows
while accuracy stays robust; offline time *decreases* with more hubs
(smaller prime subgraphs) while space grows sublinearly (clipping bites
harder on large prime PPVs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.hubs import select_hubs
from repro.core.index import IndexStats, build_index
from repro.experiments.report import Table
from repro.experiments.runner import MethodOutcome, run_fastppv
from repro.experiments.workloads import Workload
from repro.graph.digraph import DiGraph
from repro.graph.pagerank import global_pagerank


@dataclass
class HubSweepPoint:
    """Results at one hub count."""

    num_hubs: int
    outcome: MethodOutcome
    offline: IndexStats


def run_hub_sweep(
    graph: DiGraph,
    workload: Workload,
    hub_counts: Sequence[int],
    eta: int = 2,
) -> list[HubSweepPoint]:
    """Build an index per hub count and score the workload with each."""
    pagerank = global_pagerank(graph, alpha=workload.alpha)
    points = []
    for num_hubs in hub_counts:
        hubs = select_hubs(graph, num_hubs, alpha=workload.alpha, pagerank=pagerank)
        index = build_index(graph, hubs, alpha=workload.alpha)
        outcome = run_fastppv(
            graph, workload, num_hubs=num_hubs, eta=eta, index=index
        )
        points.append(
            HubSweepPoint(num_hubs=num_hubs, outcome=outcome, offline=index.stats)
        )
    return points


def fig10_table(points: list[HubSweepPoint], dataset: str) -> Table:
    """|H| effect on online processing (Fig. 10)."""
    table = Table(
        title=f"Fig. 10 ({dataset}) — number of hubs, online phase",
        headers=["|H|", "Kendall", "Precision", "RAG", "L1 sim", "Time (ms)"],
    )
    for point in points:
        accuracy = point.outcome.accuracy
        table.add_row(
            point.num_hubs,
            accuracy.kendall,
            accuracy.precision,
            accuracy.rag,
            accuracy.l1_similarity,
            point.outcome.online_ms_per_query,
        )
    return table


def fig11_table(points: list[HubSweepPoint], dataset: str) -> Table:
    """|H| effect on offline precomputation (Fig. 11)."""
    table = Table(
        title=f"Fig. 11 ({dataset}) — number of hubs, offline phase",
        headers=["|H|", "Total space (MB)", "Total time (s)", "Stored entries"],
    )
    for point in points:
        table.add_row(
            point.num_hubs,
            point.offline.megabytes,
            point.offline.build_seconds,
            point.offline.stored_entries,
        )
    return table
