"""Unit tests for hub selection policies (Eq. 7)."""

import numpy as np
import pytest

from repro.core.hubs import HubPolicy, hub_scores, select_hubs
from repro.graph import from_edges, global_pagerank
from repro.graph.generators import star_graph


class TestHubScores:
    def test_expected_utility_is_product(self, small_social):
        pagerank = global_pagerank(small_social)
        scores = hub_scores(
            small_social, HubPolicy.EXPECTED_UTILITY, pagerank=pagerank
        )
        np.testing.assert_allclose(
            scores, pagerank * small_social.out_degrees, atol=1e-15
        )

    def test_out_degree_policy(self, small_social):
        scores = hub_scores(small_social, HubPolicy.OUT_DEGREE)
        np.testing.assert_array_equal(scores, small_social.out_degrees)

    def test_in_degree_policy(self, small_social):
        scores = hub_scores(small_social, HubPolicy.IN_DEGREE)
        np.testing.assert_array_equal(scores, small_social.in_degrees())

    def test_pagerank_policy_reuses_given_vector(self, small_social):
        fake = np.arange(small_social.num_nodes, dtype=float)
        scores = hub_scores(small_social, HubPolicy.PAGERANK, pagerank=fake)
        np.testing.assert_array_equal(scores, fake)

    def test_random_policy_deterministic_per_seed(self, small_social):
        a = hub_scores(small_social, HubPolicy.RANDOM, seed=4)
        b = hub_scores(small_social, HubPolicy.RANDOM, seed=4)
        c = hub_scores(small_social, HubPolicy.RANDOM, seed=5)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)


class TestSelectHubs:
    def test_count_and_sorted(self, small_social):
        hubs = select_hubs(small_social, 25)
        assert hubs.size == 25
        assert np.all(np.diff(hubs) > 0)  # sorted, unique

    def test_zero_hubs(self, small_social):
        assert select_hubs(small_social, 0).size == 0

    def test_negative_rejected(self, small_social):
        with pytest.raises(ValueError):
            select_hubs(small_social, -1)

    def test_capped_at_num_nodes(self):
        graph = star_graph(3)
        hubs = select_hubs(graph, 100)
        assert hubs.size == graph.num_nodes

    def test_star_center_selected_first(self):
        graph = star_graph(10)
        hubs = select_hubs(graph, 1)
        assert hubs.tolist() == [0]

    def test_top_scores_selected(self, small_social):
        pagerank = global_pagerank(small_social)
        utility = pagerank * small_social.out_degrees
        hubs = select_hubs(small_social, 10, pagerank=pagerank)
        threshold = np.sort(utility)[-10]
        assert np.all(utility[hubs] >= threshold - 1e-15)

    def test_deterministic_tie_break(self):
        # All nodes identical: the lowest ids must win.
        graph = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], num_nodes=4)
        hubs = select_hubs(graph, 2, HubPolicy.OUT_DEGREE)
        assert hubs.tolist() == [0, 1]

    def test_policies_differ_on_directed_graph(self, small_social):
        by_eu = set(select_hubs(small_social, 20).tolist())
        by_out = set(select_hubs(small_social, 20, HubPolicy.OUT_DEGREE).tolist())
        by_pr = set(select_hubs(small_social, 20, HubPolicy.PAGERANK).tolist())
        # At least one pair of policies must disagree on a directed graph.
        assert by_eu != by_out or by_eu != by_pr
