"""Disk substrate for large graphs (Sect. 5.3, Fig. 16).

Three pieces:

* :mod:`repro.storage.ppv_store` — a binary on-disk PPV index with an
  offset directory, so online processing can fetch one hub's prime PPV
  with one random access ("the precomputed prime PPVs or building blocks
  are stored in a PPV index on disk", Sect. 5.1).
* :mod:`repro.storage.clustering` — anchor-based graph clustering via
  personalized PageRank (after Sarkar & Moore [18]): random anchors, every
  node joins the anchor with the highest PPV value at it.
* :mod:`repro.storage.disk_engine` — online query processing against a
  disk-resident graph: one cluster in memory at a time, cluster faults
  counted and budgeted, prime subgraphs assembled cluster by cluster.
"""

from repro.storage.clustering import ClusterAssignment, cluster_graph
from repro.storage.disk_engine import (
    BatchDiskFastPPV,
    DiskFastPPV,
    DiskGraphStore,
    DiskQueryResult,
    DiskTopKResult,
)
from repro.storage.ppv_store import DiskPPVStore, load_index, save_index

__all__ = [
    "save_index",
    "load_index",
    "DiskPPVStore",
    "ClusterAssignment",
    "cluster_graph",
    "DiskGraphStore",
    "DiskFastPPV",
    "BatchDiskFastPPV",
    "DiskQueryResult",
    "DiskTopKResult",
]
