"""Weighted graphs: ObjectRank-style typed relationships.

The paper's framework "works for a general graph"; in database search
(ObjectRank [4]) edges carry authority-transfer weights — e.g. a paper
passes more authority to its authors than to its venue.  Edge weights
flow through one place (``DiGraph.edge_probabilities``), so the whole
stack — exact solvers, the FastPPV index, baselines — works unchanged.

Run with:  python examples/weighted_relations.py
"""

import numpy as np

from repro import FastPPV, StopAfterIterations, build_index, select_hubs
from repro.graph import GraphBuilder
from repro.graph.generators import bibliographic_graph


def main() -> None:
    bib = bibliographic_graph(
        num_authors=800, num_papers=1600, num_venues=30, seed=33
    )
    unweighted = bib.graph

    # Re-weight the same topology: paper->author edges carry 4x the
    # authority of paper->venue edges (and symmetrically back).
    builder = GraphBuilder(num_nodes=unweighted.num_nodes)
    for src in range(unweighted.num_nodes):
        for dst in unweighted.out_neighbors(src):
            dst = int(dst)
            kinds = {bib.node_kind(src), bib.node_kind(dst)}
            weight = 4.0 if kinds == {"paper", "author"} else 1.0
            builder.add_edge(src, dst, weight)
    weighted = builder.build()
    print(f"weighted bibliographic network: {weighted} "
          f"(weighted={weighted.is_weighted})")

    def engine_for(graph):
        hubs = select_hubs(graph, 100)
        return FastPPV(graph, build_index(graph, hubs))

    paper = bib.paper_node(77)
    plain = engine_for(unweighted).query(paper, stop=StopAfterIterations(3))
    boosted = engine_for(weighted).query(paper, stop=StopAfterIterations(3))

    def author_mass(scores: np.ndarray) -> float:
        return float(scores[: bib.num_authors].sum())

    print(f"\nquery: paper node {paper}")
    print(f"author share of PPV mass, unweighted: {author_mass(plain.scores):.3f}")
    print(f"author share of PPV mass, weighted:   {author_mass(boosted.scores):.3f}")
    print("(the 4x paper->author transfer shifts ranking mass to authors)")

    print("\ntop 8 nodes, weighted engine:")
    for rank, node in enumerate(boosted.top_k(8), start=1):
        print(
            f"  {rank}. {bib.node_kind(int(node)):>6} {int(node):5d} "
            f"score {boosted.scores[node]:.5f}"
        )


if __name__ == "__main__":
    main()
