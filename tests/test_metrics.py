"""Unit tests for the four accuracy metrics."""

import numpy as np
import pytest

from repro.metrics import (
    AccuracyReport,
    evaluate_accuracy,
    kendall_tau,
    l1_error,
    l1_similarity,
    precision_at_k,
    rag,
    top_k_nodes,
)


class TestTopK:
    def test_orders_by_score(self):
        scores = np.array([0.1, 0.5, 0.3])
        assert top_k_nodes(scores, 2).tolist() == [1, 2]

    def test_tie_break_by_id(self):
        scores = np.array([0.5, 0.5, 0.5])
        assert top_k_nodes(scores, 2).tolist() == [0, 1]

    def test_k_larger_than_n(self):
        assert top_k_nodes(np.array([1.0, 2.0]), 10).size == 2


class TestKendall:
    def test_identical_rankings(self):
        scores = np.array([0.4, 0.3, 0.2, 0.1])
        assert kendall_tau(scores, scores.copy(), k=4) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        exact = np.array([4.0, 3.0, 2.0, 1.0])
        estimate = np.array([1.0, 2.0, 3.0, 4.0])
        assert kendall_tau(exact, estimate, k=4) == pytest.approx(-1.0)

    def test_partial_agreement_between(self):
        exact = np.array([4.0, 3.0, 2.0, 1.0])
        estimate = np.array([4.0, 3.0, 1.0, 2.0])  # one swapped pair
        value = kendall_tau(exact, estimate, k=4)
        assert 0.0 < value < 1.0

    def test_all_tied_estimate(self):
        exact = np.array([0.4, 0.3, 0.2])
        estimate = np.zeros(3)
        # All estimate pairs tied: tau-b denominator collapses on one side.
        value = kendall_tau(exact, estimate, k=3)
        assert -1.0 <= value <= 1.0

    def test_both_constant(self):
        value = kendall_tau(np.ones(3), np.ones(3), k=3)
        assert value == pytest.approx(1.0)

    def test_scale_invariant(self):
        exact = np.array([0.4, 0.3, 0.2, 0.1])
        estimate = np.array([0.39, 0.31, 0.19, 0.11])
        assert kendall_tau(exact, estimate * 10, k=4) == pytest.approx(
            kendall_tau(exact, estimate, k=4)
        )


class TestPrecision:
    def test_perfect(self):
        scores = np.array([0.4, 0.3, 0.2, 0.1])
        assert precision_at_k(scores, scores.copy(), k=2) == 1.0

    def test_disjoint(self):
        exact = np.array([1.0, 1.0, 0.0, 0.0])
        estimate = np.array([0.0, 0.0, 1.0, 1.0])
        assert precision_at_k(exact, estimate, k=2) == 0.0

    def test_half_overlap(self):
        exact = np.array([0.9, 0.8, 0.0, 0.0])
        estimate = np.array([0.9, 0.0, 0.8, 0.0])
        assert precision_at_k(exact, estimate, k=2) == 0.5

    def test_order_within_topk_irrelevant(self):
        exact = np.array([0.9, 0.8, 0.1])
        estimate = np.array([0.8, 0.9, 0.1])
        assert precision_at_k(exact, estimate, k=2) == 1.0


class TestRAG:
    def test_perfect_topk(self):
        scores = np.array([0.4, 0.3, 0.2, 0.1])
        assert rag(scores, scores.copy(), k=2) == pytest.approx(1.0)

    def test_order_within_topk_irrelevant(self):
        exact = np.array([0.4, 0.3, 0.2])
        estimate = np.array([0.3, 0.4, 0.2])
        assert rag(exact, estimate, k=2) == pytest.approx(1.0)

    def test_suboptimal_selection(self):
        exact = np.array([0.5, 0.3, 0.2])
        estimate = np.array([0.5, 0.0, 0.4])  # picks node 2 over node 1
        assert rag(exact, estimate, k=2) == pytest.approx(0.7 / 0.8)

    def test_all_zero_exact(self):
        assert rag(np.zeros(3), np.ones(3), k=2) == 1.0


class TestL1:
    def test_error_and_similarity_complementary(self):
        exact = np.array([0.6, 0.4])
        estimate = np.array([0.5, 0.4])
        assert l1_error(exact, estimate) == pytest.approx(0.1)
        assert l1_similarity(exact, estimate) == pytest.approx(0.9)

    def test_identical(self):
        scores = np.array([0.5, 0.5])
        assert l1_similarity(scores, scores.copy()) == pytest.approx(1.0)


class TestSuite:
    def test_evaluate_accuracy_bundle(self):
        exact = np.array([0.4, 0.3, 0.2, 0.1])
        report = evaluate_accuracy(exact, exact.copy(), k=3)
        assert report.kendall == pytest.approx(1.0)
        assert report.precision == 1.0
        assert report.rag == pytest.approx(1.0)
        assert report.l1_similarity == pytest.approx(1.0)

    def test_as_dict_columns(self):
        report = AccuracyReport(0.9, 0.8, 0.99, 0.95)
        assert list(report.as_dict()) == [
            "Kendall",
            "Precision",
            "RAG",
            "L1 similarity",
        ]

    def test_average(self):
        a = AccuracyReport(1.0, 1.0, 1.0, 1.0)
        b = AccuracyReport(0.0, 0.5, 0.8, 0.6)
        avg = AccuracyReport.average([a, b])
        assert avg.kendall == pytest.approx(0.5)
        assert avg.precision == pytest.approx(0.75)
        assert avg.rag == pytest.approx(0.9)
        assert avg.l1_similarity == pytest.approx(0.8)

    def test_average_empty_rejected(self):
        with pytest.raises(ValueError):
            AccuracyReport.average([])
