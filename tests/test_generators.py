"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    bibliographic_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    social_graph,
    star_graph,
)


class TestBibliographicGraph:
    def test_node_layout(self, small_bib):
        graph = small_bib.graph
        total = small_bib.num_authors + small_bib.num_papers + small_bib.num_venues
        assert graph.num_nodes == total
        assert small_bib.author_node(0) == 0
        assert small_bib.paper_node(0) == small_bib.num_authors
        assert small_bib.venue_node(0) == small_bib.num_authors + small_bib.num_papers

    def test_node_kind(self, small_bib):
        assert small_bib.node_kind(0) == "author"
        assert small_bib.node_kind(small_bib.paper_node(0)) == "paper"
        assert small_bib.node_kind(small_bib.venue_node(0)) == "venue"

    def test_undirected(self, small_bib):
        graph = small_bib.graph
        for src, dst in list(graph.edges())[:200]:
            assert graph.has_edge(dst, src)

    def test_tripartite(self, small_bib):
        # Papers connect only to authors and venues; authors/venues only to papers.
        graph = small_bib.graph
        for paper in range(small_bib.num_papers):
            node = small_bib.paper_node(paper)
            for nbr in graph.out_neighbors(node):
                assert small_bib.node_kind(int(nbr)) in ("author", "venue")
        for author in range(small_bib.num_authors):
            for nbr in graph.out_neighbors(author):
                assert small_bib.node_kind(int(nbr)) == "paper"

    def test_every_paper_has_venue_and_author(self, small_bib):
        graph = small_bib.graph
        for paper in range(small_bib.num_papers):
            kinds = {
                small_bib.node_kind(int(v))
                for v in graph.out_neighbors(small_bib.paper_node(paper))
            }
            assert "venue" in kinds
            assert "author" in kinds

    def test_years_sorted_and_in_range(self, small_bib):
        years = small_bib.paper_years
        assert years.size == small_bib.num_papers
        assert np.all(np.diff(years) >= 0)
        assert years.min() >= 1994 and years.max() <= 2010

    def test_deterministic(self):
        a = bibliographic_graph(num_authors=30, num_papers=50, num_venues=5, seed=9)
        b = bibliographic_graph(num_authors=30, num_papers=50, num_venues=5, seed=9)
        assert a.graph == b.graph
        assert np.array_equal(a.paper_years, b.paper_years)

    def test_seed_changes_graph(self):
        a = bibliographic_graph(num_authors=30, num_papers=50, num_venues=5, seed=1)
        b = bibliographic_graph(num_authors=30, num_papers=50, num_venues=5, seed=2)
        assert a.graph != b.graph

    def test_rejects_empty_class(self):
        with pytest.raises(ValueError):
            bibliographic_graph(num_authors=0, num_papers=10, num_venues=2)

    def test_rejects_bad_year_range(self):
        with pytest.raises(ValueError):
            bibliographic_graph(
                num_authors=5, num_papers=5, num_venues=2, year_range=(2010, 1994)
            )

    def test_skewed_author_degrees(self):
        bib = bibliographic_graph(num_authors=300, num_papers=900, num_venues=20, seed=4)
        author_degrees = bib.graph.out_degrees[: bib.num_authors]
        # Zipf productivity: the busiest author far exceeds the median.
        assert author_degrees.max() >= 5 * max(np.median(author_degrees), 1)


class TestSocialGraph:
    def test_no_dangling_nodes(self, small_social):
        assert int((small_social.out_degrees == 0).sum()) == 0

    def test_deterministic(self):
        a = social_graph(num_nodes=100, seed=3)
        b = social_graph(num_nodes=100, seed=3)
        assert a == b

    def test_directed_not_fully_reciprocal(self):
        graph = social_graph(num_nodes=300, reciprocity=0.3, seed=1)
        one_way = sum(1 for s, d in graph.edges() if not graph.has_edge(d, s))
        assert one_way > 0

    def test_full_reciprocity(self):
        graph = social_graph(num_nodes=120, reciprocity=1.0, seed=1)
        for src, dst in graph.edges():
            assert graph.has_edge(dst, src)

    def test_preferential_attachment_skew(self):
        graph = social_graph(num_nodes=800, seed=2)
        in_degrees = graph.in_degrees()
        assert in_degrees.max() >= 10 * max(np.median(in_degrees), 1)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            social_graph(num_nodes=1)

    def test_rejects_bad_reciprocity(self):
        with pytest.raises(ValueError):
            social_graph(num_nodes=10, reciprocity=1.5)

    def test_no_self_loops(self, small_social):
        for src, dst in small_social.edges():
            assert src != dst


class TestSmallTopologies:
    def test_cycle(self):
        graph = cycle_graph(4)
        assert sorted(graph.edges()) == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_path(self):
        graph = path_graph(3)
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]
        assert graph.out_degree(2) == 0

    def test_star(self):
        graph = star_graph(3)
        assert graph.out_degree(0) == 3
        assert all(graph.has_edge(leaf, 0) for leaf in (1, 2, 3))

    def test_complete(self):
        graph = complete_graph(4)
        assert graph.num_edges == 12

    def test_erdos_renyi_bounds(self):
        graph = erdos_renyi_graph(30, 0.2, seed=1)
        assert graph.num_nodes == 30
        assert 0 < graph.num_edges < 30 * 29
        for src, dst in graph.edges():
            assert src != dst

    def test_erdos_renyi_p_zero_and_one(self):
        assert erdos_renyi_graph(10, 0.0).num_edges == 0
        assert erdos_renyi_graph(10, 1.0).num_edges == 90

    def test_erdos_renyi_rejects_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(5, 1.5)
