"""The query-family registry: every served analysis behind one seam.

The stack's original central assumption — "a query is a PPV request" —
is inverted here: a query is a *family-tagged* :class:`QuerySpec`, and a
:class:`QueryFamily` descriptor tells the stack everything it needs to
serve that family end to end:

* **capability probe** (:meth:`QueryFamily.supports`) — can this engine
  answer the family at all?  The service refuses unsupported specs with
  :class:`UnsupportedFamilyError`, which the TCP front-end and the shard
  router surface as the structured ``unsupported_family`` wire error.
* **spec validation** (:meth:`QueryFamily.validate`) — family-specific
  parameter checks, run at admission on the caller's thread.
* **batch kernel adapter** (:meth:`QueryFamily.plan` /
  :meth:`QueryFamily.group_key` / :meth:`QueryFamily.run_group` /
  :meth:`QueryFamily.assemble`) — how specs decompose into engine
  tasks, which tasks may share one engine batch, and how one coalesced
  group actually executes.
* **cacheability rules** (:meth:`QueryFamily.cache_key`) — which tasks
  the :class:`~repro.serving.cache.PopularityCache` may serve; the
  service prefixes every key with the family name, so families can
  never collide in the cache.
* **wire codec** (:meth:`QueryFamily.decode_request` /
  :meth:`QueryFamily.encode_result`) — the ``query`` verb's request
  fields and response payload for this family.

Registering a family (:func:`register_family`) therefore buys it the
whole serving stack for free: coalescing, popularity caching, the
latency-histogram stats, the TCP server, and capability-aware routing
through the shard router.

Built-ins
---------
``ppv`` and ``top_k`` re-express the original PPV paths — same task
planning, same group keys, same cache keys (modulo the family prefix),
same wire payloads — so their served results stay bitwise (disk) /
1e-12 (memory) equal to the pre-registry code.  ``hitting``
(:func:`repro.core.hitting.scheduled_hitting`) and ``reachability``
(:func:`repro.core.reachability.reachability_query`) are the first
genuinely new families: both need direct graph access, so they run on
the memory backend and are refused with the structured error elsewhere.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.batch import batch_safe
from repro.core.hitting import DEFAULT_BETA, scheduled_hitting
from repro.core.linearity import combine_results
from repro.core.query import (
    QueryResult,
    StopAfterIterations,
    StopAfterTime,
    StopAtL1Error,
    any_of,
)
from repro.core.reachability import (
    DEFAULT_MAX_TOUR_LENGTH,
    reachability_query,
)
from repro.core.topk import top_k_result
from repro.graph.pagerank import DEFAULT_ALPHA
from repro.serving.spec import DEFAULT_TOPK_BUDGET, QuerySpec
from repro.storage.disk_engine import DiskQueryResult, DiskTopKResult

MAX_SERVED_TOUR_LENGTH = 12
"""Hard ceiling on served ``reachability`` tour length: enumeration is
exponential, so longer requests are refused at validation."""


class UnsupportedFamilyError(ValueError):
    """The engine behind a service cannot answer this query family.

    Carries ``family`` and ``backend`` so transports can render the
    structured ``unsupported_family`` wire error; subclasses
    ``ValueError`` so family-unaware callers still see a plain request
    failure rather than a crash.
    """

    def __init__(self, family: str, backend: str) -> None:
        super().__init__(
            f"backend {backend!r} does not support query family "
            f"{family!r}"
        )
        self.family = family
        self.backend = backend


class FamilyTask:
    """One single-node engine task planned from a spec."""

    __slots__ = ("node", "kind", "stop", "result")

    def __init__(self, node: int, kind: str, stop=None) -> None:
        self.node = node
        self.kind = kind  # "stop" | "topk" | the family's own kinds
        self.stop = stop  # resolved StoppingCondition (kind == "stop")
        self.result = None


def _nodes_from_request(request: dict):
    """The ``node``/``nodes`` field shared by every family's decoder."""
    nodes = request.get("nodes", request.get("node"))
    if nodes is None:
        raise ValueError('request needs "node" or "nodes"')
    return nodes


def _encode_scored(spec: QuerySpec, result, top: int) -> dict:
    """The PPV-shaped response payload (plain and certified top-k).

    Byte-identical to the pre-registry ``render_result``: no ``family``
    key, so existing clients and recorded payloads keep matching.
    """
    payload: dict = {"nodes": list(spec.nodes)}
    inner = result
    if hasattr(result, "cluster_faults"):  # disk result wrappers
        payload["cluster_faults"] = result.cluster_faults
        payload["hub_reads"] = result.hub_reads
        if result.truncated:
            payload["truncated"] = True
        inner = result.topk if hasattr(result, "topk") else result.result
    payload["iterations"] = int(inner.iterations)
    payload["l1_error"] = float(inner.l1_error)
    if hasattr(inner, "certified"):  # certified top-k
        payload["certified"] = bool(inner.certified)
        payload["top"] = [
            [int(node), float(inner.scores[node])] for node in inner.nodes
        ]
    else:
        payload["top"] = [
            [int(node), float(inner.scores[node])]
            for node in inner.top_k(top)
        ]
    return payload


def _combine_ppv(spec: QuerySpec, tasks: Sequence[FamilyTask]):
    """Multi-node assembly via the Linearity Theorem (both backends)."""
    raw = [task.result for task in tasks]
    on_disk = isinstance(raw[0], DiskQueryResult)
    inners: list[QueryResult] = [r.result if on_disk else r for r in raw]
    combined = combine_results(spec.nodes, spec.weight_array(), inners)
    if spec.top_k is not None:
        topk = top_k_result(combined, spec.top_k)
        if on_disk:
            return DiskTopKResult(
                topk=topk,
                cluster_faults=sum(r.cluster_faults for r in raw),
                hub_reads=sum(r.hub_reads for r in raw),
                truncated=any(r.truncated for r in raw),
            )
        return topk
    if on_disk:
        return DiskQueryResult(
            result=combined,
            cluster_faults=sum(r.cluster_faults for r in raw),
            hub_reads=sum(r.hub_reads for r in raw),
            truncated=any(r.truncated for r in raw),
        )
    return combined


class QueryFamily:
    """Base descriptor: override the hooks your family needs.

    The defaults give a single-node, parameter-tupled family: one task
    per spec, coalescing and caching keyed by the spec's ``params``,
    request parameters read from the top-level fields named in
    :attr:`PARAM_NAMES`.  A minimal new family implements
    :meth:`run_group` (how a coalesced group executes) and
    :meth:`encode_result` (its wire payload), then registers itself.
    """

    name: str = ""
    streamable: bool = False
    """Whether ``PPVService.stream`` can serve this family (requires
    the engine's per-iteration callback contract, which is PPV-shaped)."""
    PARAM_NAMES: tuple[str, ...] = ()
    """Request fields :meth:`decode_request` lifts into ``params``."""

    def supports(self, engine) -> bool:
        """Whether ``engine`` can answer this family at all."""
        return True

    def validate(self, spec: QuerySpec, engine) -> None:
        """Family-specific admission checks (node range is the
        service's job and already done)."""

    def plan(self, spec: QuerySpec) -> list[FamilyTask]:
        """Decompose a spec into single-node engine tasks."""
        return [FamilyTask(node, self.name) for node in spec.nodes]

    def group_key(self, spec: QuerySpec, task: FamilyTask) -> tuple:
        """Tasks with equal keys may share one engine batch.

        The service prefixes the family name, so families never
        coalesce together regardless of what this returns.
        """
        return spec.params

    def cache_key(self, spec: QuerySpec, task: FamilyTask) -> tuple | None:
        """Popularity-cache key for one task, or ``None`` when the task
        must not be cached.  Prefixed with the family name by the
        service, so families can never alias each other's entries.
        """
        return (task.node,) + spec.params

    def run_group(
        self, engine, family_key: tuple,
        members: Sequence[tuple[QuerySpec, FamilyTask]],
    ) -> list:
        """Execute one coalesced group; one result per member, in order."""
        raise NotImplementedError(
            f"family {self.name!r} does not implement run_group"
        )

    def assemble(self, spec: QuerySpec, tasks: Sequence[FamilyTask]):
        """Fold task results into the spec's final result object."""
        return tasks[0].result

    def decode_request(self, request: dict) -> QuerySpec:
        """Translate a ``query``/``stream`` request into a spec.

        Raises plain ``ValueError``/``TypeError`` on bad fields; the
        protocol layer wraps them into the structured ``invalid`` error.
        """
        params = {
            name: request[name]
            for name in self.PARAM_NAMES
            if request.get(name) is not None
        }
        return QuerySpec(
            _nodes_from_request(request), family=self.name, params=params
        )

    def encode_result(self, spec: QuerySpec, result, top: int) -> dict:
        """The ``query`` verb's response payload for one result."""
        raise NotImplementedError(
            f"family {self.name!r} does not implement encode_result"
        )


class PPVFamily(QueryFamily):
    """Plain PPV under a stopping rule — the stack's original query."""

    name = "ppv"
    streamable = True

    def supports(self, engine) -> bool:
        return callable(getattr(engine, "query_batch", None))

    def plan(self, spec: QuerySpec) -> list[FamilyTask]:
        stop = spec.resolved_stop()
        return [FamilyTask(node, "stop", stop) for node in spec.nodes]

    def group_key(self, spec: QuerySpec, task: FamilyTask) -> tuple:
        try:
            hash(task.stop)
            return ("stop", task.stop)
        except TypeError:
            return ("stop-instance", id(task.stop))

    def cache_key(self, spec: QuerySpec, task: FamilyTask) -> tuple | None:
        try:
            if not batch_safe(task.stop):
                return None
            hash(task.stop)
        except TypeError:
            return None
        return ("stop", task.node, task.stop)

    def run_group(self, engine, family_key, members) -> list:
        nodes = [task.node for _spec, task in members]
        return engine.query_batch(nodes, members[0][1].stop)

    def assemble(self, spec: QuerySpec, tasks):
        if not spec.is_multi:
            return tasks[0].result
        return _combine_ppv(spec, tasks)

    def decode_request(self, request: dict) -> QuerySpec:
        if request.get("top_k") is not None:
            raise ValueError(
                'family "ppv" does not take top_k; use family "top_k"'
            )
        conditions = [StopAfterIterations(int(request.get("eta", 2)))]
        if request.get("target_error") is not None:
            conditions.append(StopAtL1Error(float(request["target_error"])))
        if request.get("time_limit") is not None:
            conditions.append(StopAfterTime(float(request["time_limit"])))
        stop = conditions[0] if len(conditions) == 1 else any_of(*conditions)
        return QuerySpec(
            _nodes_from_request(request),
            weights=request.get("weights"),
            stop=stop,
        )

    def encode_result(self, spec: QuerySpec, result, top: int) -> dict:
        return _encode_scored(spec, result, top)


class TopKFamily(QueryFamily):
    """Certified top-k: iterate until the top set is provably exact."""

    name = "top_k"
    streamable = True

    def supports(self, engine) -> bool:
        return callable(getattr(engine, "query_top_k_batch", None))

    def plan(self, spec: QuerySpec) -> list[FamilyTask]:
        if not spec.is_multi:
            return [FamilyTask(spec.nodes[0], "topk", spec.resolved_stop())]
        # Multi-node certified top-k: per-node sub-queries under the
        # certificate rule, combined then re-ranked in assemble().
        stop = spec.resolved_stop()
        return [FamilyTask(node, "stop", stop) for node in spec.nodes]

    def group_key(self, spec: QuerySpec, task: FamilyTask) -> tuple:
        if task.kind == "topk":
            return ("topk", spec.top_k, spec.top_k_budget)
        try:
            hash(task.stop)
            return ("stop", task.stop)
        except TypeError:
            return ("stop-instance", id(task.stop))

    def cache_key(self, spec: QuerySpec, task: FamilyTask) -> tuple | None:
        if task.kind == "topk":
            return ("topk", task.node, spec.top_k, spec.top_k_budget)
        try:
            if not batch_safe(task.stop):
                return None
            hash(task.stop)
        except TypeError:
            return None
        return ("stop", task.node, task.stop)

    def run_group(self, engine, family_key, members) -> list:
        nodes = [task.node for _spec, task in members]
        if family_key[0] == "topk":
            return engine.query_top_k_batch(
                nodes, family_key[1], family_key[2]
            )
        return engine.query_batch(nodes, members[0][1].stop)

    def assemble(self, spec: QuerySpec, tasks):
        if not spec.is_multi:
            return tasks[0].result
        return _combine_ppv(spec, tasks)

    def decode_request(self, request: dict) -> QuerySpec:
        if request.get("top_k") is None:
            raise ValueError('family "top_k" needs a "top_k" field')
        return QuerySpec(
            _nodes_from_request(request),
            weights=request.get("weights"),
            top_k=int(request["top_k"]),
            top_k_budget=int(request.get("budget", DEFAULT_TOPK_BUDGET)),
        )

    def encode_result(self, spec: QuerySpec, result, top: int) -> dict:
        return _encode_scored(spec, result, top)


class HittingFamily(QueryFamily):
    """Discounted hitting probability to a target node (Sect. 7).

    Served by :func:`repro.core.hitting.scheduled_hitting`, which needs
    the graph and the hub mask in memory — so only the memory backend
    supports it.  Same-``(target, beta, epsilon)`` queries in one
    coalesced group share a prime-push cache, the family's analogue of
    the PPV batch kernels' shared work.
    """

    name = "hitting"
    PARAM_NAMES = ("target", "beta", "max_levels", "epsilon", "delta")

    def supports(self, engine) -> bool:
        return (
            getattr(engine, "graph", None) is not None
            and getattr(engine, "index", None) is not None
        )

    def _config(self, spec: QuerySpec, engine=None) -> tuple:
        params = spec.params_dict()
        unknown = set(params) - set(self.PARAM_NAMES)
        if unknown:
            raise ValueError(
                f"unknown hitting parameter(s) {sorted(unknown)}; "
                f"known: {list(self.PARAM_NAMES)}"
            )
        if "target" not in params:
            raise ValueError('family "hitting" needs a "target" node')
        target = int(params["target"])
        beta = float(params.get("beta", DEFAULT_BETA))
        max_levels = int(params.get("max_levels", 16))
        epsilon = float(params.get("epsilon", 1e-9))
        delta = float(params.get("delta", 0.0))
        if not 0.0 < beta < 1.0:
            raise ValueError("beta must lie in (0, 1)")
        if max_levels < 0:
            raise ValueError("max_levels must be >= 0")
        if epsilon <= 0.0:
            raise ValueError("epsilon must be positive")
        if delta < 0.0:
            raise ValueError("delta must be >= 0")
        if engine is not None and not 0 <= target < engine.num_nodes:
            raise ValueError(f"hitting target {target} out of range")
        return (target, beta, max_levels, epsilon, delta)

    def validate(self, spec: QuerySpec, engine) -> None:
        if spec.is_multi:
            raise ValueError(
                'family "hitting" takes a single query node'
            )
        self._config(spec, engine)

    def group_key(self, spec: QuerySpec, task: FamilyTask) -> tuple:
        return self._config(spec)

    def cache_key(self, spec: QuerySpec, task: FamilyTask) -> tuple | None:
        return (task.node,) + self._config(spec)

    def run_group(self, engine, family_key, members) -> list:
        target, beta, max_levels, epsilon, delta = family_key
        # Prime hitting pushes are pure functions of (node, target, beta,
        # epsilon) on this graph/hub_mask, so the whole group shares one
        # push cache: results stay bitwise-equal to isolated calls while
        # coalesced same-target queries split the push work.
        push_cache: dict = {}
        return [
            scheduled_hitting(
                engine.graph,
                task.node,
                target,
                engine.index.hub_mask,
                beta=beta,
                max_levels=max_levels,
                epsilon=epsilon,
                delta=delta,
                push_cache=push_cache,
            )
            for _spec, task in members
        ]

    def encode_result(self, spec: QuerySpec, result, top: int) -> dict:
        return {
            "family": self.name,
            "nodes": list(spec.nodes),
            "target": int(spec.param("target")),
            "value": float(result.value),
            "remaining_mass": float(result.remaining_mass),
            "upper_bound": float(result.value + result.remaining_mass),
            "iterations": int(result.iterations),
            "history": [float(v) for v in result.history],
        }


class ReachabilityFamily(QueryFamily):
    """Truncated-tour PPV (Eq. 1-2) with its truncation certificate.

    The executable-specification enumeration of
    :func:`repro.core.reachability.brute_force_ppv`, served: exponential
    in ``max_length``, so the length is capped at
    :data:`MAX_SERVED_TOUR_LENGTH` and the family only runs where the
    graph is in memory.
    """

    name = "reachability"
    PARAM_NAMES = ("max_length", "alpha")

    def supports(self, engine) -> bool:
        return getattr(engine, "graph", None) is not None

    def _config(self, spec: QuerySpec) -> tuple:
        params = spec.params_dict()
        unknown = set(params) - set(self.PARAM_NAMES)
        if unknown:
            raise ValueError(
                f"unknown reachability parameter(s) {sorted(unknown)}; "
                f"known: {list(self.PARAM_NAMES)}"
            )
        max_length = int(params.get("max_length", DEFAULT_MAX_TOUR_LENGTH))
        alpha = float(params.get("alpha", DEFAULT_ALPHA))
        if not 0 <= max_length <= MAX_SERVED_TOUR_LENGTH:
            raise ValueError(
                "max_length must lie in "
                f"[0, {MAX_SERVED_TOUR_LENGTH}] (tour enumeration is "
                "exponential)"
            )
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        return (max_length, alpha)

    def validate(self, spec: QuerySpec, engine) -> None:
        if spec.is_multi:
            raise ValueError(
                'family "reachability" takes a single query node'
            )
        self._config(spec)

    def group_key(self, spec: QuerySpec, task: FamilyTask) -> tuple:
        return self._config(spec)

    def cache_key(self, spec: QuerySpec, task: FamilyTask) -> tuple | None:
        return (task.node,) + self._config(spec)

    def run_group(self, engine, family_key, members) -> list:
        max_length, alpha = family_key
        return [
            reachability_query(
                engine.graph, task.node, max_length, alpha=alpha
            )
            for _spec, task in members
        ]

    def encode_result(self, spec: QuerySpec, result, top: int) -> dict:
        return {
            "family": self.name,
            "nodes": list(spec.nodes),
            "max_length": int(result.max_length),
            "alpha": float(result.alpha),
            "truncation_bound": float(result.truncation_bound),
            "top": [
                [int(node), float(score)]
                for node, score in result.top_k(top)
            ],
        }


# --------------------------------------------------------------------- #
# Registry

_FAMILIES: dict[str, QueryFamily] = {}


def register_family(family: QueryFamily) -> None:
    """Register (or replace) a family descriptor under its name."""
    if not family.name:
        raise ValueError("a query family needs a non-empty name")
    _FAMILIES[family.name] = family


def resolve_family(name: str) -> QueryFamily:
    """The family registered under ``name``.

    Raises
    ------
    KeyError
        With the list of known families, if ``name`` is unknown.
    """
    try:
        return _FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown query family {name!r}; registered: "
            f"{sorted(_FAMILIES)}"
        ) from None


def available_families() -> tuple[str, ...]:
    """Names of all registered families, sorted."""
    return tuple(sorted(_FAMILIES))


def supported_families(engine) -> tuple[str, ...]:
    """Names of the registered families ``engine`` can answer, sorted."""
    return tuple(
        name
        for name in available_families()
        if _FAMILIES[name].supports(engine)
    )


register_family(PPVFamily())
register_family(TopKFamily())
register_family(HittingFamily())
register_family(ReachabilityFamily())
