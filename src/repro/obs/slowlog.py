"""The slow-query log: every query slower than a threshold, with its
cost counters and (when traced) its span tree.

:class:`SlowQueryLog` is a bounded ring like the tracer's — the service
records an entry from the latency done-callback whenever a query's
submit-to-resolve time crosses ``threshold_seconds``.  Entries carry the
query's family, nodes, elapsed seconds, batch size, cache hits, and the
engine-reported cost counters (:func:`cost_counters`: iterations,
cluster faults, hub reads).  Traced queries also carry their trace id;
:meth:`SlowQueryLog.entries` resolves that id against a tracer at read
time (spans finish after the result resolves, so attaching them lazily
is what makes the "full span tree" in the log possible).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional


def cost_counters(result) -> dict:
    """The engine cost counters a served result exposes, duck-typed.

    Disk results carry ``cluster_faults``/``hub_reads``; snapshots and
    memory results carry ``iterations``; wrapped results (top-k over a
    full vector) nest them one level down.
    """
    out: dict = {}
    sources = (
        result,
        getattr(result, "result", None),
        getattr(result, "snapshot", None),
    )
    for name in ("iterations", "cluster_faults", "hub_reads", "truncated"):
        for source in sources:
            if source is None:
                continue
            value = getattr(source, name, None)
            if value is not None:
                out[name] = value if name == "truncated" else int(value)
                break
    return out


class SlowQueryLog:
    """A bounded, optionally file-backed ring of slow-query entries."""

    def __init__(
        self,
        threshold_seconds: float,
        capacity: int = 128,
        path=None,
    ) -> None:
        threshold = float(threshold_seconds)
        if threshold < 0:
            raise ValueError("slow-query threshold must be >= 0")
        self.threshold = threshold
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=max(1, int(capacity)))
        self._path = path
        self._file = None
        self.recorded = 0

    def record(self, entry: dict) -> None:
        """Append one slow-query entry (adds ``at`` if missing)."""
        entry.setdefault("at", time.time())
        with self._lock:
            self._ring.append(entry)
            self.recorded += 1
            if self._path is not None:
                if self._file is None:
                    import json

                    self._json = json
                    self._file = open(
                        self._path, "a", encoding="utf-8", buffering=1
                    )
                self._file.write(
                    self._json.dumps(entry, default=str, sort_keys=True)
                    + "\n"
                )

    def entries(self, tracer=None) -> list[dict]:
        """Recorded entries, oldest first, as fresh copies.

        With ``tracer`` given, every entry that carries a ``trace`` id
        gains a ``spans`` list holding that trace's recorded span tree.
        """
        with self._lock:
            records = [dict(entry) for entry in self._ring]
        if tracer is not None:
            for entry in records:
                trace_id = entry.get("trace")
                if trace_id is not None:
                    entry["spans"] = tracer.spans(trace_id=trace_id)
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
