"""The four accuracy-moderated configurations (Fig. 5).

The paper compares all three methods under configurations tuned so that
they reach *similar accuracy*, making online/offline cost comparable
(Sect. 6.1).  Parameters here are re-calibrated for our scaled-down
graphs: ``num_hubs`` is shared, and each method keeps its private knob
(HubRankP's ``push`` residual threshold, MonteCarlo's samples-per-query
``N``, FastPPV's iteration budget ``eta``).  EXPERIMENTS.md records the
resulting accuracy table (our Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import DEFAULT_DELTA


@dataclass(frozen=True)
class Config:
    """One accuracy-moderated configuration (a row of Fig. 5)."""

    name: str
    dataset: str  # "dblp" or "livejournal"
    num_hubs: int
    hubrank_push: float
    montecarlo_samples: int
    fastppv_eta: int
    fastppv_delta: float = 0.001

    def __post_init__(self) -> None:
        if self.dataset not in ("dblp", "livejournal"):
            raise ValueError(f"unknown dataset {self.dataset!r}")


#: Fig. 5 analogue.  Paper values, for reference:
#:   I:   DBLP |H|=20K,  push=0.11, N=120K, eta=2
#:   II:  DBLP |H|=30K,  push=0.13, N=40K,  eta=1
#:   III: LJ   |H|=150K, push=0.20, N=200K, eta=3
#:   IV:  LJ   |H|=200K, push=0.29, N=10K,  eta=1
CONFIGS: dict[str, Config] = {
    "I": Config(
        name="I",
        dataset="dblp",
        num_hubs=150,
        hubrank_push=3e-4,
        montecarlo_samples=5000,
        fastppv_eta=2,
    ),
    "II": Config(
        name="II",
        dataset="dblp",
        num_hubs=300,
        hubrank_push=6e-4,
        montecarlo_samples=1500,
        fastppv_eta=1,
    ),
    "III": Config(
        name="III",
        dataset="livejournal",
        num_hubs=300,
        hubrank_push=4e-4,
        montecarlo_samples=8000,
        fastppv_eta=3,
    ),
    "IV": Config(
        name="IV",
        dataset="livejournal",
        num_hubs=600,
        hubrank_push=1.5e-3,
        montecarlo_samples=1500,
        fastppv_eta=1,
    ),
}
