"""CoalescingScheduler unit behaviour: executor-failure propagation
(no silently dropped batches), per-window kick semantics, and the
adaptive (``max_delay="auto"``) coalescing window."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serving.scheduler import (
    AUTO_DELAY_MAX,
    AUTO_DELAY_MIN,
    AUTO_DELAY_MULTIPLIER,
    DEFAULT_MAX_DELAY,
    CoalescingScheduler,
)


class TestExecutorFailure:
    def test_on_error_receives_the_failed_batch(self):
        failed: list[tuple[list, BaseException]] = []

        def execute(jobs):
            raise RuntimeError("executor exploded")

        scheduler = CoalescingScheduler(
            execute,
            max_delay=0.0,
            on_error=lambda jobs, error: failed.append((jobs, error)),
        )
        try:
            scheduler.submit_many(["a", "b"])
            with pytest.raises(RuntimeError, match="executor exploded"):
                scheduler.flush(timeout=5)
        finally:
            scheduler.close()
        assert len(failed) == 1
        jobs, error = failed[0]
        assert jobs == ["a", "b"]
        assert isinstance(error, RuntimeError)

    def test_flush_reraises_without_on_error(self):
        def execute(jobs):
            raise ValueError("no net")

        scheduler = CoalescingScheduler(execute, max_delay=0.0)
        try:
            scheduler.submit("job")
            with pytest.raises(ValueError, match="no net"):
                scheduler.flush(timeout=5)
            # The error is reported exactly once; the scheduler survives.
            scheduler.flush(timeout=5)
        finally:
            scheduler.close()

    def test_scheduler_keeps_draining_after_a_failure(self):
        served: list = []

        def execute(jobs):
            if "poison" in jobs:
                raise RuntimeError("poisoned batch")
            served.extend(jobs)

        scheduler = CoalescingScheduler(execute, max_delay=0.0)
        try:
            scheduler.submit("poison")
            with pytest.raises(RuntimeError):
                scheduler.flush(timeout=5)
            scheduler.submit("healthy")
            scheduler.flush(timeout=5)
        finally:
            scheduler.close()
        assert served == ["healthy"]

    def test_on_error_exception_does_not_mask_the_cause(self):
        def execute(jobs):
            raise RuntimeError("root cause")

        def bad_on_error(jobs, error):
            raise ZeroDivisionError("handler broke too")

        scheduler = CoalescingScheduler(
            execute, max_delay=0.0, on_error=bad_on_error
        )
        try:
            scheduler.submit("job")
            with pytest.raises(RuntimeError, match="root cause"):
                scheduler.flush(timeout=5)
        finally:
            scheduler.close()


class TestKickWindow:
    def test_kicked_burst_drains_back_to_back(self):
        """One kick covers the whole burst queued before it: a burst
        longer than ``max_batch`` must not sit through a fresh
        ``max_delay`` window for its tail batch (the query_many shape:
        submit burst, kick once, wait on the handles)."""
        served = threading.Event()
        count = [0]

        def execute(jobs):
            count[0] += len(jobs)
            if count[0] == 6:
                served.set()

        scheduler = CoalescingScheduler(execute, max_batch=4, max_delay=2.0)
        try:
            started = time.monotonic()
            scheduler.submit_many([1, 2, 3, 4, 5, 6])
            scheduler.kick()
            assert served.wait(timeout=5)
            elapsed = time.monotonic() - started
        finally:
            scheduler.close()
        # Both windows ([1-4] and [5, 6]) drain immediately — well under
        # the 2s coalescing delay a stranded tail window would pay.
        assert elapsed < 1.0, f"kicked burst took {elapsed:.2f}s"

    def test_kick_does_not_leak_onto_later_traffic(self):
        """A kick expires once the jobs it covered are served; traffic
        submitted after it must coalesce normally again (pre-fix, the
        stale flag was cleared only when the queue fully drained, so a
        kick during a busy burst disabled coalescing for everything
        arriving meanwhile)."""
        batches: list[list] = []
        release_a = threading.Event()

        def execute(jobs):
            batches.append(list(jobs))
            if jobs[0] == "a":
                release_a.wait(timeout=5)

        def wait_for_batches(n):
            deadline = time.monotonic() + 5
            while len(batches) < n and time.monotonic() < deadline:
                time.sleep(0.005)
            assert len(batches) >= n

        scheduler = CoalescingScheduler(execute, max_batch=2, max_delay=30.0)
        try:
            scheduler.submit("a")
            scheduler.kick()
            wait_for_batches(1)  # the drain is now blocked inside "a"
            # Queued while "a" executes: a kicked pair plus one straggler
            # submitted *after* the kick — the queue is never empty
            # between the pops, which is exactly where the pre-fix flag
            # stayed stale.
            scheduler.submit_many(["b", "x"])
            scheduler.kick()
            scheduler.submit("c")
            release_a.set()
            wait_for_batches(2)  # [b, x] goes out back to back
            time.sleep(0.2)
            # c was submitted after the kick: it must be held open in a
            # coalescing window, not drained immediately.
            assert batches == [["a"], ["b", "x"]]
            scheduler.kick()
            scheduler.flush(timeout=5)
        finally:
            scheduler.close()
        assert batches == [["a"], ["b", "x"], ["c"]]

    def test_flush_is_not_stalled_by_reopened_windows(self):
        # A flush over more jobs than max_batch must not let the drain
        # re-enter a full max_delay coalescing wait between batches: the
        # in-loop kick has to wake the drain, not just set the flag.
        batches: list[list] = []

        scheduler = CoalescingScheduler(
            lambda jobs: batches.append(list(jobs)),
            max_batch=2,
            max_delay=2.0,
        )
        try:
            scheduler.submit_many([1, 2, 3])
            scheduler.flush(timeout=1.0)  # pre-fix: TimeoutError
        finally:
            scheduler.close()
        assert sorted(sum(batches, [])) == [1, 2, 3]

    def test_kick_during_execute_closes_the_next_window(self):
        release = threading.Event()
        batches: list[list] = []

        def execute(jobs):
            batches.append(list(jobs))
            if len(batches) == 1:
                release.wait(timeout=5)

        scheduler = CoalescingScheduler(execute, max_batch=4, max_delay=30.0)
        try:
            scheduler.submit("first")
            scheduler.kick()  # close window one
            deadline = time.monotonic() + 5
            while not batches and time.monotonic() < deadline:
                time.sleep(0.005)
            scheduler.submit("second")
            scheduler.kick()  # arrives while execute runs
            release.set()
            scheduler.flush(timeout=5)
        finally:
            scheduler.close()
        assert batches == [["first"], ["second"]]


class TestAdaptiveDelay:
    """``max_delay="auto"``: the EWMA-tuned coalescing window."""

    def test_rejects_other_strings(self):
        with pytest.raises(ValueError, match="auto"):
            CoalescingScheduler(lambda jobs: None, max_delay="adaptive")

    def test_static_path_is_pinned_unchanged(self):
        """A numeric max_delay must be entirely unaffected by the
        arrival-rate estimator: the effective window IS the configured
        value, before and after traffic (the ROADMAP follow-up's
        compatibility contract)."""
        scheduler = CoalescingScheduler(lambda jobs: None, max_delay=0.002)
        try:
            assert scheduler.effective_max_delay == 0.002
            for _ in range(20):
                scheduler.submit("job")
            scheduler.flush(timeout=5)
            assert scheduler.effective_max_delay == 0.002
            # The estimator is not even fed on the static path.
            assert scheduler._ewma_gap is None
        finally:
            scheduler.close()

    def test_auto_starts_from_the_static_default(self):
        scheduler = CoalescingScheduler(lambda jobs: None, max_delay="auto")
        try:
            assert scheduler.max_delay == "auto"
            assert scheduler.effective_max_delay == DEFAULT_MAX_DELAY
        finally:
            scheduler.close()

    def test_dense_traffic_opens_a_proportional_window(self):
        scheduler = CoalescingScheduler(lambda jobs: None, max_delay="auto")
        try:
            # Synthetic arrivals 0.3 ms apart (fed directly so the test
            # is immune to wall-clock jitter).
            with scheduler._cond:
                for k in range(50):
                    scheduler._observe_arrival(k * 0.0003)
            expected = AUTO_DELAY_MULTIPLIER * scheduler._ewma_gap
            assert scheduler.effective_max_delay == pytest.approx(expected)
            assert (
                AUTO_DELAY_MIN
                <= scheduler.effective_max_delay
                <= AUTO_DELAY_MAX
            )
        finally:
            scheduler.close()

    def test_very_dense_traffic_clamps_to_the_floor(self):
        scheduler = CoalescingScheduler(lambda jobs: None, max_delay="auto")
        try:
            with scheduler._cond:
                for k in range(50):
                    scheduler._observe_arrival(k * 1e-6)
            assert scheduler.effective_max_delay == AUTO_DELAY_MIN
        finally:
            scheduler.close()

    def test_sparse_traffic_disables_the_wait(self):
        """Traffic slower than the latency budget gains nothing from
        coalescing, so the window collapses to zero instead of taxing
        every request with the full cap."""
        scheduler = CoalescingScheduler(lambda jobs: None, max_delay="auto")
        try:
            with scheduler._cond:
                for k in range(10):
                    scheduler._observe_arrival(k * 0.5)
            assert scheduler.effective_max_delay == 0.0
        finally:
            scheduler.close()

    def test_dense_then_sparse_reaches_the_zero_wait_branch(self):
        """After dense traffic, a closed-loop/sparse client must get
        back to the no-wait regime within a handful of requests — the
        clamped EWMA approaches the cap asymptotically, so the sparse
        test has to trigger below it."""
        scheduler = CoalescingScheduler(lambda jobs: None, max_delay="auto")
        try:
            with scheduler._cond:
                now = 0.0
                for _ in range(50):
                    now += 0.0003
                    scheduler._observe_arrival(now)
                assert scheduler._effective_delay() > 0.0
                zero_after = None
                for k in range(1, 31):
                    now += 0.05  # sparse: 50 ms between requests
                    scheduler._observe_arrival(now)
                    if scheduler._effective_delay() == 0.0:
                        zero_after = k
                        break
                assert zero_after is not None and zero_after <= 15
        finally:
            scheduler.close()

    def test_idle_spell_does_not_poison_the_estimator(self):
        """An idle gap is clamped to the cap before entering the EWMA:
        when dense traffic resumes, the window must recover within a
        few arrivals instead of staying disabled while a minutes-long
        observation decays out of the average."""
        scheduler = CoalescingScheduler(lambda jobs: None, max_delay="auto")
        try:
            with scheduler._cond:
                now = 0.0
                for _ in range(50):
                    now += 0.0003
                    scheduler._observe_arrival(now)
                now += 600.0  # ten minutes of silence
                scheduler._observe_arrival(now)
                recovered_after = None
                for k in range(1, 11):
                    now += 0.0003
                    scheduler._observe_arrival(now)
                    if scheduler._effective_delay() > 0.0:
                        recovered_after = k
                        break
                assert recovered_after is not None and recovered_after <= 5
        finally:
            scheduler.close()

    def test_ewma_tracks_a_rate_change(self):
        scheduler = CoalescingScheduler(lambda jobs: None, max_delay="auto")
        try:
            with scheduler._cond:
                now = 0.0
                for _ in range(50):
                    now += 0.5
                    scheduler._observe_arrival(now)
                assert scheduler._effective_delay() == 0.0
                for _ in range(100):
                    now += 0.0005
                    scheduler._observe_arrival(now)
                assert 0.0 < scheduler._effective_delay() <= AUTO_DELAY_MAX
        finally:
            scheduler.close()

    def test_burst_counts_as_one_arrival(self):
        scheduler = CoalescingScheduler(lambda jobs: None, max_delay="auto")
        try:
            scheduler.submit_many(list(range(64)))
            # One submit_many call: no inter-arrival gap observed yet.
            assert scheduler._ewma_gap is None
            scheduler.flush(timeout=5)
        finally:
            scheduler.close()

    def test_adaptive_delay_serves_correctly_end_to_end(self):
        served: list = []
        scheduler = CoalescingScheduler(served.extend, max_delay="auto")
        try:
            scheduler.submit_many([1, 2, 3])
            scheduler.submit(4)
            scheduler.flush(timeout=5)
        finally:
            scheduler.close()
        assert sorted(served) == [1, 2, 3, 4]

    def test_service_passes_auto_through(self, small_social,
                                         small_social_index):
        # Thin integration check: the facade hands the mode to its
        # scheduler and still serves correctly.
        from repro.serving import PPVService, QuerySpec

        with PPVService.open(
            small_social_index, graph=small_social, max_delay="auto"
        ) as service:
            assert service._scheduler.max_delay == "auto"
            result = service.query(QuerySpec(7))
            assert result.iterations == 2
