"""Shared benchmark plumbing.

Every bench both *prints* its paper-shaped table (visible with ``-s`` or
in the pytest summary on failure) and *saves* it under
``benchmarks/results/`` so EXPERIMENTS.md can quote the latest run.

``BENCH_SCALE`` (env var ``REPRO_BENCH_SCALE``, default 0.4) scales the
evaluation graphs; 1.0 reproduces the sizes quoted in DESIGN.md at the
cost of a few extra minutes.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments.report import Table

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "20"))
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def emit(name: str, *tables: Table) -> None:
    """Print tables and persist them to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    rendered = "\n\n".join(table.render() for table in tables)
    print("\n" + rendered)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")
