"""Score accuracy: RAG and L1 similarity.

RAG (Relative Average Goodness, from the HubRank line of work [6]) asks:
if a user consumes the *approximate* top-k, how much exact PPV mass do
they get relative to consuming the *exact* top-k?  L1 similarity is the
complement of the L1 error, reported so that "larger is better" holds for
every column of the paper's tables.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.ranking import top_k_nodes


def rag(exact: np.ndarray, estimate: np.ndarray, k: int = 10) -> float:
    """Relative Average Goodness over the top-k.

    ``RAG = sum of exact scores over the estimated top-k / sum of exact
    scores over the exact top-k``.  Equals 1 when the estimated top-k
    contains nodes exactly as good as the true best ones (even if in a
    different order).
    """
    exact = np.asarray(exact, dtype=float)
    numerator = exact[top_k_nodes(estimate, k)].sum()
    denominator = exact[top_k_nodes(exact, k)].sum()
    if denominator == 0.0:
        return 1.0
    return float(numerator / denominator)


def l1_error(exact: np.ndarray, estimate: np.ndarray) -> float:
    """``||exact - estimate||_1``."""
    return float(np.abs(np.asarray(exact) - np.asarray(estimate)).sum())


def l1_similarity(exact: np.ndarray, estimate: np.ndarray) -> float:
    """``1 - L1 error`` — the paper's presentation of score fidelity."""
    return 1.0 - l1_error(exact, estimate)
