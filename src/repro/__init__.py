"""FastPPV: incremental and accuracy-aware Personalized PageRank.

A from-scratch reproduction of Zhu, Fang, Chang, Ying (PVLDB 2013),
"Incremental and Accuracy-Aware Personalized PageRank through Scheduled
Approximation".

Quickstart
----------
>>> from repro import (
...     social_graph, select_hubs, build_index, FastPPV, StopAfterIterations,
... )
>>> graph = social_graph(num_nodes=500, seed=1)
>>> hubs = select_hubs(graph, num_hubs=50)
>>> index = build_index(graph, hubs)
>>> engine = FastPPV(graph, index)
>>> result = engine.query(0, stop=StopAfterIterations(2))
>>> result.l1_error < 0.2
True

See ``README.md`` for the architecture overview and ``DESIGN.md`` for the
paper-to-module map.
"""

from repro.core import (
    BatchFastPPV,
    FastPPV,
    HubPolicy,
    PPVIndex,
    QueryResult,
    StopAfterIterations,
    StopAfterTime,
    StopAtL1Error,
    StopWhenCertified,
    TopKResult,
    any_of,
    autotune_hub_count,
    build_index,
    exact_ppv,
    exact_ppv_matrix,
    l1_error_bound,
    multi_node_ppv,
    query_time_l1_error,
    query_top_k,
    select_hubs,
)
from repro.graph import (
    DiGraph,
    GraphBuilder,
    bibliographic_graph,
    from_edges,
    from_weighted_edges,
    global_pagerank,
    read_edge_list,
    social_graph,
    write_edge_list,
)
from repro.serving import PPVService, QueryHandle, QuerySnapshot, QuerySpec


def _package_version() -> str:
    """The version, read once from installed package metadata; falls
    back to the in-tree constant when running straight from a source
    checkout (PYTHONPATH=src, nothing installed)."""
    try:
        from importlib.metadata import version

        return version("repro-fastppv")
    except Exception:
        return "1.1.0"


__version__ = _package_version()

__all__ = [
    "__version__",
    # graph
    "DiGraph",
    "GraphBuilder",
    "from_edges",
    "read_edge_list",
    "write_edge_list",
    "global_pagerank",
    "bibliographic_graph",
    "social_graph",
    # core
    "FastPPV",
    "BatchFastPPV",
    "PPVIndex",
    "QueryResult",
    "HubPolicy",
    "select_hubs",
    "build_index",
    "exact_ppv",
    "exact_ppv_matrix",
    "StopAfterIterations",
    "StopAtL1Error",
    "StopAfterTime",
    "any_of",
    "l1_error_bound",
    "query_time_l1_error",
    "multi_node_ppv",
    "query_top_k",
    "StopWhenCertified",
    "TopKResult",
    "autotune_hub_count",
    "from_weighted_edges",
    # serving
    "PPVService",
    "QuerySpec",
    "QueryHandle",
    "QuerySnapshot",
]
