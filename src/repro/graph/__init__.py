"""Graph substrate: compact CSR digraph, builders, I/O, PageRank, generators.

Everything in :mod:`repro` operates on :class:`~repro.graph.DiGraph`, an
immutable numpy-backed compressed-sparse-row directed graph.  Undirected
graphs (such as the paper's DBLP network) are represented by storing each
edge in both directions.
"""

from repro.graph.analysis import graph_stats
from repro.graph.build import GraphBuilder, from_edges, from_weighted_edges
from repro.graph.components import (
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    bibliographic_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    social_graph,
    star_graph,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.pagerank import global_pagerank
from repro.graph.sampling import edge_sample, snapshot_series

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "from_edges",
    "from_weighted_edges",
    "read_edge_list",
    "write_edge_list",
    "global_pagerank",
    "bibliographic_graph",
    "social_graph",
    "erdos_renyi_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "edge_sample",
    "snapshot_series",
    "graph_stats",
    "strongly_connected_components",
    "weakly_connected_components",
]
