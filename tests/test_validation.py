"""Tests for the index/result validators."""

import numpy as np
import pytest

from repro import FastPPV, StopAfterIterations, build_index
from repro.core.prime import PrimePPV
from repro.core.validation import (
    ValidationReport,
    validate_index_against_graph,
    validate_index_structure,
    validate_query_result,
)
from tests.conftest import FIG3_HUBS


class TestReport:
    def test_ok_semantics(self):
        report = ValidationReport(checks=3)
        assert report.ok
        report.add_problem("x")
        assert not report.ok

    def test_merge(self):
        a = ValidationReport(checks=1, problems=["a"])
        b = ValidationReport(checks=2)
        merged = a.merged(b)
        assert merged.checks == 3
        assert merged.problems == ["a"]


class TestStructuralValidation:
    def test_clean_index_passes(self, small_social_index):
        report = validate_index_structure(small_social_index)
        assert report.ok, report.problems
        assert report.checks > small_social_index.num_hubs

    def test_detects_wrong_source(self, fig1_graph):
        index = build_index(fig1_graph, FIG3_HUBS)
        entry = index.entries[FIG3_HUBS[0]]
        index.entries[FIG3_HUBS[0]] = PrimePPV(
            source=99,
            nodes=entry.nodes,
            scores=entry.scores,
            border_hubs=entry.border_hubs,
            border_masses=entry.border_masses,
        )
        report = validate_index_structure(index)
        assert not report.ok
        assert any("source" in p for p in report.problems)

    def test_detects_negative_score(self, fig1_graph):
        index = build_index(fig1_graph, FIG3_HUBS)
        entry = index.entries[FIG3_HUBS[0]]
        bad_scores = entry.scores.copy()
        bad_scores[0] = -0.5
        index.entries[FIG3_HUBS[0]] = PrimePPV(
            source=entry.source,
            nodes=entry.nodes,
            scores=bad_scores,
            border_hubs=entry.border_hubs,
            border_masses=entry.border_masses,
        )
        report = validate_index_structure(index)
        assert any("non-positive scores" in p for p in report.problems)

    def test_detects_non_hub_border(self, fig1_graph):
        index = build_index(fig1_graph, FIG3_HUBS)
        entry = index.entries[FIG3_HUBS[0]]
        index.entries[FIG3_HUBS[0]] = PrimePPV(
            source=entry.source,
            nodes=entry.nodes,
            scores=entry.scores,
            border_hubs=np.array([0]),  # node 0 is not a hub
            border_masses=np.array([0.1]),
        )
        report = validate_index_structure(index)
        assert any("not a hub" in p for p in report.problems)

    def test_detects_missing_entry(self, fig1_graph):
        index = build_index(fig1_graph, FIG3_HUBS)
        del index.entries[FIG3_HUBS[0]]
        report = validate_index_structure(index)
        assert any("disagree" in p for p in report.problems)


class TestGraphConsistency:
    def test_fresh_index_passes(self, small_social, small_social_index):
        report = validate_index_against_graph(
            small_social_index, small_social, sample=5, seed=1
        )
        assert report.ok, report.problems

    def test_detects_stale_index(self, small_social, small_social_index):
        from repro.core.dynamic import add_edges

        # Mutate the graph under the index: validation must notice for at
        # least some sampled hub (new edges land inside hub neighborhoods
        # with high probability; sample all hubs to be deterministic).
        edits = [(int(h), (int(h) + 7) % small_social.num_nodes)
                 for h in small_social_index.hubs[:5]]
        new_graph = add_edges(small_social, edits)
        report = validate_index_against_graph(
            small_social_index, new_graph,
            sample=small_social_index.num_hubs, seed=0,
        )
        assert not report.ok

    def test_detects_size_mismatch(self, fig1_graph, small_social_index):
        report = validate_index_against_graph(small_social_index, fig1_graph)
        assert not report.ok
        assert "covers" in report.problems[0]


class TestQueryResultValidation:
    def test_clean_result_passes(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        result = engine.query(12, stop=StopAfterIterations(2))
        report = validate_query_result(result)
        assert report.ok, report.problems

    def test_detects_mass_mismatch(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        result = engine.query(12, stop=StopAfterIterations(1))
        result.scores[0] += 0.5  # corrupt the estimate
        report = validate_query_result(result)
        assert any("Eq. 6" in p for p in report.problems)

    def test_detects_negative_entry(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        result = engine.query(12, stop=StopAfterIterations(1))
        result.scores[0] = -0.2
        result.error_history[-1] = 1.0 - float(result.scores.sum())
        report = validate_query_result(result)
        assert any("negative" in p for p in report.problems)

    def test_detects_bad_history(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        result = engine.query(12, stop=StopAfterIterations(2))
        result.error_history.insert(0, 0.0)  # breaks monotonicity + length
        report = validate_query_result(result)
        assert not report.ok
