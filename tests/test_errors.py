"""Unit tests for error bounds (Theorem 2) and query-time error (Eq. 6)."""

import numpy as np
import pytest

from repro import FastPPV, StopAfterIterations
from repro.core.errors import (
    iterations_for_error,
    l1_error_bound,
    query_time_l1_error,
    realized_l1_error,
)


class TestTheorem2Bound:
    def test_paper_worked_numbers(self):
        # Sect. 4.1: alpha = 0.15 gives phi(10) <= 0.143, phi(20) <= 0.0280,
        # phi(30) <= 0.00552.
        assert l1_error_bound(10, 0.15) == pytest.approx(0.143, abs=1e-3)
        assert l1_error_bound(20, 0.15) == pytest.approx(0.0280, abs=1e-4)
        assert l1_error_bound(30, 0.15) == pytest.approx(0.00552, abs=1e-5)

    def test_exponential_decay(self):
        bounds = [l1_error_bound(k, 0.15) for k in range(20)]
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(0.85) for r in ratios)

    def test_zero_iterations(self):
        assert l1_error_bound(0, 0.15) == pytest.approx(0.85**2)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            l1_error_bound(-1)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            l1_error_bound(3, alpha=0.0)

    def test_bound_holds_empirically(self, small_social, small_social_index):
        # The realized query-time error must respect the Theorem 2 bound.
        engine = FastPPV(small_social, small_social_index, delta=0.0)
        for eta in range(4):
            result = engine.query(21, stop=StopAfterIterations(eta))
            assert result.l1_error <= l1_error_bound(eta, small_social_index.alpha) + 1e-9


class TestQueryTimeError:
    def test_matches_definition(self):
        estimate = np.array([0.3, 0.2, 0.1])
        assert query_time_l1_error(estimate) == pytest.approx(0.4)

    def test_zero_for_full_distribution(self):
        assert query_time_l1_error(np.array([0.5, 0.5])) == pytest.approx(0.0)


class TestRealizedError:
    def test_basic(self):
        exact = np.array([0.6, 0.4])
        estimate = np.array([0.5, 0.3])
        assert realized_l1_error(exact, estimate) == pytest.approx(0.2)

    def test_agrees_with_query_time_for_underestimates(self):
        exact = np.array([0.7, 0.3])
        estimate = np.array([0.6, 0.2])  # entry-wise below exact
        assert realized_l1_error(exact, estimate) == pytest.approx(
            query_time_l1_error(estimate)
        )


class TestIterationsForError:
    def test_inverse_of_bound(self):
        for target in (0.2, 0.05, 0.01):
            k = iterations_for_error(target, alpha=0.15)
            assert l1_error_bound(k, 0.15) <= target
            if k > 0:
                assert l1_error_bound(k - 1, 0.15) > target

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            iterations_for_error(0.0)
        with pytest.raises(ValueError):
            iterations_for_error(1.0)
