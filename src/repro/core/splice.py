"""Sparse-matrix lowering of the PPV index (the batch splice kernel).

The online engine's inner loop (Algorithm 2, lines 8-12) splices the prime
PPV of every frontier hub into the running estimate.  Done one hub at a
time this is a Python loop over dict entries; done for a *batch* of
queries it is two sparse matrix products.  This module lowers a
:class:`~repro.core.index.PPVIndex` into that matrix form, built once and
cached on the index:

* ``scores`` — CSR ``(H, n)``: row ``r`` is the (clipped) prime PPV of hub
  ``hub_ids[r]`` **with the trivial-tour correction folded in**: the hub's
  own entry is stored as ``r^0_h(h) - alpha`` so that splicing a frontier
  arrival mass ``m`` via ``m @ scores`` reproduces the scalar engine's
  ``estimate += m * entry.scores; estimate[h] -= alpha * m`` in a single
  product (see :mod:`repro.core.query` for why the zero-length tour is
  removed).
* ``borders`` — CSR ``(H, H)``: row ``r`` holds the border arrival masses
  of hub ``hub_ids[r]``, with columns in *hub-row* space, so one frontier
  iteration of Theorem 4 for a whole batch is ``frontier @ borders``.
* ``work`` — per-hub splice cost (``nodes.size + border_hubs.size``), the
  scale-independent work units the scalar engine accounts per expansion.

With the two matrices, one FastPPV iteration over a batch of ``B`` queries
whose frontiers are stacked into a CSR matrix ``F`` of shape ``(B, H)`` is::

    estimate += (F_gated @ scores).toarray()   # splice + trivial-tour fix
    frontier  =  F_gated @ borders             # next arrival masses

where ``F_gated`` keeps only the entries passing the per-query ``delta``
gate of Algorithm 2, line 9.

The lowering is cached on the ``PPVIndex`` instance (attribute
``_splice_matrix``); indexes are treated as immutable once queried —
:func:`repro.core.dynamic.update_index` returns a *new* index, so the
cache can never go stale through the supported update path.  Call
:func:`invalidate_splice_cache` after mutating ``index.entries`` in place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.index import PPVIndex

_CACHE_ATTR = "_splice_matrix"


@dataclass(frozen=True)
class SpliceMatrix:
    """Matrix form of a PPV index (see module docstring).

    Attributes
    ----------
    hub_ids:
        Sorted hub node ids; position in this array is the hub's *row*
        in both matrices (and its column in ``borders``).
    scores:
        CSR ``(H, n)`` of clipped prime-PPV scores, trivial-tour
        corrected (the hub's own column holds ``score - alpha``).
    borders:
        CSR ``(H, H)`` of border arrival masses in hub-row space.
    work:
        ``int64 (H,)``: per-hub work units of one splice
        (``nodes.size + border_hubs.size``).
    """

    hub_ids: np.ndarray
    scores: sparse.csr_matrix
    borders: sparse.csr_matrix
    work: np.ndarray

    @property
    def num_hubs(self) -> int:
        """Number of hub rows."""
        return self.hub_ids.size

    @property
    def num_nodes(self) -> int:
        """Number of graph nodes (columns of ``scores``)."""
        return self.scores.shape[1]

    def rows_of(self, hubs: np.ndarray) -> np.ndarray:
        """Map hub node ids to matrix rows.

        Raises
        ------
        KeyError
            If any of ``hubs`` is not an indexed hub.
        """
        hubs = np.asarray(hubs, dtype=np.int64)
        if hubs.size == 0:
            return np.zeros(0, dtype=np.int64)
        if self.hub_ids.size == 0:
            raise KeyError(f"nodes {hubs.tolist()} are not indexed hubs")
        rows = np.searchsorted(self.hub_ids, hubs)
        clipped = np.minimum(rows, self.hub_ids.size - 1)
        valid = self.hub_ids[clipped] == hubs
        if not valid.all():
            missing = hubs[~valid]
            raise KeyError(f"nodes {missing.tolist()} are not indexed hubs")
        return rows


def build_splice_matrix(index: PPVIndex) -> SpliceMatrix:
    """Lower ``index`` into :class:`SpliceMatrix` form (no caching).

    Raises
    ------
    ValueError
        If the index has a hub in its mask with no stored entry, or an
        entry whose border hubs are not themselves indexed — either would
        make a batch splice silently diverge from the scalar engine.
    """
    hub_ids = np.asarray(sorted(index.entries), dtype=np.int64)
    mask_hubs = np.nonzero(index.hub_mask)[0]
    if not np.array_equal(hub_ids, mask_hubs):
        raise ValueError(
            "index entries do not cover the hub mask; the batch engine "
            "needs a prime PPV stored for every hub"
        )
    n = index.hub_mask.size
    alpha = index.alpha

    score_cols: list[np.ndarray] = []
    score_vals: list[np.ndarray] = []
    score_lens = np.zeros(hub_ids.size, dtype=np.int64)
    border_cols: list[np.ndarray] = []
    border_vals: list[np.ndarray] = []
    border_lens = np.zeros(hub_ids.size, dtype=np.int64)
    work = np.zeros(hub_ids.size, dtype=np.int64)

    for row, hub in enumerate(hub_ids.tolist()):
        entry = index.entries[hub]
        values = entry.scores.astype(np.float64, copy=True)
        own = np.searchsorted(entry.nodes, hub)
        if own >= entry.nodes.size or entry.nodes[own] != hub:
            raise ValueError(
                f"hub {hub} entry lacks its own score; was it clipped "
                "above alpha?"
            )
        # Fold the trivial-tour correction of Algorithm 2 into the row.
        values[own] -= alpha
        score_cols.append(entry.nodes)
        score_vals.append(values)
        score_lens[row] = entry.nodes.size

        border_rows = np.searchsorted(hub_ids, entry.border_hubs)
        if entry.border_hubs.size and not np.array_equal(
            hub_ids[border_rows], entry.border_hubs
        ):
            raise ValueError(f"hub {hub} has border hubs outside the index")
        border_cols.append(border_rows)
        border_vals.append(entry.border_masses)
        border_lens[row] = entry.border_hubs.size
        work[row] = entry.nodes.size + entry.border_hubs.size

    def assemble(cols, vals, lens, width) -> sparse.csr_matrix:
        indptr = np.zeros(hub_ids.size + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
        data = (
            np.concatenate(vals) if vals else np.zeros(0)
        )
        indices = (
            np.concatenate(cols).astype(np.int64)
            if cols
            else np.zeros(0, dtype=np.int64)
        )
        matrix = sparse.csr_matrix(
            (data, indices, indptr), shape=(hub_ids.size, width)
        )
        matrix.eliminate_zeros()
        return matrix

    return SpliceMatrix(
        hub_ids=hub_ids,
        scores=assemble(score_cols, score_vals, score_lens, n),
        borders=assemble(border_cols, border_vals, border_lens, hub_ids.size),
        work=work,
    )


def splice_matrix(index: PPVIndex) -> SpliceMatrix:
    """The cached :class:`SpliceMatrix` of ``index`` (built on first use)."""
    cached = getattr(index, _CACHE_ATTR, None)
    if cached is None:
        cached = build_splice_matrix(index)
        setattr(index, _CACHE_ATTR, cached)
    return cached


def invalidate_splice_cache(index: PPVIndex) -> None:
    """Drop the cached lowering (call after mutating ``index.entries``)."""
    if hasattr(index, _CACHE_ATTR):
        delattr(index, _CACHE_ATTR)
