"""Unit coverage of :mod:`repro.faults` and every wired hook site.

The stateful lifecycle suites (``test_lifecycle_properties.py``) drive
random interleavings; this file pins each fault mechanism's contract
deterministically: rule selection (nth / after / probability / times),
actions (raise / delay / torn / kill), and the behaviour of each
component when its site triggers — including the satellite regressions
(client timeouts against a hung server, backpressure visibility in
``stats``).
"""

from __future__ import annotations

import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro import build_index, select_hubs
from repro.faults import FaultPlan, InjectedFault, fire
from repro.server import (
    ClientTimeout,
    PPVClient,
    PPVServer,
    ProtocolViolation,
    ServerPool,
)
from repro.serving import CoalescingScheduler, PPVService
from repro.storage import (
    DiskGraphStore,
    DiskPPVStore,
    cluster_graph,
    save_index,
)


@pytest.fixture(scope="module")
def tiny_index(fig1_graph):
    hubs = select_hubs(fig1_graph, num_hubs=3)
    return build_index(fig1_graph, hubs)


@pytest.fixture(scope="module")
def tiny_disk(fig1_graph, tiny_index, tmp_path_factory):
    root = tmp_path_factory.mktemp("faults_disk")
    index_path = root / "index.fppv"
    save_index(tiny_index, index_path)
    assignment = cluster_graph(fig1_graph, 2, seed=1)
    store_dir = root / "clusters"
    DiskGraphStore(fig1_graph, assignment, store_dir)
    return store_dir, index_path


# --------------------------------------------------------------------- #
# The plan itself


class TestFaultPlan:
    def test_nth_rule_fires_exactly_on_that_hit(self):
        plan = FaultPlan()
        rule = plan.on("site", nth=3)
        plan.fire("site")
        plan.fire("site")
        with pytest.raises(InjectedFault):
            plan.fire("site")
        plan.fire("site")  # rule disarmed after its single trigger
        assert rule.triggered == 1
        assert plan.hits("site") == 4
        assert [record.hit for record in plan.fired_at("site")] == [3]

    def test_after_rule_respects_times(self):
        plan = FaultPlan()
        plan.on("s", after=2, times=2)
        plan.fire("s")
        plan.fire("s")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.fire("s")
        plan.fire("s")  # disarmed

    def test_error_class_and_instance(self):
        plan = FaultPlan()
        plan.on("a", nth=1, error=ConnectionResetError)
        with pytest.raises(ConnectionResetError):
            plan.fire("a")
        marker = ValueError("specific")
        plan.on("b", nth=1, error=marker)
        with pytest.raises(ValueError) as caught:
            plan.fire("b")
        assert caught.value is marker

    def test_delay_only_rule_stalls_without_raising(self):
        plan = FaultPlan()
        plan.on("slow", nth=1, delay=0.05)
        started = time.monotonic()
        assert plan.fire("slow") is None
        assert time.monotonic() - started >= 0.05
        assert len(plan.fired) == 1

    def test_torn_rule_returns_action(self):
        plan = FaultPlan()
        plan.on("send", nth=1, torn=True)
        action = plan.fire("send")
        assert action is not None and action.torn
        assert plan.fire("send") is None

    def test_probability_reproducible_under_seed(self):
        def triggers(seed):
            plan = FaultPlan(seed=seed)
            plan.on("p", probability=0.3, times=None)
            hits = []
            for i in range(50):
                try:
                    plan.fire("p")
                except InjectedFault:
                    hits.append(i)
            return hits

        first, second = triggers(7), triggers(7)
        assert first == second
        assert 0 < len(first) < 50
        assert triggers(8) != first

    def test_fire_helper_is_noop_without_plan(self):
        assert fire(None, "anything") is None

    def test_context_recorded(self):
        plan = FaultPlan()
        plan.on("ctx", nth=1)
        with pytest.raises(InjectedFault):
            plan.fire("ctx", hub=42)
        assert plan.fired_at("ctx")[0].context == {"hub": 42}


# --------------------------------------------------------------------- #
# Storage hooks


class TestStorageHooks:
    def test_ppv_store_nth_read_fails(self, tiny_disk):
        _store_dir, index_path = tiny_disk
        plan = FaultPlan()
        plan.on("ppv_store.read", nth=2)
        with DiskPPVStore(index_path, fault_plan=plan) as store:
            hubs = store.hubs.tolist()
            store.get(hubs[0])
            with pytest.raises(InjectedFault):
                store.get(hubs[0])
            # The store object survives the injected failure.
            entry = store.get(hubs[0])
            assert entry.nodes.size > 0

    def test_graph_store_reopen_matches_build(self, fig1_graph, tiny_disk):
        store_dir, _ = tiny_disk
        reopened = DiskGraphStore.open(store_dir)
        assert reopened.num_nodes == fig1_graph.num_nodes
        for node in range(fig1_graph.num_nodes):
            targets, probs = reopened.out_edges(node)
            assert sorted(targets.tolist()) == sorted(
                fig1_graph.out_neighbors(node).tolist()
            )
            assert len(probs) == len(targets)

    def test_graph_store_load_fault(self, tiny_disk):
        store_dir, _ = tiny_disk
        plan = FaultPlan()
        plan.on("graph_store.load", nth=1)
        store = DiskGraphStore.open(store_dir, fault_plan=plan)
        with pytest.raises(InjectedFault):
            store.out_edges(0)
        # Next access retries the load and succeeds.
        targets, _ = store.out_edges(0)
        assert targets.size >= 0


# --------------------------------------------------------------------- #
# Scheduler hooks + backpressure stats (satellite: stats verb depth)


class TestSchedulerHooks:
    def test_executor_exception_reaches_on_error_and_flush(self):
        served, failed = [], []
        plan = FaultPlan()
        plan.on("scheduler.execute", nth=1)
        scheduler = CoalescingScheduler(
            served.extend,
            max_delay=0,
            on_error=lambda jobs, error: failed.extend(jobs),
            fault_plan=plan,
        )
        scheduler.submit("job-1")
        with pytest.raises(InjectedFault):
            scheduler.flush()
        assert failed == ["job-1"] and served == []
        # The scheduler survives: the next drain executes normally.
        scheduler.submit("job-2")
        scheduler.flush()
        assert served == ["job-2"]
        scheduler.close()

    def test_queue_depth_and_in_flight_counters(self):
        release = threading.Event()
        entered = threading.Event()

        def execute(jobs):
            entered.set()
            release.wait(5)

        scheduler = CoalescingScheduler(execute, max_batch=1, max_delay=0)
        scheduler.submit("a")
        assert entered.wait(5)
        scheduler.submit("b")
        # "a" is mid-execute, "b" is queued behind it.
        deadline = time.monotonic() + 5
        while scheduler.queue_depth < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert scheduler.in_flight == 1
        assert scheduler.queue_depth == 1
        release.set()
        scheduler.flush()
        assert scheduler.in_flight == 0 and scheduler.queue_depth == 0
        scheduler.close()

    def test_slow_drain_shows_backpressure_in_service_stats(
        self, fig1_graph, tiny_index
    ):
        plan = FaultPlan()
        plan.on("scheduler.execute", nth=1, delay=0.3)
        with PPVService.open(
            tiny_index, graph=fig1_graph, fault_plan=plan, max_delay=0
        ) as service:
            handle = service.submit(0)
            service.submit(1)
            deadline = time.monotonic() + 5
            observed = 0
            while time.monotonic() < deadline:
                stats = service.stats()
                observed = max(
                    observed, stats.queue_depth + stats.in_flight
                )
                if handle.done():
                    break
                time.sleep(0.01)
            assert observed >= 1  # backpressure was visible
            service.flush()
            stats = service.stats()
            assert stats.queue_depth == 0 and stats.in_flight == 0
            assert stats.latency["count"] == 2
            assert sum(stats.latency["counts"]) == 2
            # The injected 0.3 s drain shows up in the histogram tail.
            slow_edge = stats.latency["bounds"].index(0.3)
            assert sum(stats.latency["counts"][slow_edge:]) >= 1


# --------------------------------------------------------------------- #
# Server + client faults (satellite: structured client timeouts)


@pytest.fixture()
def tiny_service(fig1_graph, tiny_index):
    def factory(fault_plan=None):
        return PPVService.open(
            tiny_index, graph=fig1_graph, fault_plan=fault_plan
        )

    return factory


class TestServerFaults:
    def test_torn_frame_drops_client_not_server(self, tiny_service):
        plan = FaultPlan()
        plan.on("server.send", nth=1, torn=True)
        with tiny_service() as service:
            server = PPVServer(service, fault_plan=plan)
            with server.background() as address:
                with PPVClient(*address, timeout=5) as client:
                    with pytest.raises(
                        (ProtocolViolation, ConnectionError, OSError)
                    ):
                        client.query(0, eta=1)
                with PPVClient(*address, timeout=5) as fresh:
                    assert fresh.ping()
                assert plan.fired_at("server.send")

    def test_injected_send_disconnect(self, tiny_service):
        plan = FaultPlan()
        plan.on("server.send", nth=1, error=ConnectionResetError)
        with tiny_service() as service:
            server = PPVServer(service, fault_plan=plan)
            with server.background() as address:
                with PPVClient(*address, timeout=5) as client:
                    with pytest.raises((ConnectionError, OSError)):
                        client.query(0, eta=1)
                with PPVClient(*address, timeout=5) as fresh:
                    assert fresh.ping()

    def test_client_read_timeout_is_structured(self, tiny_service):
        """Satellite regression: a hung server used to block forever."""
        plan = FaultPlan()
        plan.on("scheduler.execute", nth=1, delay=1.0)
        with tiny_service(fault_plan=plan) as service:
            server = PPVServer(service)
            with server.background() as address:
                with PPVClient(*address, timeout=0.2) as client:
                    with pytest.raises(ClientTimeout):
                        client.query(0, eta=1)
                    # The connection is poisoned: the late reply must not
                    # be misread as the next response.
                    with pytest.raises(ClientTimeout):
                        client.ping()
                # A fresh connection with headroom succeeds once the
                # slow drain clears.
                with PPVClient(*address, timeout=30) as fresh:
                    assert fresh.query(0, eta=1)["top"]
        assert isinstance(ClientTimeout("x"), TimeoutError)

    def test_connect_timeout_against_silent_server(self):
        backlog = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        fillers = []
        try:
            backlog.bind(("127.0.0.1", 0))
            backlog.listen(0)
            address = backlog.getsockname()
            # Saturate the accept queue so further SYNs go unanswered.
            for _ in range(4):
                filler = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                filler.setblocking(False)
                filler.connect_ex(address)
                fillers.append(filler)
            time.sleep(0.05)
            try:
                client = PPVClient(
                    *address, connect_timeout=0.3, timeout=0.3
                )
            except ClientTimeout:
                pass  # the structured connect-timeout path
            except (ConnectionError, OSError):
                pytest.skip("kernel refused instead of staying silent")
            else:
                client.close()
                pytest.skip("accept queue not saturable on this host")
        finally:
            for filler in fillers:
                filler.close()
            backlog.close()

    def test_client_fault_sites_fire(self, tiny_service):
        plan = FaultPlan()
        plan.on("client.send", nth=2, error=BrokenPipeError)
        with tiny_service() as service:
            with PPVServer(service).background() as address:
                client = PPVClient(*address, timeout=5, fault_plan=plan)
                with client:
                    assert client.ping()
                    with pytest.raises(BrokenPipeError):
                        client.ping()
        assert plan.hits("client.connect") == 1
        assert plan.hits("client.send") == 2


# --------------------------------------------------------------------- #
# Pool faults: SIGKILL worker k after m requests


class TestPoolFaults:
    def test_worker_killed_after_m_requests(self, fig1_graph, tiny_index):
        """``plan.on("server.request", nth=3, kill=True)`` SIGKILLs a
        worker mid-dispatch on its 3rd request.  The plan forks with the
        pool, so *every* worker owns a counter and dies at its own 3rd
        request; the pool as a whole keeps the port serving until the
        last worker falls, answers queries in between (each worker
        serves its first two), and maps the deaths to exit code 137.
        """
        plan = FaultPlan()
        plan.on("server.request", nth=3, kill=True)

        def factory():
            return PPVService.open(tiny_index, graph=fig1_graph)

        pool = ServerPool(factory, workers=2, fault_plan=plan)
        pool.start()
        try:
            host, port = pool.address
            answered = 0
            deadline = time.monotonic() + 60
            all_killed = lambda: all(
                code == -signal.SIGKILL for code in pool.exitcodes()
            )
            first_kill_seen = False
            while not all_killed() and time.monotonic() < deadline:
                if not first_kill_seen and any(
                    code == -signal.SIGKILL for code in pool.exitcodes()
                ):
                    first_kill_seen = True
                    # One worker down, the other still accepts.
                    assert pool.alive_workers()
                try:
                    with PPVClient(host, port, timeout=2) as client:
                        client.query(0, eta=1)
                        answered += 1
                except (ConnectionError, OSError, ProtocolViolation):
                    continue  # routed to a dying worker: retry
            assert all_killed(), (
                f"exit codes after deadline: {pool.exitcodes()}"
            )
            assert first_kill_seen
            # Both workers answered their pre-kill requests.
            assert answered >= 1
        finally:
            worst = pool.stop()
        # SIGKILL death maps to the shell convention, never to success.
        assert worst == 128 + signal.SIGKILL
        assert all(
            code == -signal.SIGKILL for code in pool.exitcodes()
        )


# --------------------------------------------------------------------- #
# Router fault sites (router.dispatch / router.connect / shard.recv)


@pytest.fixture(scope="module")
def shard_fleet(fig1_graph, tiny_index, tmp_path_factory):
    """A live 2-shard fleet over the Fig. 1 index, addresses by shard."""
    from repro.server import ServerConfig
    from repro.sharding import (
        load_shard_map,
        partition_index,
        shard_service_factory,
    )

    root = tmp_path_factory.mktemp("faults_shards")
    assignment = cluster_graph(fig1_graph, 2, seed=1)
    partition_index(fig1_graph, tiny_index, 2, root, assignment=assignment)
    pools, addresses = [], []
    for entry in load_shard_map(root)["shards"]:
        pool = ServerPool(
            shard_service_factory(root / entry["dir"]),
            workers=1,
            config=ServerConfig(port=0),
        )
        pools.append(pool)
        addresses.append(pool.start())
    yield addresses
    for pool in pools:
        pool.stop()


class TestRouterFaultSites:
    """The three fan-out sites fire where documented, and the fleet's
    retry-then-declare-unavailable contract holds under injection."""

    def test_connect_fault_is_retried_transparently(self, shard_fleet):
        from repro.sharding import RouterEngine

        plan = FaultPlan()
        plan.on("router.connect", error=ConnectionError, times=1)
        engine = RouterEngine(shard_fleet, fault_plan=plan)
        try:
            # Bootstrap survived: the failed connect was redone.
            assert engine.num_nodes == 8
        finally:
            engine.close()
        assert [r.hit for r in plan.fired_at("router.connect")] == [1]
        assert plan.hits("router.connect") >= 2  # the reconnect refired it

    def test_recv_fault_is_retried_and_results_stay_bitwise(
        self, shard_fleet, tiny_disk
    ):
        from repro import StopAfterIterations
        from repro.serving.engines import DiskEngine
        from repro.sharding import RouterEngine

        store_dir, index_path = tiny_disk
        local = DiskEngine(
            DiskGraphStore.open(store_dir), DiskPPVStore(index_path)
        )
        plan = FaultPlan()
        plan.on("shard.recv", error=ConnectionError, times=1)
        engine = RouterEngine(shard_fleet, fault_plan=plan)
        try:
            stop = StopAfterIterations(2)
            expected = local.query_batch([3], stop)[0]
            got = engine.query_batch([3], stop)[0]
            assert np.array_equal(
                got.result.scores, expected.result.scores
            )
        finally:
            engine.close()
            local.close()
        assert len(plan.fired_at("shard.recv")) == 1

    def test_dispatch_fault_surfaces_and_fleet_recovers(self, shard_fleet):
        from repro.sharding import RouterEngine

        plan = FaultPlan()
        engine = RouterEngine(shard_fleet, fault_plan=plan)
        try:
            hub = int(engine.ppv_store.hubs[0])
            plan.on("router.dispatch", nth=plan.hits("router.dispatch") + 1)
            with pytest.raises(InjectedFault):
                engine.ppv_store.get(hub)
            assert plan.fired_at("router.dispatch")
            # One injected dispatch does not poison the connection.
            assert engine.ppv_store.get(hub).scores.size > 0
        finally:
            engine.close()

    def test_persistent_connect_failure_is_shard_unavailable(
        self, shard_fleet
    ):
        from repro.server.protocol import ShardUnavailableError
        from repro.sharding import RouterEngine

        plan = FaultPlan()
        # Both of shard 0's connect attempts fail — the bootstrap
        # fan-out connects shards 0 then 1 (hits 1, 2) and retries
        # shard 0 on hit 3.  The fleet must declare the shard
        # unavailable, typed, not leak the raw transport error.
        plan.on("router.connect", nth=1, error=ConnectionError)
        plan.on("router.connect", nth=3, error=ConnectionError)
        with pytest.raises(ShardUnavailableError) as excinfo:
            RouterEngine(shard_fleet, fault_plan=plan)
        assert excinfo.value.shard == 0
        assert len(plan.fired_at("router.connect")) == 2
