"""Unit tests for forward push (bookmark coloring)."""

import numpy as np
import pytest

from repro.baselines.push import forward_push
from repro.core.exact import exact_ppv
from tests.conftest import A, ALPHA


class TestForwardPush:
    def test_converges_to_exact(self, cyclic_graph):
        exact = exact_ppv(cyclic_graph, 0, alpha=ALPHA)
        estimate, residual = forward_push(
            cyclic_graph, 0, alpha=ALPHA, threshold=1e-10
        )
        np.testing.assert_allclose(estimate, exact, atol=1e-7)
        assert residual.sum() < 1e-6

    def test_residual_bounds_error(self, small_social):
        exact = exact_ppv(small_social, 2, alpha=ALPHA)
        estimate, residual = forward_push(
            small_social, 2, alpha=ALPHA, threshold=1e-3
        )
        true_error = np.abs(exact - estimate).sum()
        assert true_error <= residual.sum() + 1e-9

    def test_estimate_plus_residual_conserves_mass(self, small_social):
        estimate, residual = forward_push(
            small_social, 2, alpha=ALPHA, threshold=1e-4
        )
        # Invariant: scored mass + outstanding residual mass = 1 on a
        # dangling-free graph.
        assert estimate.sum() + residual.sum() == pytest.approx(1.0, abs=1e-9)

    def test_underestimates_exact(self, small_social):
        exact = exact_ppv(small_social, 2, alpha=ALPHA)
        estimate, _ = forward_push(small_social, 2, alpha=ALPHA, threshold=1e-4)
        assert np.all(estimate <= exact + 1e-9)

    def test_coarser_threshold_cheaper(self, small_social):
        fine, _ = forward_push(small_social, 2, threshold=1e-6)
        coarse, _ = forward_push(small_social, 2, threshold=1e-2)
        assert np.count_nonzero(coarse) <= np.count_nonzero(fine)

    def test_hub_splice_exactness(self, cyclic_graph):
        # Splicing an exact hub vector must leave the result exact.
        hub = 1
        hub_exact = exact_ppv(cyclic_graph, hub, alpha=ALPHA)
        nodes = np.nonzero(hub_exact)[0]
        hub_vectors = {hub: (nodes, hub_exact[nodes])}
        estimate, residual = forward_push(
            cyclic_graph, 0, alpha=ALPHA, threshold=1e-12, hub_vectors=hub_vectors
        )
        exact = exact_ppv(cyclic_graph, 0, alpha=ALPHA)
        np.testing.assert_allclose(estimate, exact, atol=1e-8)

    def test_source_splice_skipped(self, cyclic_graph):
        # With skip_source_splice the cached vector at the source must not
        # short-circuit the query.
        wrong = np.zeros(cyclic_graph.num_nodes)
        wrong[3] = 1.0
        hub_vectors = {0: (np.array([3]), np.array([1.0]))}
        estimate, _ = forward_push(
            cyclic_graph,
            0,
            alpha=ALPHA,
            threshold=1e-10,
            hub_vectors=hub_vectors,
            skip_source_splice=True,
        )
        exact = exact_ppv(cyclic_graph, 0, alpha=ALPHA)
        # Mass can still reach node 3 organically, but the estimate must
        # track the exact PPV, not the planted fake vector.
        assert abs(estimate[0] - exact[0]) < 0.01

    def test_dangling_node_loses_mass(self):
        from repro.graph import from_edges

        graph = from_edges([(0, 1)], num_nodes=2)
        estimate, residual = forward_push(graph, 0, alpha=ALPHA, threshold=1e-12)
        assert estimate.sum() + residual.sum() < 1.0
        assert estimate[0] == pytest.approx(ALPHA)

    def test_invalid_threshold(self, cyclic_graph):
        with pytest.raises(ValueError):
            forward_push(cyclic_graph, 0, threshold=0.0)

    def test_invalid_source(self, cyclic_graph):
        with pytest.raises(ValueError):
            forward_push(cyclic_graph, 99)
