"""Tests for workload-aware hub selection."""

import numpy as np
import pytest

from repro.core.hubs import select_hubs
from repro.core.workload_hubs import select_hubs_for_workload, workload_traffic


class TestWorkloadTraffic:
    def test_traffic_peaks_at_logged_queries(self, small_social):
        log = [10, 20, 30]
        traffic = workload_traffic(small_social, log)
        # Each logged query's own node carries at least its teleport share
        # of the traffic: r_q(q) / alpha >= 1 averaged over |log| entries.
        for query in log:
            assert traffic[query] >= 1.0 / len(log) - 1e-6

    def test_empty_log_rejected(self, small_social):
        with pytest.raises(ValueError):
            workload_traffic(small_social, [])

    def test_out_of_range_log_rejected(self, small_social):
        with pytest.raises(ValueError):
            workload_traffic(small_social, [10**9])

    def test_log_sampling_deterministic(self, small_social):
        log = list(range(small_social.num_nodes))
        a = workload_traffic(small_social, log, max_log_samples=20, seed=3)
        b = workload_traffic(small_social, log, max_log_samples=20, seed=3)
        np.testing.assert_array_equal(a, b)


class TestSelectHubsForWorkload:
    def test_count_and_sortedness(self, small_social):
        hubs = select_hubs_for_workload(small_social, [5, 6, 7], 15)
        assert hubs.size == 15
        assert np.all(np.diff(hubs) > 0)

    def test_zero_hubs(self, small_social):
        assert select_hubs_for_workload(small_social, [1], 0).size == 0

    def test_negative_rejected(self, small_social):
        with pytest.raises(ValueError):
            select_hubs_for_workload(small_social, [1], -3)

    def test_skewed_log_shifts_hubs_toward_queries(self, small_social):
        # Hubs for a one-neighbourhood workload should overlap that
        # neighbourhood's PPV support far more than global hubs do.
        log = [200, 201, 202, 203]
        workload_hubs = set(
            select_hubs_for_workload(small_social, log, 20).tolist()
        )
        global_hubs = set(select_hubs(small_social, 20).tolist())
        from repro.core.exact import exact_ppv

        support = set(
            np.nonzero(exact_ppv(small_social, 201) > 1e-4)[0].tolist()
        )
        assert len(workload_hubs & support) >= len(global_hubs & support)

    def test_uniform_log_close_to_global_selection(self, small_social):
        # With a uniform log the traffic estimate approximates global
        # PageRank, so selections should substantially agree.
        log = list(range(small_social.num_nodes))
        workload_hubs = set(
            select_hubs_for_workload(
                small_social, log, 20, max_log_samples=small_social.num_nodes
            ).tolist()
        )
        global_hubs = set(select_hubs(small_social, 20).tolist())
        assert len(workload_hubs & global_hubs) >= 10

    def test_workload_hubs_cut_query_work(self, small_social):
        # End-to-end: hubs placed on the workload's walk traffic intercept
        # logged queries' tours early, which shrinks their prime subgraphs
        # — iteration-0 *work* drops (the speed benefit), while coverage
        # moves to later iterations (the usual more-hubs trade-off).
        from repro import FastPPV, StopAfterIterations, build_index

        log = [50, 51, 52, 53, 54]
        workload_hubs = select_hubs_for_workload(small_social, log, 25)
        global_hubs = select_hubs(small_social, 25)
        work = {}
        for name, hubs in (("workload", workload_hubs), ("global", global_hubs)):
            index = build_index(small_social, hubs)
            engine = FastPPV(small_social, index, delta=0.0)
            units = [
                engine.query(q, stop=StopAfterIterations(0)).work_units
                for q in log
            ]
            work[name] = float(np.mean(units))
        assert work["workload"] <= work["global"]
