"""The shard router: exact FastPPV serving over a shard fleet.

:class:`RouterEngine` subclasses the disk backend's
:class:`~repro.serving.engines.DiskEngine` with the two stores swapped
for their remote twins (:mod:`repro.sharding.remote`): the real
``DiskFastPPV`` / ``BatchDiskFastPPV`` kernels run *at the router*,
fetching hub prime PPVs and cluster adjacency from shard processes on
demand.  Identical kernel + bit-identical data (JSON round-trips
float64 exactly) + identical operation order make every result —
multi-node splices through ``combine_results``, certified top-k
included — bitwise equal to an unsharded disk deployment of the same
index.  The router bootstraps purely from a ``shard_info`` fan-out, so
it needs network reachability to the shards, not the partition root's
filesystem.

Put a :class:`~repro.server.PPVServer` in front of a ``PPVService``
over this engine and you have a shard router speaking the ordinary
JSONL wire protocol; :class:`ShardRouter` bundles exactly that, plus
spawning one :class:`~repro.server.pool.ServerPool` per shard from a
partition root, into one lifecycle object.

Hot swap rolls across the fleet: the router's front-end holds (never
drops) new admissions behind its swap gate, drains in-flight work,
sends each shard its own ``swap_index`` for ``root/shard_NN``, then
re-bootstraps the remote stores — queries admitted before the swap are
answered from the old partition, queries after from the new one.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.obs import MetricsRegistry, Observability
from repro.serving.engines import DiskEngine, register_backend
from repro.serving.service import DEFAULT_CACHE_SIZE, LatencyHistogram, PPVService
from repro.server.client import ServerError
from repro.server.protocol import ShardUnavailableError
from repro.server.pool import ServerPool
from repro.server.server import PPVServer, ServerConfig

from repro.sharding.partition import load_shard_map, shard_dir_name
from repro.sharding.remote import (
    DEFAULT_CLUSTER_BUDGET,
    DEFAULT_HUB_CACHE,
    ShardedGraphStore,
    ShardedPPVStore,
    ShardFleet,
)
from repro.sharding.shard import shard_service_factory

_AGREED_KEYS = (
    "num_shards",
    "num_nodes",
    "num_clusters",
    "alpha",
    "epsilon",
    "clip",
    "cluster_shards",
)


class RouterEngine(DiskEngine):
    """The ``"sharded"`` backend: a disk engine over remote stores.

    Parameters
    ----------
    addresses:
        ``(host, port)`` of each shard's server (pool), indexed by
        shard id — shard ``s`` must be served at ``addresses[s]``
        (validated against every shard's own ``shard_info``).
    timeout:
        Per-round-trip deadline on the shard connections; a hung shard
        surfaces as :class:`ShardUnavailableError` instead of stalling
        the drain thread forever.
    cache_hubs / memory_budget:
        Router-side residency (see :mod:`repro.sharding.remote`);
        affects refetch traffic only, never results.
    fault_plan:
        Tests only: fires the ``router.dispatch`` / ``router.connect``
        / ``shard.recv`` sites (see :mod:`repro.faults`).
    delta / fault_budget / max_iterations / kernel:
        Forwarded to the disk kernels, exactly as on ``DiskEngine``.
    """

    backend = "sharded"

    def __init__(
        self,
        addresses: Sequence[tuple],
        *,
        timeout: float | None = 30.0,
        cache_hubs: int = DEFAULT_HUB_CACHE,
        memory_budget: int = DEFAULT_CLUSTER_BUDGET,
        fault_plan=None,
        **engine_kwargs,
    ) -> None:
        self.fleet = ShardFleet(
            addresses, timeout=timeout, fault_plan=fault_plan
        )
        self._cache_hubs = cache_hubs
        self._memory_budget = memory_budget
        self._engine_kwargs = engine_kwargs
        # One reentrant lock serialises ALL fleet traffic (the remote
        # stores share it): the service's drain thread, stream pump
        # threads and the front-end's stats/swap to_thread workers may
        # overlap, and a pipelined connection cannot interleave users.
        self._lock = threading.RLock()
        with self._lock:
            self._bootstrap_locked()

    # ------------------------------------------------------------------ #
    # Bootstrap

    def _bootstrap_locked(self) -> None:
        infos = self.fleet.request_all({"verb": "shard_info"})
        base = infos[0]
        if int(base["num_shards"]) != self.fleet.num_shards:
            raise ValueError(
                f"partition has {base['num_shards']} shards but the "
                f"fleet lists {self.fleet.num_shards} addresses"
            )
        hub_shards: dict[int, int] = {}
        for shard in range(self.fleet.num_shards):
            info = infos[shard]
            if int(info["shard"]) != shard:
                raise ValueError(
                    f"address {shard} ({self.fleet.addresses[shard]}) "
                    f"answered as shard {info['shard']}; the address "
                    "list must be indexed by shard id"
                )
            for key in _AGREED_KEYS:
                if info[key] != base[key]:
                    raise ValueError(
                        f"shard {shard} disagrees with shard 0 on "
                        f"{key!r} ({info[key]!r} != {base[key]!r}); "
                        "the fleet is serving mixed partitions"
                    )
            for hub in info["hubs"]:
                if hub in hub_shards:
                    raise ValueError(
                        f"hub {hub} is claimed by shards "
                        f"{hub_shards[hub]} and {shard}"
                    )
                hub_shards[hub] = shard
        ppv_store = ShardedPPVStore(
            self.fleet,
            alpha=float(base["alpha"]),
            epsilon=float(base["epsilon"]),
            clip=float(base["clip"]),
            num_nodes=int(base["num_nodes"]),
            hub_shards=hub_shards,
            cache_hubs=self._cache_hubs,
            lock=self._lock,
        )
        graph_store = ShardedGraphStore(
            self.fleet,
            labels=np.asarray(base["labels"], dtype=np.int64),
            cluster_shards=base["cluster_shards"],
            memory_budget=self._memory_budget,
            lock=self._lock,
        )
        DiskEngine.__init__(
            self, graph_store, ppv_store, **self._engine_kwargs
        )

    # ------------------------------------------------------------------ #
    # Hot swap (rolls across the fleet)

    def replace_from_path(self, path) -> None:
        """Swap the whole fleet to the partition at ``path``.

        ``path`` is a partition root (``shard_map.json`` + shard
        directories) on a filesystem **the shards can see**; each shard
        gets ``swap_index`` for its own ``root/shard_NN``, sequentially,
        then the remote stores re-bootstrap (which also revalidates
        cross-shard agreement).  The front-end holds admissions while
        this runs, so no query observes a half-swapped fleet through
        this router.  If a shard refuses mid-roll the fleet is left
        mixed — the raised error says which shard; fix and re-issue the
        swap (swapping to the already-current partition is a no-op per
        shard).
        """
        with self._lock:
            manifest = load_shard_map(path)
            if int(manifest["num_shards"]) != self.fleet.num_shards:
                raise ValueError(
                    f"partition at {path} has {manifest['num_shards']} "
                    f"shards; this router fronts {self.fleet.num_shards}"
                )
            for shard in range(self.fleet.num_shards):
                shard_path = str(Path(path) / shard_dir_name(shard))
                try:
                    self.fleet.request(
                        shard, {"verb": "swap_index", "path": shard_path}
                    )
                except ServerError as error:
                    raise ValueError(
                        f"shard {shard} refused the swap: {error}"
                    ) from None
            self._bootstrap_locked()

    # ------------------------------------------------------------------ #
    # Stats + traces

    def trace_spans(
        self, trace_id: "str | None" = None, limit: "int | None" = None
    ) -> list:
        """Fan the ``trace`` verb to every shard and concatenate the
        replies' spans (the caller merges in its own tracer's spans and
        sorts)."""
        body: dict = {"verb": "trace"}
        if trace_id is not None:
            body["trace_id"] = str(trace_id)
        if limit is not None:
            body["limit"] = int(limit)
        with self._lock:
            replies = self.fleet.request_all(body)
        spans: list = []
        for shard in range(self.fleet.num_shards):
            spans.extend(replies[shard].get("spans", ()))
        return spans

    def shard_stats(self) -> dict:
        """Fan ``stats`` to every shard and aggregate.

        Returns per-shard serving counters plus the router's own fetch
        distribution, the shards' latency histograms merged through
        :meth:`LatencyHistogram.merge`, ``fetch_balance`` — the
        max/mean ratio of per-shard fetch counts (1.0 = perfectly
        balanced) — and ``families``, the per-query-family submission
        counts and merged latency aggregated across the fleet.
        """
        with self._lock:
            replies = self.fleet.request_all({"verb": "stats"})
            hub_fetches = list(self.ppv_store.shard_fetches)
            cluster_fetches = list(self.graph_store.shard_fetches)
        per_shard = []
        for shard in range(self.fleet.num_shards):
            reply = replies[shard]
            per_shard.append(
                {
                    "shard": shard,
                    "hub_fetches": hub_fetches[shard],
                    "cluster_fetches": cluster_fetches[shard],
                    "requests_total": reply["server"]["requests_total"],
                    "worker": reply["worker"],
                    "latency": reply["service"]["latency"],
                    "families": reply["service"].get("families", {}),
                }
            )
        fetches = [
            hubs + clusters
            for hubs, clusters in zip(hub_fetches, cluster_fetches)
        ]
        mean = sum(fetches) / len(fetches)
        # Per-family aggregation across the fleet: submissions add,
        # latency histograms merge (same additive contract as the
        # fleet-wide histogram above).
        family_names = sorted(
            {
                name
                for entry in per_shard
                for name in entry["families"]
            }
        )
        families = {}
        for name in family_names:
            shards_with = [
                entry["families"][name]
                for entry in per_shard
                if name in entry["families"]
            ]
            families[name] = {
                "submitted": sum(s["submitted"] for s in shards_with),
                "latency": LatencyHistogram.merge(
                    [s["latency"] for s in shards_with]
                ),
            }
        stats = {
            "num_shards": self.fleet.num_shards,
            "per_shard": per_shard,
            "latency": LatencyHistogram.merge(
                [entry["latency"] for entry in per_shard]
            ),
            "fetch_balance": (max(fetches) / mean) if mean else 1.0,
            "families": families,
        }
        # Obs-enabled shards export full registry snapshots; sum them
        # into one fleet-wide view.  A shard running without obs simply
        # contributes nothing.
        snapshots = [
            replies[shard]["metrics"]
            for shard in range(self.fleet.num_shards)
            if "metrics" in replies[shard]
        ]
        if snapshots:
            stats["metrics"] = MetricsRegistry.merge(snapshots)
        return stats

    def close(self) -> None:
        self.ppv_store.close()
        self.graph_store.close()
        self.fleet.close()


def _sharded_factory(source, *, graph=None, graph_store=None, **kwargs):
    if graph is not None or graph_store is not None:
        raise ValueError(
            "the sharded backend opens a shard address list; it takes "
            "no graph=/graph_store="
        )
    return RouterEngine(source, **kwargs)


register_backend("sharded", _sharded_factory)


class ShardRouter:
    """Everything between a partition root and a listening router port.

    Spawns one :class:`~repro.server.pool.ServerPool` per shard
    directory, builds a :class:`RouterEngine` over their addresses,
    wraps it in a ``PPVService`` and serves that with a background
    :class:`~repro.server.PPVServer`::

        with ShardRouter(root) as (host, port):
            with PPVClient(host, port) as client:
                client.query(42, top_k=10)

    Parameters
    ----------
    root:
        A partition root from :func:`repro.sharding.partition.
        partition_index` (or ``repro shard-index``).
    workers_per_shard:
        Processes per shard pool.  The default (1) is also the safe
        value for hot swap: the router pins one connection per shard,
        and ``swap_index`` applies to the worker that receives it.
    config:
        The router front-end's :class:`ServerConfig` (host/port,
        admission bounds).  Shard pools always bind an OS-assigned
        port on ``shard_host``.
    cache_size:
        The router service's popularity cache.
    obs:
        The router-side :class:`~repro.obs.Observability` bundle; a
        fresh one by default, so every ``ShardRouter`` serves metrics,
        traces and (when configured) a slow-query log out of the box.
        Pass ``obs=False`` to run uninstrumented (shard workers
        included).
    engine_kwargs:
        Forwarded to :class:`RouterEngine` (``timeout``, ``kernel``,
        ``delta``, ``cache_hubs``, ...).

    Attributes
    ----------
    pools:
        The per-shard :class:`ServerPool` objects, by shard id — the
        fault suites SIGKILL workers through these.
    service / server:
        The router-side service and front-end, once started.
    """

    def __init__(
        self,
        root,
        *,
        workers_per_shard: int = 1,
        config: ServerConfig | None = None,
        shard_host: str = "127.0.0.1",
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_batch: int | None = None,
        max_delay=None,
        fault_plan=None,
        obs=None,
        **engine_kwargs,
    ) -> None:
        if workers_per_shard < 1:
            raise ValueError("workers_per_shard must be at least 1")
        self.root = Path(root)
        self.workers_per_shard = workers_per_shard
        self.config = config or ServerConfig()
        self.shard_host = shard_host
        if obs is False:
            self.obs = None
        else:
            self.obs = obs if obs is not None else Observability()
        self.service_kwargs: dict = {"cache_size": cache_size}
        if max_batch is not None:
            self.service_kwargs["max_batch"] = max_batch
        if max_delay is not None:
            self.service_kwargs["max_delay"] = max_delay
        self.fault_plan = fault_plan
        self.engine_kwargs = engine_kwargs
        self.manifest = load_shard_map(self.root)
        self.pools: list[ServerPool] = []
        self.addresses: list[tuple] = []
        self.service: PPVService | None = None
        self.server: PPVServer | None = None
        self._background = None

    def _spawn(self) -> None:
        """Start the shard pools and build the router service."""
        if self.service is not None:
            raise RuntimeError("router already started")
        for entry in self.manifest["shards"]:
            pool = ServerPool(
                shard_service_factory(
                    self.root / entry["dir"], obs=self.obs is not None
                ),
                workers=self.workers_per_shard,
                config=ServerConfig(host=self.shard_host, port=0),
            )
            self.pools.append(pool)
            self.addresses.append(pool.start())
        engine = RouterEngine(
            self.addresses,
            fault_plan=self.fault_plan,
            **self.engine_kwargs,
        )
        self.service = PPVService(engine, obs=self.obs, **self.service_kwargs)

    def start(self) -> tuple:
        """Spawn the shard pools and the router (on a background
        thread); return the router's bound ``(host, port)``."""
        try:
            self._spawn()
            self.server = PPVServer(self.service, self.config)
            self._background = self.server.background()
            return self._background.__enter__()
        except BaseException:
            self.stop()
            raise

    def serve_forever(self, announce=None) -> int:
        """Foreground CLI path: serve the router on this thread until
        interrupted, then tear everything down.  Returns the worst
        shard-pool exit code (0 = all clean)."""
        import asyncio

        try:
            self._spawn()
            self.server = PPVServer(self.service, self.config)
            try:
                asyncio.run(self.server.serve(on_ready=announce))
            except KeyboardInterrupt:
                pass
            return max(
                (pool.worst_exit_code() for pool in self.pools), default=0
            )
        finally:
            self.stop()

    def stop(self) -> None:
        """Stop the router, close the fleet, tear the pools down."""
        if self._background is not None:
            background, self._background = self._background, None
            background.__exit__(None, None, None)
        self.server = None
        if self.service is not None:
            service, self.service = self.service, None
            service.close()
        for pool in self.pools:
            pool.stop()
        self.pools = []
        self.addresses = []

    def __enter__(self) -> tuple:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
