"""Integration tests for disk-based online query processing (Sect. 5.3)."""

import numpy as np
import pytest

from repro import FastPPV, StopAfterIterations, build_index, select_hubs
from repro.storage import (
    DiskFastPPV,
    DiskGraphStore,
    DiskPPVStore,
    cluster_graph,
    save_index,
)


@pytest.fixture(scope="module")
def disk_setup(small_social, small_social_index, tmp_path_factory):
    root = tmp_path_factory.mktemp("disk")
    index_path = root / "index.fppv"
    save_index(small_social_index, index_path)
    assignment = cluster_graph(small_social, 6, seed=1)
    graph_store = DiskGraphStore(small_social, assignment, root / "clusters")
    ppv_store = DiskPPVStore(index_path)
    return graph_store, ppv_store


class TestDiskGraphStore:
    def test_neighbors_match_in_memory(self, disk_setup, small_social):
        graph_store, _ = disk_setup
        for node in range(0, small_social.num_nodes, 37):
            expected = sorted(small_social.out_neighbors(node).tolist())
            got = sorted(int(v) for v in graph_store.out_neighbors(node))
            assert got == expected

    def test_fault_counting(self, disk_setup, small_social):
        graph_store, _ = disk_setup
        before = graph_store.faults
        # Touch a node from every cluster: at least num_clusters - 1 swaps.
        for cluster in range(graph_store.num_clusters):
            members = np.nonzero(graph_store.labels == cluster)[0]
            graph_store.out_neighbors(int(members[0]))
        assert graph_store.faults - before >= graph_store.num_clusters - 1

    def test_no_fault_within_resident_cluster(self, disk_setup):
        graph_store, _ = disk_setup
        cluster = 0
        members = np.nonzero(graph_store.labels == cluster)[0][:5]
        graph_store.out_neighbors(int(members[0]))
        before = graph_store.faults
        for node in members[1:]:
            graph_store.out_neighbors(int(node))
        assert graph_store.faults == before

    def test_sizes_accounted(self, disk_setup):
        graph_store, _ = disk_setup
        assert graph_store.largest_cluster_bytes > 0
        assert graph_store.total_bytes >= graph_store.largest_cluster_bytes


class TestDiskFastPPV:
    def test_matches_in_memory_engine_for_hub_query(
        self, disk_setup, small_social, small_social_index
    ):
        graph_store, ppv_store = disk_setup
        disk_engine = DiskFastPPV(graph_store, ppv_store, delta=0.0)
        memory_engine = FastPPV(small_social, small_social_index, delta=0.0)
        hub = int(small_social_index.hubs[0])
        a = disk_engine.query(hub, stop=StopAfterIterations(2))
        b = memory_engine.query(hub, stop=StopAfterIterations(2))
        np.testing.assert_allclose(a.scores, b.scores, atol=1e-12)

    def test_matches_in_memory_engine_for_non_hub_query(
        self, disk_setup, small_social, small_social_index
    ):
        graph_store, ppv_store = disk_setup
        disk_engine = DiskFastPPV(
            graph_store, ppv_store, delta=0.0, fault_budget=10**9
        )
        memory_engine = FastPPV(small_social, small_social_index, delta=0.0)
        query = next(
            q for q in range(small_social.num_nodes) if q not in small_social_index
        )
        a = disk_engine.query(query, stop=StopAfterIterations(2))
        b = memory_engine.query(query, stop=StopAfterIterations(2))
        assert not a.truncated
        # The disk engine's cluster-draining push truncates epsilon mass in
        # a different (equally valid) pattern than the level-synchronous
        # in-memory push: both converge to the same vector as epsilon -> 0
        # (verified by the epsilon sweep below), but at a fixed epsilon the
        # disk push drops a constant factor more sub-threshold mass.
        assert np.abs(a.scores - b.scores).max() < 1e-3
        assert abs(a.scores.sum() - b.scores.sum()) < 5e-3

    def test_disk_push_converges_with_epsilon(
        self, small_social, small_social_index, tmp_path
    ):
        # Halving epsilon must shrink the disk-vs-memory gap towards zero.
        from repro.core.prime import prime_ppv

        assignment = cluster_graph(small_social, 5, seed=2)
        query = next(
            q for q in range(small_social.num_nodes)
            if q not in small_social_index
        )
        gaps = []
        for i, epsilon in enumerate((1e-6, 1e-8, 1e-10)):
            index = build_index(
                small_social, small_social_index.hubs, epsilon=epsilon
            )
            path = tmp_path / f"i{i}.fppv"
            save_index(index, path)
            store = DiskGraphStore(
                small_social, assignment, tmp_path / f"c{i}"
            )
            with DiskPPVStore(path) as ppv_store:
                engine = DiskFastPPV(
                    store, ppv_store, delta=0.0, fault_budget=10**9
                )
                disk = engine.query(query, stop=StopAfterIterations(0))
            memory = prime_ppv(
                small_social, query, index.hub_mask, epsilon=epsilon
            ).to_dense(small_social.num_nodes)
            gaps.append(np.abs(disk.scores - memory).sum())
        assert gaps[2] < gaps[1] < gaps[0]

    def test_io_accounting(self, disk_setup, small_social, small_social_index):
        graph_store, ppv_store = disk_setup
        engine = DiskFastPPV(graph_store, ppv_store, delta=0.0)
        non_hub = next(
            q for q in range(small_social.num_nodes) if q not in small_social_index
        )
        result = engine.query(non_hub, stop=StopAfterIterations(1))
        # A non-hub query reads exactly one payload per spliced hub.
        assert result.hub_reads == result.result.hubs_expanded
        assert result.cluster_faults >= 0
        # A hub query pays one extra read for its own iteration-0 vector.
        hub = int(small_social_index.hubs[0])
        hub_result = engine.query(hub, stop=StopAfterIterations(1))
        assert hub_result.hub_reads == hub_result.result.hubs_expanded + 1

    def test_fault_budget_truncates(self, disk_setup, small_social, small_social_index):
        graph_store, ppv_store = disk_setup
        tight = DiskFastPPV(graph_store, ppv_store, delta=0.0, fault_budget=1)
        loose = DiskFastPPV(graph_store, ppv_store, delta=0.0, fault_budget=10**9)
        query = next(
            q for q in range(small_social.num_nodes) if q not in small_social_index
        )
        a = tight.query(query, stop=StopAfterIterations(0))
        b = loose.query(query, stop=StopAfterIterations(0))
        # The truncated search can only cover less mass.
        assert a.scores.sum() <= b.scores.sum() + 1e-12

    def test_out_of_range_query(self, disk_setup):
        graph_store, ppv_store = disk_setup
        engine = DiskFastPPV(graph_store, ppv_store)
        with pytest.raises(ValueError):
            engine.query(10**6)

    def test_mismatched_stores_rejected(self, disk_setup, fig1_graph, tmp_path):
        _, ppv_store = disk_setup
        index = build_index(fig1_graph, [1, 3])
        path = tmp_path / "small.fppv"
        save_index(index, path)
        assignment = cluster_graph(fig1_graph, 2, seed=0)
        small_store = DiskGraphStore(fig1_graph, assignment, tmp_path / "c")
        with pytest.raises(ValueError, match="disagree"):
            DiskFastPPV(small_store, ppv_store)
        with DiskPPVStore(path) as small_ppv:
            with pytest.raises(ValueError, match="disagree"):
                DiskFastPPV(
                    disk_setup[0], small_ppv
                )


class TestMemoryBudget:
    def test_invalid_budget(self, small_social, tmp_path):
        assignment = cluster_graph(small_social, 3, seed=0)
        with pytest.raises(ValueError):
            DiskGraphStore(small_social, assignment, tmp_path / "c", memory_budget=0)

    def test_larger_budget_fewer_faults(self, small_social, tmp_path):
        assignment = cluster_graph(small_social, 6, seed=1)
        single = DiskGraphStore(
            small_social, assignment, tmp_path / "c1", memory_budget=1
        )
        triple = DiskGraphStore(
            small_social, assignment, tmp_path / "c3", memory_budget=3
        )
        # Alternate between nodes of three clusters: thrashes a 1-cluster
        # cache, fits entirely in a 3-cluster cache.
        anchors = [
            int(np.nonzero(assignment.labels == c)[0][0]) for c in range(3)
        ]
        for _ in range(5):
            for node in anchors:
                single.out_neighbors(node)
                triple.out_neighbors(node)
        assert triple.faults < single.faults
        assert triple.faults == 3  # compulsory misses only

    def test_lru_eviction_order(self, small_social, tmp_path):
        assignment = cluster_graph(small_social, 4, seed=2)
        store = DiskGraphStore(
            small_social, assignment, tmp_path / "c", memory_budget=2
        )
        anchors = [
            int(np.nonzero(assignment.labels == c)[0][0]) for c in range(3)
        ]
        store.out_neighbors(anchors[0])  # cache: [0]
        store.out_neighbors(anchors[1])  # cache: [0, 1]
        store.out_neighbors(anchors[0])  # cache: [1, 0] (0 refreshed)
        store.out_neighbors(anchors[2])  # evicts 1 -> cache: [0, 2]
        faults_before = store.faults
        store.out_neighbors(anchors[0])  # hit
        store.out_neighbors(anchors[2])  # hit
        assert store.faults == faults_before
        store.out_neighbors(anchors[1])  # miss (was evicted)
        assert store.faults == faults_before + 1

    def test_budget_results_identical(self, small_social, small_social_index, tmp_path):
        from repro.storage import save_index

        index_path = tmp_path / "i.fppv"
        save_index(small_social_index, index_path)
        assignment = cluster_graph(small_social, 5, seed=3)
        query = next(
            q for q in range(small_social.num_nodes)
            if q not in small_social_index
        )
        results = []
        for budget in (1, 4):
            store = DiskGraphStore(
                small_social, assignment, tmp_path / f"c{budget}",
                memory_budget=budget,
            )
            with DiskPPVStore(index_path) as ppv_store:
                engine = DiskFastPPV(store, ppv_store, delta=0.0,
                                     fault_budget=10**9)
                results.append(engine.query(query, stop=StopAfterIterations(1)))
        np.testing.assert_allclose(
            results[0].scores, results[1].scores, atol=0
        )
