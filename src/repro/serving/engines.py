"""The backend-agnostic ``Engine`` protocol, its adapters, and registry.

PRs 1-2 grew four engine classes with their own scalar and batch query
spellings.  The serving layer narrows all of them to one small protocol
(:class:`Engine`): a batch call per result kind plus a scalar streaming
call, with uniform stop-condition routing (time-based or user-defined
conditions fall back to the per-query scalar loop on every backend) and
a ``cache_token`` that tells the service when cached results went
stale.

Backends register under a name (``"memory"``, ``"disk"``) in a module
registry; :meth:`~repro.serving.PPVService.open` resolves a name — or
auto-detects one from the source object — to a factory from here.
Third-party engines can join via :func:`register_backend`.
"""

from __future__ import annotations

import os
from typing import Callable, Protocol, Sequence

from repro.core.batch import BatchFastPPV, batch_safe
from repro.core.index import PPVIndex
from repro.core.query import (
    DEFAULT_DELTA,
    FastPPV,
    QueryState,
    StoppingCondition,
)
from repro.core.splice import splice_matrix
from repro.storage.disk_engine import BatchDiskFastPPV, DiskFastPPV
from repro.storage.ppv_store import DiskPPVStore


class Engine(Protocol):
    """What a serving backend must provide to sit behind ``PPVService``.

    The protocol normalises the four per-engine query spellings into
    three calls; implementations guarantee that batch results equal the
    underlying engine's own batch call over the same node list (bitwise
    — the service adds no numerical steps of its own).
    """

    backend: str
    """Registry name of this backend (``"memory"``, ``"disk"``, ...)."""

    num_nodes: int
    """Graph size, for request validation."""

    def query_batch(
        self, nodes: Sequence[int], stop: StoppingCondition
    ) -> list:
        """Serve ``nodes`` as one batch under a shared stopping rule.

        Must route non-batch-safe conditions (time-based or
        user-defined; see :func:`repro.core.batch.batch_safe`) through
        the scalar per-query loop so their semantics are preserved.
        """
        ...

    def query_top_k_batch(
        self, nodes: Sequence[int], k: int, budget: int
    ) -> list:
        """Certified top-k for ``nodes`` with per-query retirement."""
        ...

    def query_stream(
        self,
        node: int,
        stop: StoppingCondition,
        on_iteration: Callable[[QueryState], None],
    ):
        """Scalar query with the per-iteration callback (streaming)."""
        ...

    def cache_token(self) -> object:
        """Identity of the index state results were computed from.

        The service drops its popularity cache whenever this object
        changes (compared by ``is``), so cached results never outlive
        the index they came from.
        """
        ...

    def close(self) -> None:
        """Release resources the adapter owns (stores it opened)."""
        ...


class MemoryEngine:
    """Adapter: the in-memory ``FastPPV`` / ``BatchFastPPV`` pair.

    Builds a fresh scalar engine and a cache-less batch twin (the
    service's popularity cache replaces the engine-level LRU, so results
    are cached exactly once); non-batch-safe stopping conditions route
    through the scalar per-query loop so their semantics survive.
    """

    backend = "memory"

    def __init__(
        self,
        graph,
        index: PPVIndex,
        delta: float = DEFAULT_DELTA,
        max_iterations: int = 64,
        online_epsilon: float | None = None,
        chunk_size: int | None = None,
    ) -> None:
        self.graph = graph
        self.index = index
        self._delta = delta
        self._max_iterations = max_iterations
        self._online_epsilon = online_epsilon
        self._chunk_size = chunk_size
        self._build()

    def _build(self) -> None:
        self._scalar = FastPPV(
            self.graph,
            self.index,
            delta=self._delta,
            max_iterations=self._max_iterations,
            online_epsilon=self._online_epsilon,
        )
        # The batch twin, with the engine-level LRU disabled: caching
        # lives in the service's PopularityCache.  Pre-assigned as the
        # scalar engine's lazy twin too, so both views share one splice
        # lowering.
        self._batch = BatchFastPPV(
            self.graph,
            self.index,
            delta=self._delta,
            max_iterations=self._max_iterations,
            online_epsilon=self._online_epsilon,
            cache_size=0,
            chunk_size=self._chunk_size,
        )
        self._scalar._batch_engine = self._batch

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def query_batch(self, nodes, stop):
        if not batch_safe(stop):
            # Time-based / user-defined conditions keep per-query scalar
            # semantics: in a batch, elapsed time is shared and
            # evaluation interleaves, which would silently change what
            # such conditions mean.
            return [self._scalar.query(int(n), stop=stop) for n in nodes]
        return self._batch.query_many(list(nodes), stop=stop)

    def query_top_k_batch(self, nodes, k, budget):
        return self._batch.query_top_k_many(
            list(nodes), k=k, max_iterations=budget
        )

    def query_stream(self, node, stop, on_iteration):
        return self._scalar.query(node, stop=stop, on_iteration=on_iteration)

    def cache_token(self) -> object:
        # The index's matrix lowering is rebuilt whenever the index
        # content changes through a supported path, so its identity is
        # exactly the lifetime of any result computed from it (the same
        # rule BatchFastPPV's engine-level cache used).
        return splice_matrix(self.index)

    def replace_index(self, index: PPVIndex, graph=None) -> None:
        """Swap in a new index (e.g. from ``update_index``) in place.

        Pass ``graph`` too when the update changed the graph itself (the
        usual :func:`repro.core.dynamic.update_index` flow).
        """
        if graph is not None:
            self.graph = graph
        if index.hub_mask.shape != (self.graph.num_nodes,):
            raise ValueError("index was built for a different graph size")
        self.index = index
        self._build()

    def close(self) -> None:  # nothing owned
        pass


class DiskEngine:
    """Adapter: the disk-resident ``DiskFastPPV`` / ``BatchDiskFastPPV``
    pair (Sect. 5.3 deployment).

    Batch calls go through the cluster-grouped scheduler of
    :class:`~repro.storage.disk_engine.BatchDiskFastPPV`, so every
    coalesced service batch shares cluster residency across its queries
    — two concurrent callers fault each needed cluster once per wave
    instead of once per caller.
    """

    backend = "disk"

    def __init__(
        self,
        graph_store,
        ppv_store: DiskPPVStore,
        delta: float = DEFAULT_DELTA,
        fault_budget: int | None = None,
        max_iterations: int = 64,
        kernel: str = "vectorised",
        owns_store: bool = False,
    ) -> None:
        self.graph_store = graph_store
        self.ppv_store = ppv_store
        self._owns_store = owns_store
        self._scalar = DiskFastPPV(
            graph_store,
            ppv_store,
            delta=delta,
            fault_budget=fault_budget,
            max_iterations=max_iterations,
            kernel=kernel,
        )
        self._batch = self._scalar.batch_engine

    @property
    def num_nodes(self) -> int:
        return self.graph_store.num_nodes

    def query_batch(self, nodes, stop):
        if not batch_safe(stop):
            # Same routing rule as the in-memory facade: shared-clock /
            # stateful conditions keep per-query scalar semantics.
            return [self._scalar.query(int(n), stop=stop) for n in nodes]
        return self._batch.query_many(list(nodes), stop=stop)

    def query_top_k_batch(self, nodes, k, budget):
        return self._batch.query_top_k_many(
            list(nodes), k=k, max_iterations=budget
        )

    def query_stream(self, node, stop, on_iteration):
        return self._scalar.query(node, stop=stop, on_iteration=on_iteration)

    def cache_token(self) -> object:
        # On-disk indexes are immutable for the life of the store.
        return self.ppv_store

    def close(self) -> None:
        if self._owns_store:
            self.ppv_store.close()


# --------------------------------------------------------------------- #
# Backend registry


def _memory_factory(source, *, graph=None, graph_store=None, **kwargs):
    if graph_store is not None:
        raise ValueError("the memory backend takes graph=, not graph_store=")
    if isinstance(source, FastPPV):
        engine = source
        return MemoryEngine(
            engine.graph,
            engine.index,
            delta=kwargs.pop("delta", engine.delta),
            max_iterations=kwargs.pop("max_iterations", engine.max_iterations),
            online_epsilon=kwargs.pop("online_epsilon", engine.online_epsilon),
            **kwargs,
        )
    if isinstance(source, PPVIndex):
        if graph is None:
            raise ValueError(
                "opening the memory backend from a PPVIndex needs graph="
            )
        return MemoryEngine(graph, source, **kwargs)
    raise TypeError(
        f"memory backend cannot open {type(source).__name__}; pass a "
        "PPVIndex (with graph=) or a FastPPV engine"
    )


def _disk_factory(source, *, graph=None, graph_store=None, **kwargs):
    if graph is not None:
        raise ValueError("the disk backend takes graph_store=, not graph=")
    if isinstance(source, DiskFastPPV):
        engine = source
        return DiskEngine(
            engine.graph_store,
            engine.ppv_store,
            delta=kwargs.pop("delta", engine.delta),
            fault_budget=kwargs.pop("fault_budget", engine.fault_budget),
            max_iterations=kwargs.pop(
                "max_iterations", engine.max_iterations
            ),
            kernel=kwargs.pop("kernel", engine.kernel),
            **kwargs,
        )
    owns = False
    if isinstance(source, (str, os.PathLike)):
        source = DiskPPVStore(source)
        owns = True
    if isinstance(source, DiskPPVStore):
        if graph_store is None:
            if owns:
                source.close()
            raise ValueError(
                "opening the disk backend needs graph_store= (a "
                "DiskGraphStore over the same graph)"
            )
        return DiskEngine(graph_store, source, owns_store=owns, **kwargs)
    raise TypeError(
        f"disk backend cannot open {type(source).__name__}; pass a "
        "DiskPPVStore, an .fppv path, or a DiskFastPPV engine"
    )


_BACKENDS: dict[str, Callable[..., Engine]] = {}


def register_backend(name: str, factory: Callable[..., Engine]) -> None:
    """Register (or replace) a backend factory under ``name``.

    ``factory(source, *, graph=None, graph_store=None, **engine_kwargs)``
    must return an :class:`Engine`.
    """
    _BACKENDS[name] = factory


def resolve_backend(name: str) -> Callable[..., Engine]:
    """The factory registered under ``name``.

    Raises
    ------
    KeyError
        With the list of known backends, if ``name`` is unknown.
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; registered: "
            f"{sorted(_BACKENDS)}"
        ) from None


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_BACKENDS))


def detect_backend(source, graph=None, graph_store=None) -> str:
    """Infer the backend name from what the caller handed us."""
    if isinstance(source, (PPVIndex, FastPPV)):
        return "memory"
    if isinstance(source, (DiskPPVStore, DiskFastPPV, str, os.PathLike)):
        return "disk"
    if graph is not None:
        return "memory"
    if graph_store is not None:
        return "disk"
    raise TypeError(
        f"cannot infer a backend from {type(source).__name__}; pass "
        "backend= explicitly"
    )


register_backend("memory", _memory_factory)
register_backend("disk", _disk_factory)
