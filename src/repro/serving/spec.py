"""The serving request model: specs, handles, and streaming snapshots.

A :class:`QuerySpec` is the backend-agnostic description of one request:
which query *family* answers it (``ppv``, ``top_k``, ``hitting``,
``reachability``, or anything registered through
:mod:`repro.serving.families`), which node(s) it is about (multi-node
PPV sets combine via the Linearity Theorem, see
:mod:`repro.core.linearity`), how to stop (a stopping condition or a
certified top-k target), and family-specific parameters.  Specs are
frozen and hashable so they can key caches and group compatible
requests into one engine batch.

A :class:`QueryHandle` is the future returned by
:meth:`~repro.serving.PPVService.submit`: the scheduler completes it
once the coalesced batch containing the spec has run.

A :class:`QuerySnapshot` is one frame of a streaming query
(:meth:`~repro.serving.PPVService.stream`): the per-iteration state of
Algorithm 2, including a stable copy of the partial estimate so
accuracy-aware clients can consume PPVs as they converge.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.linearity import normalise_weights
from repro.core.query import StoppingCondition, StopAfterIterations
from repro.core.topk import StopWhenCertified

DEFAULT_ETA = 2
"""Default incremental iterations when a spec names no stopping rule."""

DEFAULT_TOPK_BUDGET = 32
"""Default certificate iteration budget for ``top_k`` specs."""

_BUILTIN_PPV_FAMILIES = ("ppv", "top_k")
"""The two PPV-shaped families: the only ones that take ``stop`` /
``top_k``, and the only ones with no free-form ``params``."""


@dataclass(frozen=True)
class QuerySpec:
    """One serving request, independent of the backend that runs it.

    Parameters
    ----------
    nodes:
        A single node id or a sequence of them.  Multi-node specs are
        decomposed into single-node sub-queries and recombined with the
        Linearity Theorem.
    weights:
        Teleport preference per node (multi-node specs only); uniform
        when omitted.  Normalised to sum to 1 at construction.
    stop:
        Stopping condition shared by every sub-query; defaults to the
        paper's ``StopAfterIterations(2)``.  Mutually exclusive with
        ``top_k``.
    top_k:
        Certified top-k serving: iterate until the top-``top_k`` set is
        provably exact or ``top_k_budget`` iterations are spent.
    top_k_budget:
        Certificate iteration budget (only with ``top_k``).
    family:
        Query-family name.  Defaults to ``"top_k"`` when ``top_k`` is
        given, else ``"ppv"`` — so every pre-family spelling still
        means what it meant.  Naming ``"top_k"`` explicitly requires
        ``top_k``; naming ``"ppv"`` forbids it.  Non-PPV families
        (``hitting``, ``reachability``, registered extensions) take
        neither ``stop`` nor ``top_k``: their knobs go in ``params``.
    params:
        Family-specific parameters as a mapping with hashable values
        (e.g. ``{"target": 7}`` for ``hitting``).  Stored as a sorted
        ``(name, value)`` tuple so specs stay hashable.  The spec does
        not validate parameter *names* — the family does, when the
        service admits the spec.
    """

    nodes: tuple[int, ...]
    weights: tuple[float, ...] | None = None
    stop: StoppingCondition | None = None
    top_k: int | None = None
    top_k_budget: int = DEFAULT_TOPK_BUDGET
    family: str = "ppv"
    params: tuple[tuple[str, object], ...] = ()
    # Observability context (a repro.obs.trace.SpanContext) riding along
    # with the request.  compare=False keeps it out of __eq__/__hash__,
    # so traced and untraced twins still share cache entries and
    # coalescing groups — tracing can never change what is served.
    trace: object | None = field(default=None, compare=False, repr=False)

    def __init__(
        self,
        nodes: int | Sequence[int],
        weights: Sequence[float] | None = None,
        stop: StoppingCondition | None = None,
        top_k: int | None = None,
        top_k_budget: int = DEFAULT_TOPK_BUDGET,
        family: str | None = None,
        params: dict | Sequence[tuple[str, object]] | None = None,
        trace: object | None = None,
    ) -> None:
        if isinstance(nodes, (int, np.integer)):
            node_tuple: tuple[int, ...] = (int(nodes),)
        else:
            node_tuple = tuple(int(n) for n in nodes)
        if not node_tuple:
            raise ValueError("a QuerySpec needs at least one node")
        resolved_family = family or (
            "top_k" if top_k is not None else "ppv"
        )
        if resolved_family == "top_k" and top_k is None:
            raise ValueError('family "top_k" needs a top_k value')
        if resolved_family != "top_k" and top_k is not None:
            raise ValueError(
                f"family {resolved_family!r} does not take top_k"
            )
        if resolved_family not in _BUILTIN_PPV_FAMILIES:
            if stop is not None:
                raise ValueError(
                    f"family {resolved_family!r} does not take a stopping "
                    "condition; pass family parameters via params"
                )
        if top_k is not None:
            if stop is not None:
                raise ValueError("pass either stop or top_k, not both")
            if top_k <= 0:
                raise ValueError("top_k must be positive")
            if top_k_budget < 0:
                raise ValueError("top_k_budget must be non-negative")
        param_items = params.items() if isinstance(params, dict) else params
        param_tuple: tuple[tuple[str, object], ...] = ()
        if param_items:
            param_tuple = tuple(
                sorted((str(name), value) for name, value in param_items)
            )
        if param_tuple and resolved_family in _BUILTIN_PPV_FAMILIES:
            raise ValueError(
                f"family {resolved_family!r} takes no params; use "
                "stop/top_k/top_k_budget"
            )
        weight_tuple: tuple[float, ...] | None = None
        if weights is not None:
            weight_tuple = tuple(
                float(w)
                for w in normalise_weights(len(node_tuple), weights)
            )
        object.__setattr__(self, "nodes", node_tuple)
        object.__setattr__(self, "weights", weight_tuple)
        object.__setattr__(self, "stop", stop)
        object.__setattr__(self, "top_k", top_k)
        object.__setattr__(self, "top_k_budget", int(top_k_budget))
        object.__setattr__(self, "family", resolved_family)
        object.__setattr__(self, "params", param_tuple)
        object.__setattr__(self, "trace", trace)

    # ------------------------------------------------------------------ #

    def with_trace(self, trace) -> "QuerySpec":
        """A copy of this spec carrying ``trace`` (a
        :class:`repro.obs.trace.SpanContext` naming the trace to
        continue and the span to parent under).

        The copy is equal to (and hashes like) the original — see the
        ``trace`` field comment — so swapping it in is invisible to the
        cache and the batch grouper.
        """
        clone = copy.copy(self)
        object.__setattr__(clone, "trace", trace)
        return clone

    @property
    def is_multi(self) -> bool:
        """Whether this is a multi-node (Linearity Theorem) query."""
        return len(self.nodes) > 1

    def params_dict(self) -> dict[str, object]:
        """The family parameters as a plain dict."""
        return dict(self.params)

    def param(self, name: str, default=None):
        """One family parameter by name, or ``default``."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def weight_array(self) -> np.ndarray:
        """Normalised teleport weights, materialising the uniform default."""
        if self.weights is None:
            return np.full(len(self.nodes), 1.0 / len(self.nodes))
        return np.asarray(self.weights, dtype=float)

    def resolved_stop(self) -> StoppingCondition:
        """The stopping condition sub-queries actually run with.

        ``top_k`` specs resolve to the certificate rule
        (:class:`~repro.core.topk.StopWhenCertified`); otherwise the
        explicit ``stop`` or the paper's default
        ``StopAfterIterations(2)``.
        """
        if self.top_k is not None:
            return StopWhenCertified(
                k=self.top_k, max_iterations=self.top_k_budget
            )
        if self.stop is not None:
            return self.stop
        return StopAfterIterations(DEFAULT_ETA)

class QueryHandle:
    """Future for a submitted :class:`QuerySpec`.

    Completed by the scheduler once the coalesced batch containing the
    spec has been served; :meth:`result` blocks until then (re-raising
    any execution error).
    """

    __slots__ = ("spec", "_event", "_result", "_error", "_callbacks", "_obs")

    def __init__(self, spec: QuerySpec) -> None:
        self.spec = spec
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None
        self._callbacks: list = []
        # Serving-cost breadcrumbs (batch size, cache hits) filled in by
        # an observability-enabled service for the slow-query log.
        self._obs: dict | None = None

    def done(self) -> bool:
        """Whether the result (or an error) is available."""
        return self._event.is_set()

    def add_done_callback(self, callback) -> None:
        """Call ``callback(handle)`` once the handle resolves.

        Runs on the scheduler's drain thread (or immediately on the
        calling thread when the handle is already done), so callbacks
        must be cheap and must not block — hand off to your own event
        loop, e.g. ``loop.call_soon_threadsafe``.  This is the bridge
        the asyncio TCP server (:mod:`repro.server`) uses to await
        handles without parking a thread per request.  Callback
        exceptions are suppressed: a broken observer must not poison
        the drain thread serving everyone else's batch.
        """
        self._callbacks.append(callback)
        if self._event.is_set():
            self._invoke_callbacks()

    def _invoke_callbacks(self) -> None:
        while True:
            try:
                # pop() is atomic, so a registration racing the resolve
                # fires its callback on exactly one of the two threads.
                callback = self._callbacks.pop(0)
            except IndexError:
                return
            try:
                callback(self)
            except Exception:
                pass

    def result(self, timeout: float | None = None):
        """Block until served and return the backend's result object.

        Memory backend: :class:`~repro.core.query.QueryResult`
        (or :class:`~repro.core.topk.TopKResult` for ``top_k`` specs);
        disk backend: :class:`~repro.storage.disk_engine.DiskQueryResult`
        (or :class:`~repro.storage.disk_engine.DiskTopKResult`).

        Raises
        ------
        TimeoutError
            If ``timeout`` elapses before the batch ran.
        Exception
            Whatever the engine raised while serving the spec.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("query handle not served within timeout")
        if self._error is not None:
            raise self._error
        return self._result

    # Called by the scheduler only.
    def _set_result(self, result) -> None:
        self._result = result
        self._event.set()
        self._invoke_callbacks()

    def _set_error(self, error: BaseException) -> None:
        self._error = error
        self._event.set()
        self._invoke_callbacks()


@dataclass(frozen=True, eq=False)
class QuerySnapshot:
    """One streamed frame of an in-flight query.

    Attributes
    ----------
    iteration:
        Incremental iterations completed (0 = prime PPV only).
    l1_error:
        Query-time L1 error of the partial estimate (Eq. 6).
    frontier_size:
        Hubs on the current frontier.
    scores:
        A *copy* of the partial estimate, safe to keep after the stream
        advances (the engine mutates its buffer in place).
    certified:
        For ``top_k`` specs, whether the top-k certificate held at this
        iteration; ``None`` for plain specs.
    """

    iteration: int
    l1_error: float
    frontier_size: int
    scores: np.ndarray = field(repr=False)
    certified: bool | None = None

    def top_k(self, k: int = 10) -> np.ndarray:
        """Node ids of the ``k`` highest partial scores, best first."""
        order = np.lexsort((np.arange(self.scores.size), -self.scores))
        return order[:k]
