"""Batched disk serving: per-query equality with the scalar engine and
amortisation of cluster faults / hub reads across the batch."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FastPPV,
    StopAfterIterations,
    StopAtL1Error,
    build_index,
    query_top_k,
    select_hubs,
)
from repro.storage import (
    BatchDiskFastPPV,
    DiskFastPPV,
    DiskGraphStore,
    DiskPPVStore,
    cluster_graph,
    save_index,
)

BATCH = 16


@pytest.fixture(scope="module")
def disk_batch_setup(small_social, small_social_index, tmp_path_factory):
    root = tmp_path_factory.mktemp("disk_batch")
    index_path = root / "index.fppv"
    save_index(small_social_index, index_path)
    assignment = cluster_graph(small_social, 6, seed=1)
    rng = np.random.default_rng(7)
    queries = [
        int(q)
        for q in rng.choice(small_social.num_nodes, size=BATCH, replace=False)
    ]
    queries[0] = int(small_social_index.hubs[0])  # one hub query
    return root, assignment, index_path, queries


def _fresh_engine(small_social, setup, name, engine_cls, **kwargs):
    root, assignment, index_path, _ = setup
    store = DiskGraphStore(small_social, assignment, root / name)
    ppv_store = DiskPPVStore(index_path)
    return store, ppv_store, engine_cls(store, ppv_store, **kwargs)


class TestEquality:
    @pytest.mark.parametrize(
        "stop",
        [StopAfterIterations(0), StopAfterIterations(2), StopAtL1Error(0.05)],
    )
    def test_batch_matches_scalar_bitwise(
        self, disk_batch_setup, small_social, stop
    ):
        root, assignment, index_path, queries = disk_batch_setup
        scalar_results = []
        for i, q in enumerate(queries):
            store, ppv_store, engine = _fresh_engine(
                small_social, disk_batch_setup, f"s_{stop}_{i}", DiskFastPPV,
                delta=0.0,
            )
            with ppv_store:
                scalar_results.append(engine.query(q, stop=stop))
        store, ppv_store, batch = _fresh_engine(
            small_social, disk_batch_setup, f"b_{stop}", BatchDiskFastPPV,
            delta=0.0,
        )
        with ppv_store:
            batch_results = batch.query_many(queries, stop=stop)
        for scalar, batched in zip(scalar_results, batch_results):
            # Bitwise, not approximate: the batch scheduler only reorders
            # physical residency, never a query's mass flow.
            np.testing.assert_array_equal(scalar.scores, batched.scores)
            assert scalar.result.iterations == batched.result.iterations
            assert scalar.result.hubs_expanded == batched.result.hubs_expanded
            assert scalar.result.error_history == batched.result.error_history
            assert scalar.truncated == batched.truncated
            # Scalar-equivalent per-query I/O accounting.
            assert scalar.hub_reads == batched.hub_reads
            assert scalar.cluster_faults == batched.cluster_faults

    def test_duplicates_share_push_but_not_buffers(
        self, disk_batch_setup, small_social
    ):
        _, ppv_store, batch = _fresh_engine(
            small_social, disk_batch_setup, "dup", BatchDiskFastPPV, delta=0.0
        )
        with ppv_store:
            results = batch.query_many([9, 9, 9], stop=StopAfterIterations(1))
        np.testing.assert_array_equal(results[0].scores, results[1].scores)
        results[0].scores[0] += 1.0
        assert results[1].scores[0] != results[0].scores[0]

    def test_truncation_matches_scalar(self, disk_batch_setup, small_social):
        _, _, _, queries = disk_batch_setup
        non_hub = queries[1]
        _, scalar_ppv, scalar = _fresh_engine(
            small_social, disk_batch_setup, "trunc_s", DiskFastPPV,
            delta=0.0, fault_budget=1,
        )
        _, batch_ppv, batch = _fresh_engine(
            small_social, disk_batch_setup, "trunc_b", BatchDiskFastPPV,
            delta=0.0, fault_budget=1,
        )
        with scalar_ppv, batch_ppv:
            a = scalar.query(non_hub, stop=StopAfterIterations(0))
            (b,) = batch.query_many([non_hub], stop=StopAfterIterations(0))
        assert a.truncated and b.truncated
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_out_of_range_rejected(self, disk_batch_setup, small_social):
        _, ppv_store, batch = _fresh_engine(
            small_social, disk_batch_setup, "range", BatchDiskFastPPV
        )
        with ppv_store:
            with pytest.raises(ValueError):
                batch.query_many([10**6])

    def test_disk_fastppv_batch_engine_matches_scalar(
        self, disk_batch_setup, small_social
    ):
        _, ppv_store, engine = _fresh_engine(
            small_social, disk_batch_setup, "deleg", DiskFastPPV, delta=0.0
        )
        with ppv_store:
            assert isinstance(engine.batch_engine, BatchDiskFastPPV)
            results = engine.batch_engine.query_many(
                [4, 8], stop=StopAfterIterations(1)
            )
            reference = engine.query(4, stop=StopAfterIterations(1))
        assert [r.result.query for r in results] == [4, 8]
        np.testing.assert_array_equal(results[0].scores, reference.scores)


class TestKernels:
    """The vectorised splice path against the retained reference kernel
    (the pre-PR per-hub loop): bit-for-bit equality everywhere."""

    @pytest.mark.parametrize(
        "stop",
        [
            StopAfterIterations(2),
            StopAfterIterations(6),
            StopAtL1Error(1e-5),
        ],
    )
    @pytest.mark.parametrize("delta", [0.0, 0.005])
    def test_vectorised_matches_reference_bitwise(
        self, disk_batch_setup, small_social, stop, delta
    ):
        _, _, _, queries = disk_batch_setup
        reference_results = []
        for i, q in enumerate(queries):
            _, ppv_store, engine = _fresh_engine(
                small_social, disk_batch_setup, f"kr_{stop}_{delta}_{i}",
                DiskFastPPV, delta=delta, kernel="reference",
            )
            with ppv_store:
                reference_results.append(engine.query(q, stop=stop))
        # Vectorised scalar engine.
        for i, q in enumerate(queries):
            _, ppv_store, engine = _fresh_engine(
                small_social, disk_batch_setup, f"kv_{stop}_{delta}_{i}",
                DiskFastPPV, delta=delta,
            )
            with ppv_store:
                vectorised = engine.query(q, stop=stop)
            reference = reference_results[i]
            np.testing.assert_array_equal(
                reference.scores, vectorised.scores
            )
            assert (
                reference.result.error_history
                == vectorised.result.error_history
            )
            assert reference.result.iterations == vectorised.result.iterations
            assert reference.hub_reads == vectorised.hub_reads
            assert reference.cluster_faults == vectorised.cluster_faults
        # Vectorised batch engine.
        _, ppv_store, batch = _fresh_engine(
            small_social, disk_batch_setup, f"kb_{stop}_{delta}",
            BatchDiskFastPPV, delta=delta,
        )
        with ppv_store:
            batched = batch.query_many(queries, stop=stop)
        for reference, result in zip(reference_results, batched):
            np.testing.assert_array_equal(reference.scores, result.scores)
            assert (
                reference.result.error_history
                == result.result.error_history
            )
            assert reference.hub_reads == result.hub_reads

    def test_invalid_kernel_rejected(self, disk_batch_setup, small_social):
        with pytest.raises(ValueError, match="kernel"):
            _fresh_engine(
                small_social, disk_batch_setup, "bad_kernel", DiskFastPPV,
                kernel="gpu",
            )
        with pytest.raises(ValueError, match="kernel"):
            _fresh_engine(
                small_social, disk_batch_setup, "bad_kernel_b",
                BatchDiskFastPPV, kernel="gpu",
            )

    def test_batch_engine_inherits_kernel(self, disk_batch_setup,
                                          small_social):
        _, ppv_store, engine = _fresh_engine(
            small_social, disk_batch_setup, "inherit", DiskFastPPV,
            kernel="reference", max_iterations=7,
        )
        with ppv_store:
            batch = engine.batch_engine
        assert batch.kernel == "reference"
        assert batch.max_iterations == 7

    def test_serving_adapter_carries_kernel_and_cap(self, disk_batch_setup,
                                                    small_social):
        from repro.serving import PPVService

        _, ppv_store, engine = _fresh_engine(
            small_social, disk_batch_setup, "adapter", DiskFastPPV,
            kernel="reference", max_iterations=7,
        )
        with ppv_store:
            with PPVService.open(engine) as service:
                assert service.engine._scalar.kernel == "reference"
                assert service.engine._scalar.max_iterations == 7
                assert service.engine._batch.kernel == "reference"

    def test_batch_on_iteration_counts(self, disk_batch_setup,
                                       small_social):
        # The new BatchCallback contract on the disk batch engine: one
        # invocation per executed iteration per query, iteration 0
        # included, keyed by batch position.
        _, _, _, queries = disk_batch_setup
        workload = queries[:4]
        _, ppv_store, batch = _fresh_engine(
            small_social, disk_batch_setup, "cb", BatchDiskFastPPV,
            delta=0.0,
        )
        seen: dict[int, list[int]] = {}
        with ppv_store:
            results = batch.query_many(
                workload,
                stop=StopAfterIterations(2),
                on_iteration=lambda position, state: seen.setdefault(
                    position, []
                ).append(state.iteration),
            )
        for position, result in enumerate(results):
            assert seen[position] == list(
                range(result.result.iterations + 1)
            )


class TestMaxIterations:
    def test_cap_respected_like_memory_engine(self, disk_batch_setup,
                                              small_social,
                                              small_social_index):
        # An unreachable accuracy target must stop at max_iterations on
        # every engine — the disk path used to hardcode 64.
        _, _, _, queries = disk_batch_setup
        non_hub = queries[1]
        unreachable = StopAtL1Error(0.0)
        memory = FastPPV(
            small_social, small_social_index, delta=0.0, max_iterations=3
        )
        memory_result = memory.query(non_hub, stop=unreachable)
        assert memory_result.iterations == 3
        _, scalar_ppv, scalar = _fresh_engine(
            small_social, disk_batch_setup, "cap_s", DiskFastPPV,
            delta=0.0, max_iterations=3,
        )
        _, batch_ppv, batch = _fresh_engine(
            small_social, disk_batch_setup, "cap_b", BatchDiskFastPPV,
            delta=0.0, max_iterations=3,
        )
        _, ref_ppv, reference = _fresh_engine(
            small_social, disk_batch_setup, "cap_r", DiskFastPPV,
            delta=0.0, max_iterations=3, kernel="reference",
        )
        with scalar_ppv, batch_ppv, ref_ppv:
            scalar_result = scalar.query(non_hub, stop=unreachable)
            (batch_result,) = batch.query_many(
                [non_hub], stop=unreachable
            )
            reference_result = reference.query(non_hub, stop=unreachable)
        assert scalar_result.result.iterations == 3
        assert batch_result.result.iterations == 3
        assert reference_result.result.iterations == 3

    def test_default_cap_matches_memory_default(self, disk_batch_setup,
                                                small_social):
        _, ppv_store, engine = _fresh_engine(
            small_social, disk_batch_setup, "cap_default", DiskFastPPV
        )
        ppv_store.close()
        assert engine.max_iterations == 64  # repro.core.query default


class TestAmortisation:
    def test_batch16_faults_below_16x_single(
        self, disk_batch_setup, small_social
    ):
        root, assignment, index_path, queries = disk_batch_setup
        # Single-query baseline: every query on its own cold store.
        single_faults = []
        for i, q in enumerate(queries):
            store, ppv_store, engine = _fresh_engine(
                small_social, disk_batch_setup, f"amort_s{i}", DiskFastPPV,
                delta=0.0,
            )
            with ppv_store:
                engine.query(q, stop=StopAfterIterations(2))
            single_faults.append(store.faults)
        store, ppv_store, batch = _fresh_engine(
            small_social, disk_batch_setup, "amort_b", BatchDiskFastPPV,
            delta=0.0,
        )
        with ppv_store:
            batch.query_many(queries, stop=StopAfterIterations(2))
        batch_faults = store.faults
        non_hub_single = max(single_faults)
        assert batch_faults < BATCH * non_hub_single
        # Stronger: beat even the exact sum of cold per-query costs.
        assert batch_faults < sum(single_faults)

    def test_per_query_faults_are_budget_independent(
        self, disk_batch_setup, small_social
    ):
        # Per-query cluster_faults reports the deterministic budget-1
        # scalar equivalent (drain steps), whatever memory_budget the
        # batch store actually has; scores stay bitwise equal.  (A
        # scalar engine on the same budget-3 store may report *fewer*
        # physical faults — LRU hits are free there; see the disk_engine
        # module docstring.)
        root, assignment, index_path, queries = disk_batch_setup
        non_hub = queries[1]
        store1, ppv1, _ = _fresh_engine(
            small_social, disk_batch_setup, "budget1", DiskFastPPV, delta=0.0
        )
        scalar1 = DiskFastPPV(store1, ppv1, delta=0.0)
        store3 = DiskGraphStore(
            small_social, assignment, root / "budget3", memory_budget=3
        )
        with ppv1, DiskPPVStore(index_path) as ppv3:
            reference = scalar1.query(non_hub, stop=StopAfterIterations(1))
            batch = BatchDiskFastPPV(store3, ppv3, delta=0.0)
            (batched,) = batch.query_many(
                [non_hub], stop=StopAfterIterations(1)
            )
        assert batched.cluster_faults == reference.cluster_faults
        np.testing.assert_array_equal(batched.scores, reference.scores)
        # The larger budget shows up in the *physical* counter instead.
        assert store3.faults <= store1.faults

    def test_hub_reads_amortised(self, disk_batch_setup, small_social):
        _, _, _, queries = disk_batch_setup
        store, ppv_store, batch = _fresh_engine(
            small_social, disk_batch_setup, "reads", BatchDiskFastPPV,
            delta=0.0,
        )
        with ppv_store:
            results = batch.query_many(queries, stop=StopAfterIterations(2))
            physical = ppv_store.reads
        requested = sum(r.hub_reads for r in results)
        assert physical < requested
        # One physical read per unique hub at most.
        assert physical <= ppv_store.hubs.size


class TestDiskTopK:
    def test_certified_sets_match_memory_engine(
        self, disk_batch_setup, small_social, small_social_index, tmp_path
    ):
        # Certificates need full prime PPVs: rebuild the index unclipped.
        index = build_index(
            small_social, small_social_index.hubs, clip=0.0
        )
        index_path = tmp_path / "unclipped.fppv"
        save_index(index, index_path)
        assignment = cluster_graph(small_social, 6, seed=1)
        store = DiskGraphStore(small_social, assignment, tmp_path / "c")
        memory = FastPPV(small_social, index, delta=0.0)
        queries = [3, 57, 200, int(index.hubs[0])]
        with DiskPPVStore(index_path) as ppv_store:
            batch = BatchDiskFastPPV(
                store, ppv_store, delta=0.0, fault_budget=10**9
            )
            results = batch.query_top_k_many(queries, k=5, max_iterations=40)
        certified = 0
        for q, disk_result in zip(queries, results):
            reference = query_top_k(memory, q, k=5, max_iterations=40)
            if disk_result.topk.certified and reference.certified:
                assert set(disk_result.topk.nodes.tolist()) == set(
                    reference.nodes.tolist()
                )
                certified += 1
            assert disk_result.hub_reads > 0
        assert certified > 0

    def test_invalid_k(self, disk_batch_setup, small_social):
        _, ppv_store, batch = _fresh_engine(
            small_social, disk_batch_setup, "topk_k", BatchDiskFastPPV
        )
        with ppv_store:
            with pytest.raises(ValueError):
                batch.query_top_k_many([3], k=0)
