"""Canonical evaluation graphs — scaled-down stand-ins for Sect. 6's data.

The paper's DBLP has 2.0M nodes / 8.8M edges and its LiveJournal sample
1.2M / 4.8M.  At ``scale=1.0`` ours have ~9k and ~6k nodes — about 200x
smaller, the size pure-Python kernels evaluate in minutes.  The structural
knobs (tripartite communities, ring locality, Zipf skew, reciprocity) are
chosen so the algorithmic behaviour matches; see DESIGN.md.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.generators import BibliographicGraph, bibliographic_graph, social_graph


def dblp_graph(scale: float = 1.0, seed: int = 7) -> BibliographicGraph:
    """The "DBLP" evaluation graph (undirected, tripartite, timestamped).

    ``scale`` multiplies all three node-class sizes; 1.0 gives
    3000 authors / 6000 papers / 80 venues (~9k nodes, ~36k edges).
    """
    if scale <= 0.0:
        raise ValueError("scale must be positive")
    return bibliographic_graph(
        num_authors=max(20, int(3000 * scale)),
        num_papers=max(40, int(6000 * scale)),
        num_venues=max(4, int(80 * scale)),
        seed=seed,
    )


def livejournal_graph(scale: float = 1.0, seed: int = 11) -> DiGraph:
    """The "LiveJournal" evaluation graph (directed, local, reciprocated).

    ``scale`` multiplies the node count; 1.0 gives 6000 nodes (~40k edges).
    """
    if scale <= 0.0:
        raise ValueError("scale must be positive")
    return social_graph(num_nodes=max(50, int(6000 * scale)), seed=seed)
