"""Tests for certified top-k queries."""

import numpy as np
import pytest

from repro import FastPPV, build_index, exact_ppv, select_hubs
from repro.core.topk import TopKResult, _certificate_holds, query_top_k
from repro.metrics import top_k_nodes


@pytest.fixture(scope="module")
def engine(small_social, small_social_index):
    # delta=0 for a sound certificate (see module docstring).
    return FastPPV(small_social, small_social_index, delta=0.0)


class TestCertificate:
    def test_holds_with_clear_gap(self):
        scores = np.array([0.5, 0.3, 0.01])
        assert _certificate_holds(scores, k=2, phi=0.1)

    def test_fails_with_narrow_gap(self):
        scores = np.array([0.5, 0.3, 0.25])
        assert not _certificate_holds(scores, k=2, phi=0.1)

    def test_trivial_when_k_covers_graph(self):
        scores = np.array([0.5, 0.3])
        assert _certificate_holds(scores, k=2, phi=0.9)


class TestQueryTopK:
    def test_certified_set_matches_exact(self, engine, small_social):
        for query in (5, 77, 130):
            result = query_top_k(engine, query, k=5, max_iterations=40)
            if not result.certified:
                continue  # budget exhausted (rare) — nothing to verify
            exact = exact_ppv(small_social, query)
            expected = set(top_k_nodes(exact, 5).tolist())
            assert set(result.nodes.tolist()) == expected

    def test_certifies_somewhere(self, engine, small_social):
        certified = sum(
            query_top_k(engine, q, k=3, max_iterations=40).certified
            for q in range(0, 100, 10)
        )
        assert certified >= 5  # most queries certify within the budget

    def test_result_fields(self, engine):
        result = query_top_k(engine, 9, k=4)
        assert isinstance(result, TopKResult)
        assert result.nodes.size == 4
        assert result.iterations >= 0
        assert 0.0 <= result.l1_error <= 1.0
        assert result.scores.shape[0] == engine.graph.num_nodes

    def test_fewer_iterations_than_accuracy_target(self, engine):
        # The certificate typically fires long before the error is tiny:
        # the point of bound-based top-k.
        result = query_top_k(engine, 9, k=3, max_iterations=40)
        assert result.certified
        assert result.l1_error > 1e-3  # did NOT need full convergence

    def test_k_larger_than_graph(self, engine, small_social):
        result = query_top_k(engine, 2, k=small_social.num_nodes + 5)
        assert result.certified  # vacuously: the set is everything
        assert result.iterations == 0

    def test_invalid_k(self, engine):
        with pytest.raises(ValueError):
            query_top_k(engine, 2, k=0)

    def test_budget_respected(self, engine):
        result = query_top_k(engine, 9, k=3, max_iterations=1)
        assert result.iterations <= 1
