"""Ranking accuracy: Kendall's tau and precision over the top-k nodes.

The paper (following Chakrabarti [6]) focuses on the top 10 nodes because
"users are usually more interested in higher ranked nodes".  Both metrics
compare the approximate ranking against the ranking induced by the exact
PPV.
"""

from __future__ import annotations

import numpy as np


def top_k_nodes(scores: np.ndarray, k: int = 10) -> np.ndarray:
    """Node ids of the ``k`` largest scores, best first, ties by node id.

    The deterministic tie-break matters: approximate vectors contain many
    exactly-equal (often zero) entries, and an unstable order would make
    the metrics noisy.
    """
    scores = np.asarray(scores)
    k = min(k, scores.size)
    order = np.lexsort((np.arange(scores.size), -scores))
    return order[:k]


def kendall_tau(
    exact: np.ndarray, estimate: np.ndarray, k: int = 10
) -> float:
    """Kendall's tau-b between exact and estimated rankings of the top-k.

    The comparison set is the union of both top-k lists (the convention of
    Fogaras et al. [8] / Chakrabarti [6]): for every pair of nodes in the
    union, the pair is *concordant* if both vectors order it the same way,
    *discordant* if they order it oppositely; pairs tied in either vector
    contribute to the tie corrections of the tau-b denominator.

    Returns a value in ``[-1, 1]``; 1 means identical order.
    """
    exact = np.asarray(exact, dtype=float)
    estimate = np.asarray(estimate, dtype=float)
    universe = np.union1d(top_k_nodes(exact, k), top_k_nodes(estimate, k))
    a = exact[universe]
    b = estimate[universe]
    concordant = 0
    discordant = 0
    ties_a = 0
    ties_b = 0
    n = universe.size
    for i in range(n):
        for j in range(i + 1, n):
            da = a[i] - a[j]
            db = b[i] - b[j]
            if da == 0.0 and db == 0.0:
                ties_a += 1
                ties_b += 1
            elif da == 0.0:
                ties_a += 1
            elif db == 0.0:
                ties_b += 1
            elif (da > 0.0) == (db > 0.0):
                concordant += 1
            else:
                discordant += 1
    total = n * (n - 1) // 2
    denom = np.sqrt(float(total - ties_a) * float(total - ties_b))
    if denom == 0.0:
        return 1.0  # everything tied in both: orderings agree vacuously
    return float((concordant - discordant) / denom)


def precision_at_k(exact: np.ndarray, estimate: np.ndarray, k: int = 10) -> float:
    """Fraction of the exact top-k recovered by the estimated top-k."""
    exact_top = set(top_k_nodes(exact, k).tolist())
    estimate_top = set(top_k_nodes(estimate, k).tolist())
    if not exact_top:
        return 1.0
    return len(exact_top & estimate_top) / len(exact_top)
