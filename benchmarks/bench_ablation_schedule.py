"""Ablation: scheduling metric — hub length vs natural path length.

Scheduled approximation needs a partition of the tour set; FastPPV's
contribution is partitioning by *hub length*.  The natural alternative is
*path length* (power iteration as an anytime algorithm).  This bench
compares error decay per iteration and per unit of work, quantifying what
the hub-based realization buys: iteration 0 already covers every hub-free
tour of any length, and later iterations reuse precomputed prime PPVs.
"""

import numpy as np
import pytest

from benchmarks.common import BENCH_SCALE, emit
from repro import FastPPV, StopAfterIterations, build_index, select_hubs
from repro.core.schedule_length import LengthScheduledPPV
from repro.experiments import Table, livejournal_graph


@pytest.fixture(scope="module")
def engines():
    graph = livejournal_graph(scale=BENCH_SCALE)
    hubs = select_hubs(graph, max(40, int(300 * BENCH_SCALE)))
    index = build_index(graph, hubs)
    hub_engine = FastPPV(graph, index, delta=0.0)
    length_engine = LengthScheduledPPV(graph)
    rng = np.random.default_rng(0)
    queries = rng.choice(graph.num_nodes, size=12, replace=False).tolist()
    return graph, hub_engine, length_engine, queries


def test_ablation_schedule(benchmark, engines):
    graph, hub_engine, length_engine, queries = engines
    table = Table(
        title="Ablation — scheduling metric: hub length vs path length",
        headers=[
            "Iterations",
            "Hub-length L1 error",
            "Path-length L1 error",
            "Hub-length work",
            "Path-length work",
        ],
    )
    for eta in (0, 1, 2, 3, 5, 8):
        hub_errors, length_errors = [], []
        hub_work, length_work = [], []
        for query in queries:
            hub_result = hub_engine.query(query, stop=StopAfterIterations(eta))
            length_result = length_engine.query(
                query, stop=StopAfterIterations(eta)
            )
            hub_errors.append(hub_result.l1_error)
            length_errors.append(length_result.l1_error)
            hub_work.append(hub_result.work_units)
            length_work.append(length_result.work_units)
        table.add_row(
            eta,
            float(np.mean(hub_errors)),
            float(np.mean(length_errors)),
            float(np.mean(hub_work)),
            float(np.mean(length_work)),
        )
    emit("ablation_schedule", table)

    # The paper's claim, quantified: at every iteration budget the
    # hub-length schedule has covered at least as much mass.
    for row in table.rows:
        _, hub_error, length_error, _, _ = row
        assert hub_error <= length_error + 1e-9

    # Timing record: one eta=2 hub-schedule query.
    stop = StopAfterIterations(2)
    benchmark(lambda: hub_engine.query(int(queries[0]), stop=stop))
