"""Dynamic graphs: incremental index maintenance (future work #2, built).

A social network gains a batch of new friendships.  Instead of
rebuilding the whole PPV index, only the prime PPVs whose prime
subgraphs contain a changed node are recomputed — the paper's proposed
strategy, with a timing comparison against the full rebuild.

Run with:  python examples/dynamic_graph.py
"""

import time

import numpy as np

from repro import FastPPV, build_index, select_hubs, social_graph
from repro.core.dynamic import add_edges, rebuild_index, update_index


def main() -> None:
    graph = social_graph(num_nodes=3000, seed=17)
    hubs = select_hubs(graph, num_hubs=200)
    index = build_index(graph, hubs)
    print(f"graph: {graph}; index: {index.num_hubs} hubs")

    # A batch of new friendships lands.
    rng = np.random.default_rng(99)
    new_edges = [
        (int(rng.integers(graph.num_nodes)), int(rng.integers(graph.num_nodes)))
        for _ in range(20)
    ]
    new_edges = [(s, d) for s, d in new_edges if s != d]
    new_graph = add_edges(graph, new_edges)
    print(f"applied {len(new_edges)} edge insertions")

    started = time.perf_counter()
    incremental, recomputed = update_index(graph, new_graph, index)
    incremental_seconds = time.perf_counter() - started

    started = time.perf_counter()
    rebuilt = rebuild_index(new_graph, index)
    rebuild_seconds = time.perf_counter() - started

    print(
        f"\nincremental update: {recomputed}/{index.num_hubs} prime PPVs "
        f"recomputed in {incremental_seconds * 1000:.1f} ms"
    )
    print(f"full rebuild:       all {index.num_hubs} in {rebuild_seconds * 1000:.1f} ms")
    print(f"speed-up:           {rebuild_seconds / incremental_seconds:.1f}x")

    # Both paths answer queries identically.
    query = 42
    a = FastPPV(new_graph, incremental).query(query)
    b = FastPPV(new_graph, rebuilt).query(query)
    difference = float(np.abs(a.scores - b.scores).max())
    print(f"\nmax score difference incremental vs rebuild: {difference:.2e}")


if __name__ == "__main__":
    main()
