"""Forward push, a.k.a. the Bookmark-Coloring Algorithm (Berkhin [5]).

The primitive under the HubRankP baseline and a useful approximate PPV
method in its own right.  State is an estimate vector ``p`` and a residual
vector ``r`` with the invariant

    exact_ppv(q) = p + sum_u r[u] * exact_ppv(u)

Pushing node ``u`` moves ``alpha * r[u]`` into ``p[u]`` and spreads the
remaining ``(1 - alpha) * r[u]`` over the out-neighbours' residuals.  A
node is pushed while its residual exceeds ``threshold * out_degree`` (the
degree-normalised criterion of Andersen-Chung-Lang, which bounds total
work by ``1 / (alpha * threshold)`` regardless of processing order).

The implementation is level-synchronous and vectorised: every round pushes
*all* nodes currently above threshold in one numpy gather/scatter.  The
result is identical to the sequential queue formulation up to which
sub-threshold residuals remain (both respect the invariant above and the
same error bound ``||error||_1 <= residual.sum()``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.pagerank import DEFAULT_ALPHA


def forward_push(
    graph: DiGraph,
    source: int,
    alpha: float = DEFAULT_ALPHA,
    threshold: float = 1e-4,
    hub_vectors: "dict[int, tuple[np.ndarray, np.ndarray]] | None" = None,
    skip_source_splice: bool = True,
    counters: dict | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Approximate PPV of ``source`` by forward push.

    Parameters
    ----------
    graph:
        The graph.
    source:
        Query node.
    alpha:
        Teleport probability.
    threshold:
        Degree-normalised push threshold: ``u`` is pushed while
        ``r[u] > threshold * max(out_degree(u), 1)``.  Smaller = more
        accurate and slower (the baseline's ``push`` parameter, Fig. 5).
    hub_vectors:
        Optional ``hub -> (nodes, scores)`` sparse *full* PPVs.  When a
        hub with a cached vector rises above threshold, its residual is
        spliced (``p += r[u] * scores``, since a not-yet-stopped walk at
        ``u`` stops with distribution ``exact_ppv(u)``) instead of pushed
        — the HubRankP reuse step.
    skip_source_splice:
        Do not splice at the source itself even if it is a hub (the cached
        vector would trivially answer the query from clipped storage).
    counters:
        Optional dict; on return its ``"edges"`` and ``"splice_entries"``
        keys hold the edge traversals performed and index entries spliced
        — the scale-independent work measure of the benchmarks.

    Returns
    -------
    (estimate, residual):
        Dense vectors; ``residual.sum()`` upper-bounds the L1 error of
        ``estimate`` against the exact PPV.
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source node {source} out of range")
    if threshold <= 0.0:
        raise ValueError("threshold must be positive")
    indptr, indices = graph.indptr, graph.indices
    out_degrees = graph.out_degrees
    edge_probabilities = graph.edge_probabilities
    push_limits = threshold * np.maximum(out_degrees, 1)

    hub_ids: np.ndarray | None = None
    if hub_vectors:
        hub_ids = np.fromiter(hub_vectors.keys(), dtype=np.int64)

    estimate = np.zeros(n)
    residual = np.zeros(n)
    residual[source] = 1.0
    edges_touched = 0
    splice_entries = 0

    while True:
        active = np.nonzero(residual > push_limits)[0]
        if active.size == 0:
            break

        if hub_ids is not None:
            is_cached = np.isin(active, hub_ids)
            if skip_source_splice:
                is_cached &= active != source
            for hub in active[is_cached]:
                mass = residual[hub]
                residual[hub] = 0.0
                nodes, scores = hub_vectors[int(hub)]  # type: ignore[index]
                estimate[nodes] += mass * scores
                splice_entries += nodes.size
            active = active[~is_cached]
            if active.size == 0:
                continue

        masses = residual[active]
        residual[active] = 0.0
        estimate[active] += alpha * masses

        degrees = out_degrees[active]
        has_out = degrees > 0  # dangling nodes: the walk dies (tour model)
        expand_nodes = active[has_out]
        if expand_nodes.size == 0:
            continue
        expand_masses = masses[has_out]
        counts = degrees[has_out]
        starts = indptr[expand_nodes]
        total = int(counts.sum())
        edges_touched += total
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        edge_ids = np.repeat(starts, counts) + offsets
        targets = indices[edge_ids]
        shares = (
            (1.0 - alpha)
            * np.repeat(expand_masses, counts)
            * edge_probabilities[edge_ids]
        )
        residual += np.bincount(targets, weights=shares, minlength=n)

    if counters is not None:
        counters["edges"] = edges_touched
        counters["splice_entries"] = splice_entries
    return estimate, residual
