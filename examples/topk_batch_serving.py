"""Certified top-k batch serving, in memory and from disk.

Two serving modes built on the same certificate (Eq. 6's missing-mass
bound): the in-memory batch engine checks every in-flight query's top-k
certificate vectorised each round and retires queries the moment their
top set is provably exact, while the disk deployment serves the same
workload with cluster faults and index reads amortised across the batch.

Run with:  python examples/topk_batch_serving.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    BatchFastPPV,
    FastPPV,
    build_index,
    select_hubs,
    social_graph,
)
from repro.storage import (
    BatchDiskFastPPV,
    DiskGraphStore,
    DiskPPVStore,
    cluster_graph,
    save_index,
)


def main() -> None:
    graph = social_graph(num_nodes=1500, seed=12)
    hubs = select_hubs(graph, num_hubs=150)
    # clip=0 + delta=0: sound certificates (see repro.core.topk).
    index = build_index(graph, hubs, clip=0.0, epsilon=1e-6)

    rng = np.random.default_rng(3)
    queries = [int(q) for q in rng.choice(graph.num_nodes, 12, replace=False)]

    # ---- in-memory: vectorised certificates, per-query retirement ----
    batch = BatchFastPPV(graph, index, delta=0.0)
    results = batch.query_top_k_many(queries, k=5, max_iterations=40)
    print("in-memory batch, certified top-5 per query:")
    print(f"{'query':>7} {'iters':>6} {'L1 err at stop':>15} {'certified':>10}")
    for query, result in zip(queries, results):
        print(
            f"{query:>7} {result.iterations:>6} {result.l1_error:>15.4f} "
            f"{str(result.certified):>10}"
        )
    iters = [r.iterations for r in results]
    print(
        f"\nqueries retire individually: iteration counts span "
        f"{min(iters)}..{max(iters)} — nobody waits for the slowest "
        "certificate.\n"
    )

    # ---- the same workload from a disk-resident deployment ----
    workdir = Path(tempfile.mkdtemp(prefix="fastppv_topk_"))
    save_index(index, workdir / "index.fppv")
    assignment = cluster_graph(graph, num_clusters=10, seed=1)

    def serve(label, run):
        store = DiskGraphStore(graph, assignment, workdir / label)
        with DiskPPVStore(workdir / "index.fppv") as ppv_store:
            run_results = run(store, ppv_store)
            print(
                f"{label:>7}: {store.faults:>4} cluster faults, "
                f"{ppv_store.reads:>5} hub reads for {len(queries)} queries"
            )
        return run_results

    print("disk deployment, same top-5 workload:")

    def scalar_run(store, ppv_store):
        # Batches of one: per-query I/O with nothing to amortise.
        engine = BatchDiskFastPPV(
            store, ppv_store, delta=0.0, fault_budget=10**9
        )
        return [
            engine.query_top_k_many([q], k=5, max_iterations=40)[0]
            for q in queries
        ]

    def batched_run(store, ppv_store):
        engine = BatchDiskFastPPV(
            store, ppv_store, delta=0.0, fault_budget=10**9
        )
        return engine.query_top_k_many(queries, k=5, max_iterations=40)

    one_by_one = serve("scalar", scalar_run)
    batched = serve("batch", batched_run)
    agree = all(
        set(a.topk.nodes.tolist()) == set(b.topk.nodes.tolist())
        for a, b in zip(one_by_one, batched)
    )
    print(f"\nsame certified sets either way: {agree}")
    memory_engine = FastPPV(graph, index, delta=0.0)
    exact_checks = sum(
        set(r.topk.nodes.tolist())
        == set(memory_engine.query_many([q], top_k=5)[0].nodes.tolist())
        for q, r in zip(queries, batched)
        if r.topk.certified
    )
    print(f"certified disk answers matching the in-memory engine: {exact_checks}")


if __name__ == "__main__":
    main()
