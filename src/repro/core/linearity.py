"""Multi-node queries via the Linearity Theorem (Jeh & Widom).

The PPV of a weighted query set ``{(q_i, w_i)}`` with ``sum w_i = 1`` is
``sum_i w_i * r_{q_i}`` — so a multi-node query decomposes into single-node
queries, which is why the paper (Sect. 1 and Sect. 6, "Test queries") only
evaluates single-node queries.  This module provides the assembly, split
into two reusable pieces:

* :func:`normalise_weights` — validate and normalise a teleport
  preference vector;
* :func:`combine_results` — fold already-computed single-node
  :class:`~repro.core.query.QueryResult`\\ s into the weighted mixture.

:func:`multi_node_ppv` composes them over a scalar engine; the
:class:`~repro.serving.PPVService` façade uses the same two pieces so a
multi-node :class:`~repro.serving.QuerySpec` is served through whichever
backend (and batch schedule) the service runs on while producing the
identical weighted assembly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.query import FastPPV, QueryResult, StoppingCondition


def normalise_weights(
    num_queries: int, weights: Sequence[float] | None
) -> np.ndarray:
    """Teleport weights for ``num_queries`` nodes, normalised to sum to 1.

    ``None`` means uniform preference.  Raises ``ValueError`` on a length
    mismatch, negative entries, or an all-zero vector.
    """
    if num_queries == 0:
        raise ValueError("a query needs at least one node")
    if weights is None:
        return np.full(num_queries, 1.0 / num_queries)
    weight_arr = np.asarray(weights, dtype=float)
    if weight_arr.shape != (num_queries,):
        raise ValueError("one weight per query node required")
    if np.any(weight_arr < 0.0) or weight_arr.sum() <= 0.0:
        raise ValueError("weights must be non-negative with positive sum")
    return weight_arr / weight_arr.sum()


def combine_results(
    queries: Sequence[int],
    weight_arr: np.ndarray,
    results: Sequence[QueryResult],
) -> QueryResult:
    """Weighted Linearity-Theorem mixture of per-node query results.

    ``results[i]`` must be the single-node result of ``queries[i]``;
    ``weight_arr`` is assumed normalised (see :func:`normalise_weights`).
    ``query`` of the returned result is the first node of the set;
    ``error_history`` combines the per-query histories weighted the same
    way (valid since L1 error is linear over the under-approximations).
    """
    scores = np.zeros_like(results[0].scores)
    for weight, result in zip(weight_arr, results):
        scores += weight * result.scores

    depth = max(len(r.error_history) for r in results)
    combined_history = []
    for level in range(depth):
        error = 0.0
        for weight, result in zip(weight_arr, results):
            history = result.error_history
            error += weight * history[min(level, len(history) - 1)]
        combined_history.append(error)

    return QueryResult(
        query=int(queries[0]),
        scores=scores,
        iterations=max(r.iterations for r in results),
        error_history=combined_history,
        hubs_expanded=sum(r.hubs_expanded for r in results),
        seconds=sum(r.seconds for r in results),
        work_units=sum(r.work_units for r in results),
    )


def multi_node_ppv(
    engine: FastPPV,
    queries: Sequence[int],
    weights: Sequence[float] | None = None,
    stop: StoppingCondition | None = None,
) -> QueryResult:
    """Estimated PPV of a multi-node query.

    Parameters
    ----------
    engine:
        A :class:`~repro.core.query.FastPPV` engine.
    queries:
        Query node ids (the teleport set).
    weights:
        Teleport preference per node; uniform when omitted.  Normalised to
        sum to 1.
    stop:
        Stopping condition forwarded to each single-node query.

    Returns
    -------
    QueryResult
        The weighted combination (see :func:`combine_results`).
    """
    weight_arr = normalise_weights(len(queries), weights)
    results = [engine.query(int(q), stop=stop) for q in queries]
    return combine_results(queries, weight_arr, results)
