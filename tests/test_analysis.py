"""Tests for graph statistics."""

import pytest

from repro.graph import from_edges
from repro.graph.analysis import (
    bfs_eccentricity,
    effective_diameter,
    graph_stats,
    reciprocity,
)
from repro.graph.generators import complete_graph, cycle_graph, path_graph


class TestReciprocity:
    def test_fully_reciprocal(self):
        graph = from_edges([(0, 1), (1, 0)])
        assert reciprocity(graph) == 1.0

    def test_one_way(self):
        graph = from_edges([(0, 1), (1, 2)])
        assert reciprocity(graph) == 0.0

    def test_half(self):
        graph = from_edges([(0, 1), (1, 0), (1, 2), (2, 3)])
        assert reciprocity(graph) == pytest.approx(0.5)

    def test_empty(self):
        assert reciprocity(from_edges([], num_nodes=3)) == 0.0


class TestEccentricityAndDiameter:
    def test_path_eccentricity(self):
        graph = path_graph(5)
        assert bfs_eccentricity(graph, 0) == 4
        assert bfs_eccentricity(graph, 4) == 0

    def test_cycle_eccentricity(self):
        assert bfs_eccentricity(cycle_graph(6), 0) == 5

    def test_complete_diameter(self):
        assert effective_diameter(complete_graph(5)) == pytest.approx(1.0)

    def test_diameter_deterministic(self, small_social):
        a = effective_diameter(small_social, samples=8, seed=3)
        b = effective_diameter(small_social, samples=8, seed=3)
        assert a == b

    def test_empty_graph(self):
        assert effective_diameter(from_edges([], num_nodes=0)) == 0.0


class TestGraphStats:
    def test_fields(self, small_social):
        stats = graph_stats(small_social)
        assert stats.num_nodes == small_social.num_nodes
        assert stats.num_edges == small_social.num_edges
        assert not stats.is_weighted
        assert stats.num_dangling == 0
        assert stats.min_out_degree >= 1
        assert stats.max_in_degree >= stats.min_out_degree
        assert 0.0 <= stats.reciprocity <= 1.0
        assert stats.effective_diameter > 1.0

    def test_dangling_count(self):
        stats = graph_stats(path_graph(4))
        assert stats.num_dangling == 1

    def test_as_dict_keys(self, small_social):
        table = graph_stats(small_social).as_dict()
        assert "nodes" in table and "edges" in table
        assert "reciprocity" in table

    def test_weighted_flag(self):
        from repro.graph import from_weighted_edges

        stats = graph_stats(from_weighted_edges([(0, 1, 2.0), (1, 0, 1.0)]))
        assert stats.is_weighted
