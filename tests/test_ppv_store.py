"""Unit tests for the binary on-disk PPV index."""

import numpy as np
import pytest

from repro.core.index import build_index
from repro.storage import DiskPPVStore, load_index, save_index
from tests.conftest import ALPHA, FIG3_HUBS


@pytest.fixture()
def saved_index(fig1_graph, tmp_path):
    index = build_index(fig1_graph, FIG3_HUBS, alpha=ALPHA, epsilon=1e-10, clip=0.0)
    path = tmp_path / "index.fppv"
    save_index(index, path)
    return index, path


class TestRoundTrip:
    def test_parameters_preserved(self, saved_index):
        index, path = saved_index
        loaded = load_index(path)
        assert loaded.alpha == index.alpha
        assert loaded.epsilon == index.epsilon
        assert loaded.clip == index.clip
        np.testing.assert_array_equal(loaded.hub_mask, index.hub_mask)

    def test_entries_identical(self, saved_index):
        index, path = saved_index
        loaded = load_index(path)
        assert set(loaded.entries) == set(index.entries)
        for hub, entry in index.entries.items():
            other = loaded.entries[hub]
            np.testing.assert_array_equal(other.nodes, entry.nodes)
            np.testing.assert_allclose(other.scores, entry.scores, atol=0)
            np.testing.assert_array_equal(other.border_hubs, entry.border_hubs)
            np.testing.assert_allclose(
                other.border_masses, entry.border_masses, atol=0
            )

    def test_save_returns_bytes_written(self, saved_index, tmp_path):
        index, _ = saved_index
        written = save_index(index, tmp_path / "again.fppv")
        assert written == (tmp_path / "again.fppv").stat().st_size

    def test_loaded_index_queries_identically(self, saved_index, fig1_graph):
        from repro import FastPPV, StopAfterIterations

        index, path = saved_index
        loaded = load_index(path)
        a = FastPPV(fig1_graph, index, delta=0.0).query(0, StopAfterIterations(5))
        b = FastPPV(fig1_graph, loaded, delta=0.0).query(0, StopAfterIterations(5))
        np.testing.assert_allclose(a.scores, b.scores, atol=0)


class TestDiskStore:
    def test_lazy_get_matches(self, saved_index):
        index, path = saved_index
        with DiskPPVStore(path) as store:
            for hub in FIG3_HUBS:
                entry = store.get(hub)
                expected = index.entries[hub]
                np.testing.assert_array_equal(entry.nodes, expected.nodes)
                np.testing.assert_allclose(entry.scores, expected.scores, atol=0)

    def test_read_counter(self, saved_index):
        _, path = saved_index
        with DiskPPVStore(path) as store:
            assert store.reads == 0
            store.get(FIG3_HUBS[0])
            store.get(FIG3_HUBS[1])
            assert store.reads == 2

    def test_contains_and_hubs(self, saved_index):
        _, path = saved_index
        with DiskPPVStore(path) as store:
            assert FIG3_HUBS[0] in store
            assert 0 not in store
            assert store.hubs.tolist() == sorted(FIG3_HUBS)

    def test_missing_hub_raises(self, saved_index):
        _, path = saved_index
        with DiskPPVStore(path) as store:
            with pytest.raises(KeyError):
                store.get(0)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.fppv"
        path.write_bytes(b"NOPE" + b"\x00" * 60)
        with pytest.raises(ValueError, match="not a FastPPV"):
            DiskPPVStore(path)

    def test_close_idempotent(self, saved_index):
        _, path = saved_index
        store = DiskPPVStore(path)
        store.close()
        store.close()
