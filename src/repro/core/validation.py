"""Index and estimate validation — production debugging aids.

An index file that was built against a different graph snapshot, or
corrupted on disk, produces silently wrong rankings; these checkers turn
such states into actionable reports.  They verify the *mathematical*
invariants of the data structures, not just shapes:

* every hub entry re-derives from a fresh prime push (sampled);
* border masses match their hub scores (``score = alpha * mass``);
* entries respect the clip threshold and are sorted/unique;
* a query result is a monotone under-approximation with a consistent
  error history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.index import PPVIndex
from repro.core.prime import prime_ppv
from repro.core.query import QueryResult
from repro.graph.digraph import DiGraph


@dataclass
class ValidationReport:
    """Outcome of a validation pass."""

    checks: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every check passed."""
        return not self.problems

    def add_problem(self, message: str) -> None:
        """Record a failed check."""
        self.problems.append(message)

    def merged(self, other: "ValidationReport") -> "ValidationReport":
        """Combine two reports."""
        return ValidationReport(
            checks=self.checks + other.checks,
            problems=self.problems + other.problems,
        )


def validate_index_structure(index: PPVIndex) -> ValidationReport:
    """Structural invariants of every entry (cheap, full coverage)."""
    report = ValidationReport()
    hubs = set(int(h) for h in index.hubs)
    if set(index.entries) != hubs:
        report.add_problem(
            "hub mask and entry keys disagree: "
            f"{len(index.entries)} entries vs {len(hubs)} mask hubs"
        )
    report.checks += 1
    for hub, entry in index.entries.items():
        report.checks += 1
        if entry.source != hub:
            report.add_problem(f"entry {hub}: source field says {entry.source}")
        if entry.nodes.size != np.unique(entry.nodes).size:
            report.add_problem(f"entry {hub}: duplicate support nodes")
        if np.any(np.diff(entry.nodes) <= 0):
            report.add_problem(f"entry {hub}: support not sorted")
        if np.any(entry.scores <= 0.0):
            report.add_problem(f"entry {hub}: non-positive scores stored")
        if index.clip > 0.0 and entry.nodes.size and entry.scores.min() < index.clip:
            report.add_problem(f"entry {hub}: stored score below clip")
        if entry.border_masses.size and entry.border_masses.min() <= 0.0:
            report.add_problem(f"entry {hub}: non-positive border mass")
        for border in entry.border_hubs:
            if not index.hub_mask[int(border)]:
                report.add_problem(
                    f"entry {hub}: border node {int(border)} is not a hub"
                )
        if entry.scores.sum() > 1.0 + 1e-9:
            report.add_problem(f"entry {hub}: scores sum above 1")
    return report


def validate_index_against_graph(
    index: PPVIndex,
    graph: DiGraph,
    sample: int = 8,
    seed: int = 0,
    tolerance: float = 1e-9,
) -> ValidationReport:
    """Recompute sampled hub entries and compare (catches stale indexes).

    With the default clip, recomputation matches stored entries exactly
    (same code path); any mismatch means the index was built from a
    different graph, parameters, or file corruption.
    """
    report = ValidationReport()
    if index.hub_mask.shape != (graph.num_nodes,):
        report.checks += 1
        report.add_problem(
            f"index covers {index.hub_mask.size} nodes, graph has "
            f"{graph.num_nodes}"
        )
        return report
    rng = np.random.default_rng(seed)
    hubs = index.hubs
    chosen = rng.choice(hubs, size=min(sample, hubs.size), replace=False)
    for hub in chosen:
        report.checks += 1
        from repro.core.index import clip_prime_ppv

        fresh = clip_prime_ppv(
            prime_ppv(
                graph,
                int(hub),
                index.hub_mask,
                alpha=index.alpha,
                epsilon=index.epsilon,
            ),
            index.clip,
        )
        stored = index.entries[int(hub)]
        if not np.array_equal(fresh.nodes, stored.nodes):
            report.add_problem(f"hub {int(hub)}: support set differs from graph")
            continue
        if not np.allclose(fresh.scores, stored.scores, atol=tolerance):
            report.add_problem(f"hub {int(hub)}: scores differ from graph")
        if not np.array_equal(fresh.border_hubs, stored.border_hubs):
            report.add_problem(f"hub {int(hub)}: border hubs differ from graph")
        elif not np.allclose(
            fresh.border_masses, stored.border_masses, atol=tolerance
        ):
            report.add_problem(f"hub {int(hub)}: border masses differ")
    return report


def validate_query_result(result: QueryResult) -> ValidationReport:
    """Internal consistency of a query result."""
    report = ValidationReport()
    report.checks += 1
    if np.any(result.scores < -1e-12):
        report.add_problem("negative scores in estimate")
    total = float(result.scores.sum())
    if total > 1.0 + 1e-9:
        report.add_problem(f"estimate mass {total} exceeds 1")
    if len(result.error_history) != result.iterations + 1:
        report.add_problem(
            f"{len(result.error_history)} error entries for "
            f"{result.iterations} iterations"
        )
    if any(
        later > earlier + 1e-12
        for earlier, later in zip(result.error_history, result.error_history[1:])
    ):
        report.add_problem("error history is not non-increasing")
    if result.error_history and abs(
        result.error_history[-1] - (1.0 - total)
    ) > 1e-9:
        report.add_problem("final error does not match 1 - mass (Eq. 6)")
    return report
