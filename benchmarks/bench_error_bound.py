"""Theorem 2 ablation: measured L1 error vs the analytic bound, plus the
delta / clip sensitivity sweeps called out in DESIGN.md."""

import numpy as np
import pytest

from benchmarks.common import BENCH_QUERIES, BENCH_SCALE, emit
from repro import FastPPV, StopAfterIterations, build_index, select_hubs
from repro.experiments import livejournal_graph, make_workload
from repro.experiments.ablation import (
    clip_sweep_table,
    delta_sweep_table,
    error_bound_table,
)


@pytest.fixture(scope="module")
def setup():
    graph = livejournal_graph(scale=BENCH_SCALE)
    workload = make_workload(graph, num_queries=BENCH_QUERIES, seed=0)
    hubs = select_hubs(graph, max(40, int(300 * BENCH_SCALE)))
    index = build_index(graph, hubs)
    return graph, workload, index


def test_error_bound_and_threshold_ablations(benchmark, setup):
    graph, workload, index = setup
    rng = np.random.default_rng(1)
    queries = rng.choice(graph.num_nodes, size=10, replace=False).tolist()

    bound_table = error_bound_table(graph, index, queries, max_eta=8)
    delta_table = delta_sweep_table(graph, workload, index)
    clip_table = clip_sweep_table(
        graph, workload, num_hubs=index.num_hubs, clips=(0.0, 1e-5, 1e-4, 1e-3)
    )
    emit("ablation_error_bound", bound_table, delta_table, clip_table)

    # Theorem 2 must hold for every k: measured error <= bound.
    for row in bound_table.rows:
        k, measured, bound, _ = row
        assert measured <= bound + 1e-9, f"bound violated at k={k}"
    # And the measured error must decay monotonically.
    errors = [row[1] for row in bound_table.rows]
    assert all(b <= a + 1e-12 for a, b in zip(errors, errors[1:]))

    # Timing record: the error-bound evaluation itself is trivial; bench
    # the eta=4, delta=0 query that dominates the ablation.
    engine = FastPPV(graph, index, delta=0.0)
    stop = StopAfterIterations(4)
    benchmark(lambda: engine.query(int(queries[0]), stop=stop))
