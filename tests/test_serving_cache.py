"""The popularity-aware cache: unit mechanics (hit-count eviction) and
service-level behaviour (shared across backends, invalidation on index
updates)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PPVService,
    QuerySpec,
    StopAfterIterations,
    build_index,
    select_hubs,
    social_graph,
)
from repro.core.dynamic import add_edges, update_index
from repro.core.splice import invalidate_splice_cache
from repro.serving.cache import PopularityCache, copy_served
from repro.storage import DiskGraphStore, DiskPPVStore, cluster_graph, save_index

STOP = StopAfterIterations(2)


def _result(service, node):
    return service.query(QuerySpec(node, stop=STOP))


class TestPopularityCacheUnit:
    def test_eviction_prefers_fewest_hits(self, small_social,
                                          small_social_index):
        # Real QueryResults so copy_served round-trips them.
        from repro import FastPPV

        engine = FastPPV(small_social, small_social_index)
        value = engine.query(0, stop=STOP)
        cache = PopularityCache(3)
        for key in ("a", "b", "c"):
            cache.put((key,), value)
        # Popularity: a twice, b once, c never.
        cache.get(("a",))
        cache.get(("a",))
        cache.get(("b",))
        cache.put(("d",), value)  # evicts c (0 hits)
        assert ("c",) not in cache
        assert all(key in cache for key in [("a",), ("b",), ("d",)])
        cache.put(("e",), value)  # evicts d (0 hits, least recent of the 0s)
        assert ("d",) not in cache
        # The popular entries survived both one-off bursts.
        assert ("a",) in cache and ("b",) in cache
        assert cache.evictions == 2
        assert cache.popularity(("a",)) == 2

    def test_zero_hit_ties_break_least_recently_used(self, small_social,
                                                     small_social_index):
        from repro import FastPPV

        value = FastPPV(small_social, small_social_index).query(0, stop=STOP)
        cache = PopularityCache(2)
        cache.put(("old",), value)
        cache.put(("new",), value)
        cache.put(("newest",), value)
        assert ("old",) not in cache
        assert ("new",) in cache and ("newest",) in cache

    def test_copies_in_both_directions(self, small_social,
                                       small_social_index):
        from repro import FastPPV

        value = FastPPV(small_social, small_social_index).query(0, stop=STOP)
        cache = PopularityCache(4)
        cache.put(("k",), value)
        value.scores[:] = -1.0  # caller mutates after put
        first = cache.get(("k",))
        assert first.scores[0] != -1.0
        first.scores[:] = -2.0  # caller mutates a hit
        second = cache.get(("k",))
        assert second.scores[0] != -2.0

    def test_capacity_zero_disables(self):
        cache = PopularityCache(0)
        cache.put(("k",), None)
        assert len(cache) == 0

    def test_copy_served_rejects_unknown_shapes(self):
        with pytest.raises(TypeError):
            copy_served(object())


class TestServiceCacheMemory:
    def test_repeats_hit_the_cache(self, small_social, small_social_index):
        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4
        ) as service:
            first = _result(service, 5)
            second = _result(service, 5)
            stats = service.stats()
        np.testing.assert_array_equal(first.scores, second.scores)
        assert stats.cache_hits == 1
        assert stats.cache_entries == 1

    def test_hit_count_eviction_order_through_service(self, small_social,
                                                      small_social_index):
        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4,
            cache_size=3,
        ) as service:
            for node in (1, 2, 3):
                _result(service, node)
            # Node 1 becomes popular; 2 is touched once; 3 never again.
            _result(service, 1)
            _result(service, 1)
            _result(service, 2)
            _result(service, 4)  # capacity exceeded -> node 3 evicted
            assert ("ppv", "stop", 3, STOP) not in service.cache
            for node in (1, 2, 4):
                assert ("ppv", "stop", node, STOP) in service.cache

    def test_distinct_stops_cached_separately(self, small_social,
                                              small_social_index):
        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4
        ) as service:
            eta1 = service.query(QuerySpec(5, stop=StopAfterIterations(1)))
            eta2 = service.query(QuerySpec(5, stop=StopAfterIterations(2)))
            assert service.stats().cache_entries == 2
        assert eta1.iterations == 1
        assert eta2.iterations == 2

    def test_top_k_results_cached(self, small_social, small_social_index):
        with PPVService.open(
            small_social_index, graph=small_social, delta=0.0
        ) as service:
            first = service.query(QuerySpec(5, top_k=4))
            second = service.query(QuerySpec(5, top_k=4))
            stats = service.stats()
        np.testing.assert_array_equal(first.nodes, second.nodes)
        assert stats.cache_hits == 1

    def test_cached_results_are_isolated(self, small_social,
                                         small_social_index):
        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4
        ) as service:
            first = _result(service, 5)
            first.scores[:] = -1.0
            second = _result(service, 5)
            assert second.scores[0] != -1.0

    def test_stream_bypasses_the_cache(self, small_social,
                                       small_social_index):
        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4
        ) as service:
            list(service.stream(QuerySpec(5, stop=STOP)))
            assert service.stats().cache_entries == 0
            # And a stream never serves stale frames from a cached result.
            _result(service, 5)
            frames = list(service.stream(QuerySpec(5, stop=STOP)))
            assert len(frames) == 3

    def test_time_based_stops_never_cached(self, small_social,
                                           small_social_index):
        from repro import StopAfterTime, any_of

        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4
        ) as service:
            stop = any_of(StopAfterIterations(2), StopAfterTime(1e9))
            service.query(QuerySpec(5, stop=stop))
            assert service.stats().cache_entries == 0


class TestInvalidation:
    def test_update_index_drops_the_cache(self):
        graph = social_graph(num_nodes=300, seed=3)
        hubs = select_hubs(graph, num_hubs=30)
        index = build_index(graph, hubs)
        with PPVService.open(index, graph=graph, delta=1e-4) as service:
            stale = _result(service, 5)
            assert service.stats().cache_entries == 1

            new_graph = add_edges(graph, [(5, 17), (5, 23), (17, 5)])
            new_index, recomputed = update_index(graph, new_graph, index)
            assert recomputed > 0
            service.update_index(new_index, graph=new_graph)
            assert service.stats().cache_entries == 0

            fresh = _result(service, 5)
            # Served from the new index, not the stale cache entry.
            from repro import FastPPV

            reference = FastPPV(new_graph, new_index, delta=1e-4).query(
                5, stop=STOP
            )
            np.testing.assert_allclose(
                fresh.scores, reference.scores, atol=1e-12
            )
            assert float(np.abs(fresh.scores - stale.scores).max()) > 1e-6

    def test_update_index_rejected_on_disk_backend(self, small_social,
                                                   small_social_index,
                                                   tmp_path):
        index_path = tmp_path / "index.fppv"
        save_index(small_social_index, index_path)
        assignment = cluster_graph(small_social, 4, seed=1)
        store = DiskGraphStore(small_social, assignment, tmp_path / "c")
        with DiskPPVStore(index_path) as ppv_store:
            with PPVService.open(
                ppv_store, graph_store=store
            ) as service:
                with pytest.raises(NotImplementedError):
                    service.update_index(small_social_index)

    def test_in_place_invalidation_via_splice_cache(self, small_social):
        hubs = select_hubs(small_social, num_hubs=30)
        index = build_index(small_social, hubs)
        with PPVService.open(index, graph=small_social, delta=1e-4) as service:
            _result(service, 5)
            assert service.stats().cache_entries == 1
            invalidate_splice_cache(index)
            # The next drain observes a rebuilt lowering token and must
            # not serve results computed against the old one.
            _result(service, 6)
            assert ("ppv", "stop", 5, STOP) not in service.cache
            assert ("ppv", "stop", 6, STOP) in service.cache


class TestServiceCacheDisk:
    def test_repeats_cost_no_physical_io(self, small_social,
                                         small_social_index, tmp_path):
        index_path = tmp_path / "index.fppv"
        save_index(small_social_index, index_path)
        assignment = cluster_graph(small_social, 4, seed=1)
        store = DiskGraphStore(small_social, assignment, tmp_path / "c")
        with DiskPPVStore(index_path) as ppv_store:
            with PPVService.open(
                ppv_store, graph_store=store, delta=0.0
            ) as service:
                first = _result(service, 9)
                faults = store.faults
                reads = ppv_store.reads
                second = _result(service, 9)
                assert store.faults == faults  # no new cluster I/O
                assert ppv_store.reads == reads  # no new index I/O
        np.testing.assert_array_equal(first.scores, second.scores)
        assert second.cluster_faults == first.cluster_faults
