"""Figs. 13-15: scalability on growing graphs.

Fig. 13 defines the growth series (DBLP year snapshots, LiveJournal edge
samples); Fig. 14 shows near-constant online query time achieved by
growing |H| with the graph; Fig. 15 shows the offline cost growing
linearly in graph size.  The per-size hub counts follow the paper's
recipe: empirically chosen so that online time stays flat — we scale |H|
proportionally to the graph size ``|V| + |E|`` (edge samples grow in
edges, not nodes, so a node-based fraction would under-provision hubs),
which the experiments confirm suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.hubs import select_hubs
from repro.core.index import IndexStats, build_index
from repro.experiments.report import Table
from repro.experiments.runner import MethodOutcome, run_fastppv
from repro.experiments.workloads import make_workload
from repro.graph.digraph import DiGraph
from repro.graph.generators import BibliographicGraph
from repro.graph.pagerank import global_pagerank
from repro.graph.sampling import sample_series, snapshot_series


@dataclass
class ScalePoint:
    """One growing-graph measurement."""

    label: str
    num_nodes: int
    num_edges: int
    num_hubs: int
    outcome: MethodOutcome
    offline: IndexStats


def _measure(
    label: str,
    graph: DiGraph,
    hub_fraction: float,
    eta: int,
    num_queries: int,
    seed: int,
) -> ScalePoint:
    workload = make_workload(graph, num_queries=num_queries, seed=seed)
    pagerank = global_pagerank(graph)
    num_hubs = max(1, int((graph.num_nodes + graph.num_edges) * hub_fraction))
    hubs = select_hubs(graph, num_hubs, pagerank=pagerank)
    index = build_index(graph, hubs)
    outcome = run_fastppv(graph, workload, num_hubs=num_hubs, eta=eta, index=index)
    return ScalePoint(
        label=label,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_hubs=num_hubs,
        outcome=outcome,
        offline=index.stats,
    )


def run_snapshot_scalability(
    bib: BibliographicGraph,
    years: Sequence[int] = (1998, 2002, 2006, 2010),
    hub_fraction: float = 0.006,
    eta: int = 2,
    num_queries: int = 25,
    seed: int = 0,
) -> list[ScalePoint]:
    """DBLP-style growth: snapshots by publication year (Fig. 13(a))."""
    return [
        _measure(str(year), graph, hub_fraction, eta, num_queries, seed)
        for year, graph in snapshot_series(bib, list(years))
    ]


def run_sample_scalability(
    graph: DiGraph,
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    hub_fraction: float = 0.04,
    eta: int = 2,
    num_queries: int = 25,
    seed: int = 0,
) -> list[ScalePoint]:
    """LiveJournal-style growth: uniform edge samples S1..Sk (Fig. 13(b))."""
    points = []
    for index, (fraction, sampled) in enumerate(
        sample_series(graph, list(fractions), seed=seed), start=1
    ):
        points.append(
            _measure(f"S{index}", sampled, hub_fraction, eta, num_queries, seed)
        )
        del fraction
    return points


def fig13_table(points: list[ScalePoint], dataset: str) -> Table:
    """The growth series itself (Fig. 13)."""
    table = Table(
        title=f"Fig. 13 ({dataset}) — growing graph series",
        headers=["Graph", "# Nodes", "# Edges"],
    )
    for point in points:
        table.add_row(point.label, point.num_nodes, point.num_edges)
    return table


def fig14_table(points: list[ScalePoint], dataset: str) -> Table:
    """Near-constant online time with growing |H| (Fig. 14)."""
    table = Table(
        title=f"Fig. 14 ({dataset}) — online scalability",
        headers=[
            "Graph",
            "|H|",
            "Kendall",
            "Precision",
            "RAG",
            "L1 sim",
            "Time per query (ms)",
        ],
    )
    for point in points:
        accuracy = point.outcome.accuracy
        table.add_row(
            point.label,
            point.num_hubs,
            accuracy.kendall,
            accuracy.precision,
            accuracy.rag,
            accuracy.l1_similarity,
            point.outcome.online_ms_per_query,
        )
    return table


def fig15_table(points: list[ScalePoint], dataset: str) -> Table:
    """Offline cost vs graph size — expect linear growth (Fig. 15)."""
    table = Table(
        title=f"Fig. 15 ({dataset}) — offline cost vs graph size",
        headers=["Graph", "Nodes+Edges", "Total space (MB)", "Total time (s)"],
    )
    for point in points:
        table.add_row(
            point.label,
            point.num_nodes + point.num_edges,
            point.offline.megabytes,
            point.offline.build_seconds,
        )
    return table
