"""Unit tests for the CSR DiGraph."""

import numpy as np
import pytest

from repro.graph import DiGraph, from_edges
from repro.graph.generators import cycle_graph, path_graph, star_graph


class TestConstruction:
    def test_basic_shape(self):
        graph = from_edges([(0, 1), (0, 2), (1, 2)], num_nodes=3)
        assert graph.num_nodes == 3
        assert graph.num_edges == 3

    def test_empty_graph(self):
        graph = from_edges([], num_nodes=5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 0
        assert graph.out_degree(0) == 0

    def test_zero_node_graph(self):
        graph = DiGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int32))
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_invalid_indptr_start(self):
        with pytest.raises(ValueError):
            DiGraph(np.array([1, 2]), np.array([0], dtype=np.int32))

    def test_invalid_indptr_end(self):
        with pytest.raises(ValueError):
            DiGraph(np.array([0, 5]), np.array([0], dtype=np.int32))

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2], dtype=np.int32))

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(np.array([0, 1]), np.array([7], dtype=np.int32))

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(np.array([0, 0, 0]), np.empty(0, dtype=np.int32), labels=["x"])

    def test_arrays_read_only(self):
        graph = from_edges([(0, 1)], num_nodes=2)
        with pytest.raises(ValueError):
            graph.indices[0] = 0
        with pytest.raises(ValueError):
            graph.indptr[0] = 1


class TestAccessors:
    def test_out_neighbors(self):
        graph = from_edges([(0, 1), (0, 2), (2, 1)], num_nodes=3)
        assert sorted(graph.out_neighbors(0).tolist()) == [1, 2]
        assert graph.out_neighbors(1).size == 0
        assert graph.out_neighbors(2).tolist() == [1]

    def test_out_degrees(self):
        graph = from_edges([(0, 1), (0, 2), (2, 1)], num_nodes=3)
        assert graph.out_degrees.tolist() == [2, 0, 1]
        assert graph.out_degree(0) == 2

    def test_in_degrees(self):
        graph = from_edges([(0, 1), (0, 2), (2, 1)], num_nodes=3)
        assert graph.in_degrees().tolist() == [0, 2, 1]

    def test_has_edge(self):
        graph = from_edges([(0, 1)], num_nodes=3)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)
        assert not graph.has_edge(0, 2)

    def test_edges_iteration(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        graph = from_edges(edges, num_nodes=3)
        assert sorted(graph.edges()) == sorted(edges)

    def test_len(self):
        assert len(from_edges([(0, 1)], num_nodes=4)) == 4

    def test_nodes_range(self):
        graph = from_edges([], num_nodes=3)
        assert list(graph.nodes()) == [0, 1, 2]

    def test_repr(self):
        assert repr(from_edges([(0, 1)], num_nodes=2)) == "DiGraph(n=2, m=1)"


class TestEquality:
    def test_equal_graphs(self):
        a = from_edges([(0, 1), (1, 0)], num_nodes=2)
        b = from_edges([(1, 0), (0, 1)], num_nodes=2)
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self):
        a = from_edges([(0, 1)], num_nodes=2)
        b = from_edges([(1, 0)], num_nodes=2)
        assert a != b

    def test_eq_other_type(self):
        assert from_edges([(0, 1)], num_nodes=2) != "graph"


class TestLabels:
    def test_unlabelled_label_is_id(self):
        graph = from_edges([(0, 1)], num_nodes=2)
        assert graph.label(1) == 1
        assert graph.labels is None

    def test_node_id_without_labels_raises(self):
        graph = from_edges([(0, 1)], num_nodes=2)
        with pytest.raises(KeyError):
            graph.node_id("x")

    def test_labelled_roundtrip(self):
        graph = DiGraph(
            np.array([0, 1, 1]), np.array([1], dtype=np.int32), labels=["u", "v"]
        )
        assert graph.label(0) == "u"
        assert graph.node_id("v") == 1
        with pytest.raises(KeyError):
            graph.node_id("w")


class TestReverse:
    def test_reverse_path(self):
        graph = path_graph(4)
        rev = graph.reverse()
        assert rev.has_edge(1, 0)
        assert rev.has_edge(3, 2)
        assert not rev.has_edge(0, 1)
        assert rev.num_edges == graph.num_edges

    def test_reverse_is_cached_and_involutive(self):
        graph = cycle_graph(5)
        assert graph.reverse() is graph.reverse()
        assert graph.reverse().reverse() is graph

    def test_reverse_preserves_edge_multiset(self):
        graph = from_edges([(0, 2), (1, 2), (2, 0)], num_nodes=3)
        rev_edges = sorted(graph.reverse().edges())
        assert rev_edges == [(0, 2), (2, 0), (2, 1)]


class TestTransitionMatrix:
    def test_rows_stochastic(self):
        graph = star_graph(3)
        matrix = graph.transition_matrix()
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_dangling_row_zero(self):
        graph = path_graph(3)  # node 2 dangling
        sums = np.asarray(graph.transition_matrix().sum(axis=1)).ravel()
        assert np.allclose(sums, [1.0, 1.0, 0.0])

    def test_values(self):
        graph = from_edges([(0, 1), (0, 2)], num_nodes=3)
        matrix = graph.transition_matrix().toarray()
        assert matrix[0, 1] == pytest.approx(0.5)
        assert matrix[0, 2] == pytest.approx(0.5)


class TestSubgraph:
    def test_induced_edges(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0), (0, 3)], num_nodes=4)
        sub, node_map = graph.subgraph([0, 1, 2])
        assert sub.num_nodes == 3
        assert node_map.tolist() == [0, 1, 2]
        assert sorted(sub.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_subgraph_remaps_ids(self):
        graph = from_edges([(1, 3), (3, 1)], num_nodes=4)
        sub, node_map = graph.subgraph([1, 3])
        assert node_map.tolist() == [1, 3]
        assert sorted(sub.edges()) == [(0, 1), (1, 0)]

    def test_empty_subgraph(self):
        graph = from_edges([(0, 1)], num_nodes=2)
        sub, node_map = graph.subgraph([])
        assert sub.num_nodes == 0
        assert node_map.size == 0

    def test_subgraph_keeps_labels(self):
        graph = DiGraph(
            np.array([0, 1, 2]),
            np.array([1, 0], dtype=np.int32),
            labels=["u", "v"],
        )
        sub, _ = graph.subgraph([1])
        assert sub.labels == ["v"]
