"""Additional ranking metrics used by the PPR literature.

The paper reports the four metrics of :mod:`repro.metrics`; related work
also uses NDCG (graded relevance), Spearman's footrule (displacement) and
top-k intersection similarity.  These round out the suite for users who
want to compare against other papers' numbers.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.ranking import top_k_nodes


def ndcg_at_k(exact: np.ndarray, estimate: np.ndarray, k: int = 10) -> float:
    """Normalised Discounted Cumulative Gain over the top-k.

    Gains are the *exact* scores of the nodes the estimate ranks at each
    position; the ideal ordering is by exact score.  1.0 means the
    estimated ranking collects exact relevance as fast as possible.
    """
    exact = np.asarray(exact, dtype=float)
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    ranked = top_k_nodes(estimate, k)
    ideal = top_k_nodes(exact, k)
    dcg = float((exact[ranked] * discounts[: ranked.size]).sum())
    idcg = float((exact[ideal] * discounts[: ideal.size]).sum())
    if idcg == 0.0:
        return 1.0
    return dcg / idcg


def spearman_footrule(
    exact: np.ndarray, estimate: np.ndarray, k: int = 10
) -> float:
    """Normalised Spearman's footrule distance over the top-k union.

    Sums the absolute rank displacement of every node in the union of the
    two top-k lists (nodes absent from a list rank at ``|union|``), and
    normalises by the maximum possible displacement so that 0 means
    identical rankings and 1 means maximal disagreement.
    """
    exact = np.asarray(exact, dtype=float)
    estimate = np.asarray(estimate, dtype=float)
    union = np.union1d(top_k_nodes(exact, k), top_k_nodes(estimate, k))
    universe = union.size

    def ranks(scores: np.ndarray) -> dict[int, int]:
        ordered = sorted(
            (int(node) for node in union),
            key=lambda node: (-scores[node], node),
        )
        return {node: position for position, node in enumerate(ordered)}

    exact_rank = ranks(exact)
    estimate_rank = ranks(estimate)
    displacement = sum(
        abs(exact_rank[int(node)] - estimate_rank[int(node)]) for node in union
    )
    # Maximum footrule on `universe` items is floor(universe^2 / 2).
    maximum = universe * universe // 2
    if maximum == 0:
        return 0.0
    return displacement / maximum


def intersection_similarity(
    exact: np.ndarray, estimate: np.ndarray, k: int = 10
) -> float:
    """Average prefix-overlap of the two top-k lists (Fagin et al.).

    ``mean over i in 1..k of |top_i(exact) & top_i(estimate)| / i`` —
    stricter than precision@k because agreement must hold at *every*
    prefix, rewarding correct ordering near the top.
    """
    exact_top = top_k_nodes(exact, k)
    estimate_top = top_k_nodes(estimate, k)
    k = min(k, exact_top.size, estimate_top.size)
    if k == 0:
        return 1.0
    total = 0.0
    for i in range(1, k + 1):
        a = set(exact_top[:i].tolist())
        b = set(estimate_top[:i].tolist())
        total += len(a & b) / i
    return total / k
