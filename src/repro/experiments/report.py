"""Plain-text tables mirroring the paper's figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """A titled table of experiment rows.

    ``rows`` hold already-formatted strings or numbers; ``render`` aligns
    columns for terminal output.
    """

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (must match the header count)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Monospace rendering with a title rule and aligned columns."""
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.headers[i]), *(len(row[i]) for row in cells))
            if cells
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, header: str) -> list[object]:
        """All values of one column (raw, unformatted)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """One-shot table rendering."""
    table = Table(title=title, headers=list(headers))
    for row in rows:
        table.add_row(*row)
    return table.render()
