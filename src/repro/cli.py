"""Command-line interface.

The subcommands cover the offline/online lifecycle end to end::

    repro generate social --nodes 5000 --out graph.txt
    repro info graph.txt
    repro index graph.txt --hubs 300 --workers 4 --out graph.fppv
    repro query graph.txt graph.fppv 42 --top 10 --eta 2
    repro query graph.txt graph.fppv 42 7 19
    repro query graph.txt graph.fppv 42 7 19 --top-k 10
    repro disk-query graph.txt graph.fppv 42 7 19 --clusters 12
    repro serve graph.txt graph.fppv --requests requests.jsonl
    repro autotune graph.txt

All online subcommands run through the :class:`~repro.serving.PPVService`
façade: ``query`` and ``disk-query`` submit their nodes as one burst (so
multi-node invocations coalesce into the batched sparse-matrix / cluster
-grouped disk engines automatically), and ``serve`` keeps a service open
over a JSONL request loop — each input line is a request (single- or
multi-node, plain or certified top-k), responses are emitted as JSONL in
request order at every blank line or at end of input, and concurrent
batches share the scheduler's coalescing and popularity cache.  ``query
--top-k K`` switches to certified top-k serving: each query runs until
its top set is provably exact.  ``disk-query`` replays the Sect. 5.3
reduced-memory deployment (cluster-segmented graph, on-disk PPV index)
and reports the cluster faults and hub reads every query paid.

Graphs travel as whitespace edge lists (the SNAP convention), indexes as
the binary ``.fppv`` format of :mod:`repro.storage.ppv_store`.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from typing import Sequence

from repro.core.autotune import autotune_hub_count
from repro.core.hubs import HubPolicy, select_hubs
from repro.core.index import build_index
from repro.core.query import (
    StopAfterIterations,
    StopAfterTime,
    StopAtL1Error,
    any_of,
)
from repro.graph.analysis import graph_stats
from repro.graph.generators import bibliographic_graph, erdos_renyi_graph, social_graph
from repro.graph.io import read_edge_list, write_edge_list
from repro.serving import PPVService, QuerySpec
from repro.serving.spec import DEFAULT_TOPK_BUDGET
from repro.storage.ppv_store import load_index, save_index


def _add_generate(subparsers) -> None:
    parser = subparsers.add_parser(
        "generate", help="generate a synthetic graph and write an edge list"
    )
    parser.add_argument(
        "kind", choices=["social", "bibliographic", "erdos-renyi"]
    )
    parser.add_argument("--nodes", type=int, default=5000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", required=True, help="output edge-list path")
    parser.set_defaults(func=_cmd_generate)


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "social":
        graph = social_graph(num_nodes=args.nodes, seed=args.seed)
    elif args.kind == "bibliographic":
        # Nodes split ~1:2 authors:papers with venues at ~1%.
        authors = max(2, args.nodes // 3)
        papers = max(2, 2 * args.nodes // 3)
        venues = max(2, args.nodes // 100)
        graph = bibliographic_graph(
            num_authors=authors, num_papers=papers, num_venues=venues,
            seed=args.seed,
        ).graph
    else:
        graph = erdos_renyi_graph(args.nodes, 4.0 / args.nodes, seed=args.seed)
    write_edge_list(graph, args.out)
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def _add_info(subparsers) -> None:
    parser = subparsers.add_parser("info", help="print graph statistics")
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("--undirected", action="store_true")
    parser.set_defaults(func=_cmd_info)


def _cmd_info(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph, undirected=args.undirected)
    for name, value in graph_stats(graph).as_dict().items():
        print(f"{name:>28}: {value}")
    return 0


def _add_index(subparsers) -> None:
    parser = subparsers.add_parser(
        "index", help="select hubs and precompute the PPV index"
    )
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("--hubs", type=int, required=True)
    parser.add_argument(
        "--policy",
        choices=[p.value for p in HubPolicy],
        default=HubPolicy.EXPECTED_UTILITY.value,
    )
    parser.add_argument("--alpha", type=float, default=0.15)
    parser.add_argument("--epsilon", type=float, default=1e-8)
    parser.add_argument("--clip", type=float, default=1e-4)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel workers for the offline build",
    )
    parser.add_argument("--undirected", action="store_true")
    parser.add_argument("--out", required=True, help="output .fppv path")
    parser.set_defaults(func=_cmd_index)


def _cmd_index(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph, undirected=args.undirected)
    hubs = select_hubs(
        graph, args.hubs, policy=HubPolicy(args.policy), alpha=args.alpha
    )
    index = build_index(
        graph, hubs, alpha=args.alpha, epsilon=args.epsilon, clip=args.clip,
        workers=args.workers,
    )
    written = save_index(index, args.out)
    print(
        f"indexed {index.num_hubs} hubs "
        f"({index.stats.stored_entries} entries, {written / 1e6:.2f} MB on disk) "
        f"in {index.stats.build_seconds:.2f}s -> {args.out}"
    )
    return 0


def _add_query(subparsers) -> None:
    parser = subparsers.add_parser(
        "query", help="run an incremental PPV query against an index"
    )
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("index", help=".fppv index path")
    parser.add_argument("node", type=int, nargs="+")
    parser.add_argument(
        "--batch", action="store_true",
        help="legacy no-op: the serving facade coalesces all given nodes "
        "into engine batches automatically (with --time-limit, queries "
        "still run one at a time so each keeps its own time budget)",
    )
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument(
        "--top-k", type=int, default=None, metavar="K",
        help="serve certified top-K: iterate until the top-K set is "
        "provably exact (--eta becomes the certificate budget, default "
        f"{DEFAULT_TOPK_BUDGET}); incompatible with --target-error and "
        "--time-limit",
    )
    parser.add_argument(
        "--eta", type=int, default=None,
        help="iteration budget (default 2; with --top-k, the certificate "
        f"budget, default {DEFAULT_TOPK_BUDGET})",
    )
    parser.add_argument(
        "--target-error", type=float, default=None,
        help="stop early once the L1 error is below this",
    )
    parser.add_argument(
        "--time-limit", type=float, default=None,
        help="stop after this many seconds",
    )
    parser.add_argument("--delta", type=float, default=0.005)
    parser.add_argument("--undirected", action="store_true")
    parser.set_defaults(func=_cmd_query)


def _cmd_query(args: argparse.Namespace) -> int:
    if args.top_k is not None and (
        args.target_error is not None or args.time_limit is not None
    ):
        print(
            "error: --top-k runs until its certificate fires and cannot "
            "be combined with --target-error / --time-limit",
            file=sys.stderr,
        )
        return 2
    graph = read_edge_list(args.graph, undirected=args.undirected)
    index = load_index(args.index)
    if index.hub_mask.size != graph.num_nodes:
        print(
            f"error: index covers {index.hub_mask.size} nodes but the graph "
            f"has {graph.num_nodes}",
            file=sys.stderr,
        )
        return 2
    service = PPVService.open(index, graph=graph, delta=args.delta)

    if args.top_k is not None:
        budget = args.eta if args.eta is not None else DEFAULT_TOPK_BUDGET
        with service:
            results = service.query_many(
                [
                    QuerySpec(node, top_k=args.top_k, top_k_budget=budget)
                    for node in args.node
                ]
            )
        for query, result in zip(args.node, results):
            status = "certified" if result.certified else "UNCERTIFIED"
            print(
                f"query {query}: top-{args.top_k} {status} after "
                f"{result.iterations} iterations, "
                f"L1 error {result.l1_error:.4f}"
            )
            for rank, node in enumerate(result.nodes, start=1):
                print(
                    f"{rank:4d}. node {int(node):8d}  "
                    f"score {result.scores[node]:.6f}"
                )
        if not any(result.certified for result in results) and index.clip > 0:
            print(
                f"hint: no certificate fired — the index clips stored "
                f"entries at {index.clip:g}, which floors the reachable L1 "
                "error; rebuild with `index --clip 0` for tight certificates",
                file=sys.stderr,
            )
        return 0

    eta = args.eta if args.eta is not None else 2
    conditions = [StopAfterIterations(eta)]
    if args.target_error is not None:
        conditions.append(StopAtL1Error(args.target_error))
    if args.time_limit is not None:
        conditions.append(StopAfterTime(args.time_limit))
    stop = any_of(*conditions)
    with service:
        results = service.query_many(
            [QuerySpec(node, stop=stop) for node in args.node]
        )
    for result in results:
        print(
            f"query {result.query}: {result.iterations} iterations, "
            f"L1 error {result.l1_error:.4f}, {result.seconds * 1000:.1f} ms"
        )
        for rank, node in enumerate(result.top_k(args.top), start=1):
            print(
                f"{rank:4d}. node {int(node):8d}  score {result.scores[node]:.6f}"
            )
    return 0


def _add_disk_query(subparsers) -> None:
    parser = subparsers.add_parser(
        "disk-query",
        help="run queries against a disk-resident deployment (Sect. 5.3)",
    )
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("index", help=".fppv index path")
    parser.add_argument("node", type=int, nargs="+")
    parser.add_argument(
        "--batch", action="store_true",
        help="legacy no-op: the serving facade coalesces all given nodes "
        "into one cluster-grouped batch, amortising cluster faults and "
        "hub reads",
    )
    parser.add_argument(
        "--clusters", type=int, default=8,
        help="number of PPR clusters the graph is segmented into",
    )
    parser.add_argument(
        "--memory-budget", type=int, default=1,
        help="clusters resident in memory at once (the paper keeps 1)",
    )
    parser.add_argument(
        "--fault-budget", type=int, default=None,
        help="per-query cluster-fault budget (default: number of clusters)",
    )
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument("--eta", type=int, default=2, help="iteration budget")
    parser.add_argument("--delta", type=float, default=0.005)
    parser.add_argument("--seed", type=int, default=0, help="clustering seed")
    parser.add_argument(
        "--workdir", default=None,
        help="directory for the cluster files (default: a temp dir)",
    )
    parser.add_argument("--undirected", action="store_true")
    parser.set_defaults(func=_cmd_disk_query)


def _cmd_disk_query(args: argparse.Namespace) -> int:
    from repro.storage import DiskGraphStore, DiskPPVStore, cluster_graph

    graph = read_edge_list(args.graph, undirected=args.undirected)
    # Validate the graph/index pair before paying for clustering and the
    # cluster files; only then segment the graph.
    cleanup_workdir = args.workdir is None
    workdir = (
        args.workdir
        if args.workdir is not None
        else tempfile.mkdtemp(prefix="fastppv_disk_")
    )
    try:
        with DiskPPVStore(args.index) as ppv_store:
            if ppv_store.num_nodes != graph.num_nodes:
                print(
                    f"error: index covers {ppv_store.num_nodes} nodes but "
                    f"the graph has {graph.num_nodes}",
                    file=sys.stderr,
                )
                return 2
            assignment = cluster_graph(graph, args.clusters, seed=args.seed)
            graph_store = DiskGraphStore(
                graph, assignment, workdir, memory_budget=args.memory_budget
            )
            stop = StopAfterIterations(args.eta)
            faults_before = graph_store.faults
            reads_before = ppv_store.reads
            with PPVService.open(
                ppv_store,
                backend="disk",
                graph_store=graph_store,
                delta=args.delta,
                fault_budget=args.fault_budget,
            ) as service:
                results = service.query_many(
                    [QuerySpec(node, stop=stop) for node in args.node]
                )
            physical_faults = graph_store.faults - faults_before
            physical_reads = ppv_store.reads - reads_before
    finally:
        if cleanup_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    for result in results:
        inner = result.result
        truncated = ", truncated" if result.truncated else ""
        print(
            f"query {inner.query}: {inner.iterations} iterations, "
            f"L1 error {inner.l1_error:.4f}, "
            f"{result.cluster_faults} faults, {result.hub_reads} hub reads"
            f"{truncated}"
        )
        for rank, node in enumerate(inner.top_k(args.top), start=1):
            print(
                f"{rank:4d}. node {int(node):8d}  score {inner.scores[node]:.6f}"
            )
    print(
        f"physical I/O for {len(results)} queries: {physical_faults} cluster "
        f"faults, {physical_reads} hub reads "
        f"({assignment.num_clusters} clusters, memory budget "
        f"{args.memory_budget})"
    )
    return 0


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="serve a JSONL request loop through the PPVService facade",
        description="Read JSONL requests (one object per line) and write "
        "JSONL responses in request order.  A request names a node "
        '({"id": 1, "node": 7}) or a weighted node set ({"nodes": [3, 9], '
        '"weights": [2, 1]}) plus optional "eta", "target_error", '
        '"time_limit", "top_k", "budget" and "top".  Requests are '
        "admitted as they are read and coalesced by the scheduler; "
        "responses for the pending batch are emitted at every blank "
        "line and at end of input.",
    )
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("index", help=".fppv index path")
    parser.add_argument(
        "--requests", default="-",
        help="JSONL request file, '-' for stdin (the default)",
    )
    parser.add_argument(
        "--backend", choices=["memory", "disk"], default="memory",
        help="serving backend (disk replays the Sect. 5.3 deployment)",
    )
    parser.add_argument("--top", type=int, default=10,
                        help='ranked scores per response (a request\'s own '
                        '"top" field overrides this)')
    parser.add_argument("--delta", type=float, default=0.005)
    parser.add_argument(
        "--max-batch", type=int, default=64,
        help="requests coalesced into one scheduler drain",
    )
    parser.add_argument(
        "--max-delay", type=float, default=0.002,
        help="seconds a drain holds its batch open for more arrivals",
    )
    parser.add_argument(
        "--clusters", type=int, default=8,
        help="disk backend: number of PPR clusters",
    )
    parser.add_argument(
        "--memory-budget", type=int, default=1,
        help="disk backend: clusters resident in memory at once",
    )
    parser.add_argument(
        "--fault-budget", type=int, default=None,
        help="disk backend: per-query cluster-fault budget",
    )
    parser.add_argument("--seed", type=int, default=0, help="clustering seed")
    parser.add_argument(
        "--workdir", default=None,
        help="disk backend: directory for cluster files (default: temp)",
    )
    parser.add_argument("--undirected", action="store_true")
    parser.set_defaults(func=_cmd_serve)


def _spec_from_request(request: dict) -> QuerySpec:
    """Translate one JSONL request object into a :class:`QuerySpec`."""
    nodes = request.get("nodes", request.get("node"))
    if nodes is None:
        raise ValueError('request needs "node" or "nodes"')
    weights = request.get("weights")
    if request.get("top_k") is not None:
        return QuerySpec(
            nodes,
            weights=weights,
            top_k=int(request["top_k"]),
            top_k_budget=int(request.get("budget", DEFAULT_TOPK_BUDGET)),
        )
    conditions = [StopAfterIterations(int(request.get("eta", 2)))]
    if request.get("target_error") is not None:
        conditions.append(StopAtL1Error(float(request["target_error"])))
    if request.get("time_limit") is not None:
        conditions.append(StopAfterTime(float(request["time_limit"])))
    stop = conditions[0] if len(conditions) == 1 else any_of(*conditions)
    return QuerySpec(nodes, weights=weights, stop=stop)


def _render_response(request_id, spec, result, top: int) -> dict:
    """One JSONL response object for any backend's result shape."""
    response: dict = {"id": request_id, "nodes": list(spec.nodes)}
    inner = result
    if hasattr(result, "cluster_faults"):  # disk result wrappers
        response["cluster_faults"] = result.cluster_faults
        response["hub_reads"] = result.hub_reads
        if result.truncated:
            response["truncated"] = True
        inner = result.topk if hasattr(result, "topk") else result.result
    if hasattr(inner, "certified"):  # certified top-k
        response["certified"] = bool(inner.certified)
        response["iterations"] = int(inner.iterations)
        response["l1_error"] = float(inner.l1_error)
        response["top"] = [
            [int(node), float(inner.scores[node])] for node in inner.nodes
        ]
    else:
        response["iterations"] = int(inner.iterations)
        response["l1_error"] = float(inner.l1_error)
        response["top"] = [
            [int(node), float(inner.scores[node])]
            for node in inner.top_k(top)
        ]
    return response


def _cmd_serve(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.storage import DiskGraphStore, DiskPPVStore, cluster_graph

    graph = read_edge_list(args.graph, undirected=args.undirected)
    with ExitStack() as stack:
        if args.backend == "disk":
            ppv_store = stack.enter_context(DiskPPVStore(args.index))
            if ppv_store.num_nodes != graph.num_nodes:
                print(
                    f"error: index covers {ppv_store.num_nodes} nodes but "
                    f"the graph has {graph.num_nodes}",
                    file=sys.stderr,
                )
                return 2
            workdir = args.workdir
            if workdir is None:
                workdir = tempfile.mkdtemp(prefix="fastppv_serve_")
                stack.callback(shutil.rmtree, workdir, ignore_errors=True)
            assignment = cluster_graph(graph, args.clusters, seed=args.seed)
            graph_store = DiskGraphStore(
                graph, assignment, workdir, memory_budget=args.memory_budget
            )
            service = PPVService.open(
                ppv_store,
                backend="disk",
                graph_store=graph_store,
                delta=args.delta,
                fault_budget=args.fault_budget,
                max_batch=args.max_batch,
                max_delay=args.max_delay,
            )
        else:
            index = load_index(args.index)
            if index.hub_mask.size != graph.num_nodes:
                print(
                    f"error: index covers {index.hub_mask.size} nodes but "
                    f"the graph has {graph.num_nodes}",
                    file=sys.stderr,
                )
                return 2
            service = PPVService.open(
                index,
                graph=graph,
                delta=args.delta,
                max_batch=args.max_batch,
                max_delay=args.max_delay,
            )
        stack.enter_context(service)
        if args.requests == "-":
            source = sys.stdin
        else:
            source = stack.enter_context(open(args.requests, encoding="utf-8"))

        pending: list[tuple] = []

        def emit_pending() -> None:
            if not pending:
                return
            service.flush()
            for request_id, spec, handle, top in pending:
                if spec is None:  # parse/validation failure
                    print(json.dumps({"id": request_id, "error": handle}))
                    continue
                try:
                    result = handle.result()
                except Exception as error:
                    print(json.dumps(
                        {"id": request_id, "error": str(error)}
                    ))
                    continue
                print(json.dumps(
                    _render_response(request_id, spec, result, top)
                ))
            pending.clear()

        for line in source:
            line = line.strip()
            if not line:
                emit_pending()
                continue
            request_id = None
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
                request_id = request.get("id")
                spec = _spec_from_request(request)
                top = int(request.get("top", args.top))
                pending.append((request_id, spec, service.submit(spec), top))
            except Exception as error:
                pending.append((request_id, None, str(error), None))
        emit_pending()
        stats = service.stats()
        print(
            f"served {stats.submitted} requests in {stats.batches} "
            f"batches (largest {stats.largest_batch}); cache "
            f"{stats.cache_hits} hits / {stats.cache_misses} misses",
            file=sys.stderr,
        )
    return 0


def _add_autotune(subparsers) -> None:
    parser = subparsers.add_parser(
        "autotune", help="probe hub counts and recommend one"
    )
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("--queries", type=int, default=15)
    parser.add_argument("--space-budget-mb", type=float, default=None)
    parser.add_argument("--undirected", action="store_true")
    parser.set_defaults(func=_cmd_autotune)


def _cmd_autotune(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph, undirected=args.undirected)
    result = autotune_hub_count(
        graph,
        num_probe_queries=args.queries,
        space_budget_mb=args.space_budget_mb,
    )
    print(f"{'|H|':>8} {'work/query':>12} {'L1 error':>10} {'index MB':>10}")
    for probe in result.probes:
        marker = " <== best" if probe.num_hubs == result.best_num_hubs else ""
        print(
            f"{probe.num_hubs:>8} {probe.mean_work:>12.0f} "
            f"{probe.mean_l1_error:>10.4f} {probe.index_megabytes:>10.2f}"
            f"{marker}"
        )
    print(f"recommended number of hubs: {result.best_num_hubs}")
    return 0


def _add_validate(subparsers) -> None:
    parser = subparsers.add_parser(
        "validate", help="check an index's invariants against its graph"
    )
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("index", help=".fppv index path")
    parser.add_argument(
        "--sample", type=int, default=8,
        help="hub entries to recompute against the graph",
    )
    parser.add_argument("--undirected", action="store_true")
    parser.set_defaults(func=_cmd_validate)


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.validation import (
        validate_index_against_graph,
        validate_index_structure,
    )

    graph = read_edge_list(args.graph, undirected=args.undirected)
    index = load_index(args.index)
    report = validate_index_structure(index).merged(
        validate_index_against_graph(index, graph, sample=args.sample)
    )
    print(f"ran {report.checks} checks")
    if report.ok:
        print("index OK")
        return 0
    for problem in report.problems:
        print(f"PROBLEM: {problem}", file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FastPPV: incremental, accuracy-aware Personalized PageRank",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_info(subparsers)
    _add_index(subparsers)
    _add_query(subparsers)
    _add_disk_query(subparsers)
    _add_serve(subparsers)
    _add_autotune(subparsers)
    _add_validate(subparsers)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
