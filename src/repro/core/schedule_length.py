"""Alternative schedule: partition tours by *natural length*.

Scheduled approximation is a principle — partition the tour set, process
partitions in priority order (Sect. 3).  FastPPV's realization partitions
by hub length; the natural strawman partitions by **path length**:
``S^i = {tours of exactly i edges}``, processed ``i = 0, 1, 2, ...``.
That schedule is exactly power iteration viewed as an anytime algorithm:
the increment at level ``i`` is ``alpha (1-alpha)^i (P^T)^i e_q``, its
mass is *fixed* at ``alpha (1-alpha)^i`` (the Theorem 2 proof's ``S^i``
sets), and there is nothing to precompute or reuse.

The ablation this module supports (``benchmarks/bench_ablation_schedule``)
shows what the hub-length realization buys: per *iteration* the
length schedule's error is exactly ``(1-alpha)^(k+1)`` while hub-length
partitions cover many lengths at once (every hub-free tour regardless of
length lands in iteration 0), so FastPPV converges in far fewer — and
index-accelerated — iterations.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.query import QueryResult, QueryState, StopAfterIterations, StoppingCondition
from repro.graph.digraph import DiGraph
from repro.graph.pagerank import DEFAULT_ALPHA


class LengthScheduledPPV:
    """Anytime PPV by path-length partitions (power iteration).

    Shares the incremental/accuracy-aware interface of
    :class:`~repro.core.query.FastPPV` so the two schedules can be
    compared head-to-head; there is no offline phase.
    """

    def __init__(self, graph: DiGraph, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.graph = graph
        self.alpha = alpha
        self._operator = graph.transition_matrix().T.tocsr()

    def query(
        self,
        query: int,
        stop: StoppingCondition | None = None,
        max_iterations: int = 500,
    ) -> QueryResult:
        """Estimate the PPV of ``query``, one path-length level per
        iteration."""
        if not 0 <= query < self.graph.num_nodes:
            raise ValueError(f"query node {query} out of range")
        if stop is None:
            stop = StopAfterIterations(2)
        started = time.perf_counter()
        term = np.zeros(self.graph.num_nodes)
        term[query] = self.alpha
        estimate = term.copy()
        error_history = [1.0 - float(estimate.sum())]
        iteration = 0

        def state() -> QueryState:
            return QueryState(
                iteration=iteration,
                l1_error=error_history[-1],
                elapsed_seconds=time.perf_counter() - started,
                frontier_size=int(np.count_nonzero(term)),
                scores=estimate,
            )

        while iteration < max_iterations and not stop.should_stop(state()):
            iteration += 1
            term = (1.0 - self.alpha) * (self._operator @ term)
            estimate += term
            error_history.append(1.0 - float(estimate.sum()))

        return QueryResult(
            query=query,
            scores=estimate,
            iterations=iteration,
            error_history=error_history,
            hubs_expanded=0,
            seconds=time.perf_counter() - started,
            work_units=iteration * self.graph.num_edges,
        )


def length_partition_mass(level: int, alpha: float = DEFAULT_ALPHA) -> float:
    """Total reachability of all tours of exactly ``level`` edges.

    The ``sum over t in S^i of R(t) = (1 - alpha)^i alpha`` identity from
    the Theorem 2 proof — on a dangling-free graph the level masses are
    graph-independent.
    """
    if level < 0:
        raise ValueError("level must be non-negative")
    return (1.0 - alpha) ** level * alpha
