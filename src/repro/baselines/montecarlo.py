"""MonteCarlo baseline: fingerprint sampling (Fogaras et al. [8]).

A *fingerprint* is the endpoint of one random walk whose length is
geometric with parameter ``alpha`` — the distribution of endpoints *is*
the PPV.  The paper's adaptation (Sect. 6, "Baselines"):

* **Offline**: sample ``samples_per_hub`` fingerprints for each hub node
  (hubs = highest global PageRank, the common strategy of [12, 5]).
* **Online**: run ``samples_per_query`` walks from the query.  Whenever a
  walk *steps onto* a hub, it terminates immediately by drawing one of the
  hub's precomputed endpoints uniformly — valid because the walk is
  memoryless: the endpoint of a fresh walk started at the hub has exactly
  the distribution of the remaining walk.

The estimate is the empirical endpoint distribution.  Accuracy grows with
``samples_per_query`` (the ``N`` knob of Fig. 5); cost grows linearly.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.result import BaselineResult
from repro.core.index import IndexStats
from repro.graph.digraph import DiGraph
from repro.graph.pagerank import DEFAULT_ALPHA, global_pagerank


class MonteCarlo:
    """Fingerprint-based PPV engine.

    Parameters
    ----------
    graph:
        The graph.
    num_hubs:
        Number of hub nodes to fingerprint offline (0 disables reuse; the
        engine then degenerates to plain online sampling).
    samples_per_query:
        Walks per online query (``N`` in Fig. 5).
    samples_per_hub:
        Offline fingerprints per hub; defaults to ``samples_per_query``.
    alpha:
        Teleport probability.
    seed:
        Seed for both the offline and the online random streams.  Online
        queries draw from a generator re-seeded per query with
        ``(seed, query)`` so results are reproducible query-by-query.
    """

    def __init__(
        self,
        graph: DiGraph,
        num_hubs: int,
        samples_per_query: int,
        samples_per_hub: int | None = None,
        alpha: float = DEFAULT_ALPHA,
        seed: int = 0,
        pagerank: np.ndarray | None = None,
    ) -> None:
        if samples_per_query <= 0:
            raise ValueError("samples_per_query must be positive")
        self.graph = graph
        self.alpha = alpha
        self.samples_per_query = samples_per_query
        self.samples_per_hub = (
            samples_per_hub if samples_per_hub is not None else samples_per_query
        )
        self.seed = seed
        self.offline_stats = IndexStats()
        self._fingerprints: dict[int, np.ndarray] = {}
        # Weighted graphs sample edges by cumulative step probability;
        # unweighted graphs use the cheaper uniform integer draw.
        self._cumulative = (
            np.cumsum(graph.edge_probabilities) if graph.is_weighted else None
        )
        self._precompute(num_hubs, pagerank)

    # ------------------------------------------------------------------ #

    def _walk_endpoint(
        self,
        start: int,
        rng: np.random.Generator,
        splice: bool,
    ) -> tuple[int, int]:
        """One fingerprint walk; returns ``(endpoint, steps)``.

        The endpoint is -1 when the walk dies at a dangling node.
        ``splice`` enables hub-fingerprint reuse (online mode); offline
        sampling keeps walking so hub fingerprints are unbiased and
        independent of hub computation order.
        """
        indptr, indices = self.graph.indptr, self.graph.indices
        node = start
        steps = 0
        while True:
            if rng.random() < self.alpha:
                return node, steps
            start_edge, end_edge = indptr[node], indptr[node + 1]
            if start_edge == end_edge:
                return -1, steps  # dangling: the walk dies (tour semantics)
            if self._cumulative is None:
                edge = start_edge + rng.integers(end_edge - start_edge)
            else:
                base = self._cumulative[start_edge - 1] if start_edge else 0.0
                total = self._cumulative[end_edge - 1] - base
                edge = start_edge + int(
                    np.searchsorted(
                        self._cumulative[start_edge:end_edge],
                        base + rng.random() * total,
                        side="right",
                    )
                )
                edge = min(edge, end_edge - 1)
            node = int(indices[edge])
            steps += 1
            if splice and node in self._fingerprints:
                endpoints = self._fingerprints[node]
                return int(endpoints[rng.integers(endpoints.size)]), steps

    def _precompute(self, num_hubs: int, pagerank: np.ndarray | None) -> None:
        started = time.perf_counter()
        num_hubs = min(num_hubs, self.graph.num_nodes)
        if num_hubs > 0:
            if pagerank is None:
                pagerank = global_pagerank(self.graph, alpha=self.alpha)
            order = np.lexsort((np.arange(self.graph.num_nodes), -pagerank))
            hubs = np.sort(order[:num_hubs])
            rng = np.random.default_rng(self.seed)
            for hub in hubs:
                endpoints = np.fromiter(
                    (
                        self._walk_endpoint(int(hub), rng, splice=False)[0]
                        for _ in range(self.samples_per_hub)
                    ),
                    dtype=np.int64,
                    count=self.samples_per_hub,
                )
                endpoints = endpoints[endpoints >= 0]
                if endpoints.size == 0:
                    # All walks died; keep an empty array out of the cache
                    # so online walks fall back to plain stepping.
                    continue
                self._fingerprints[int(hub)] = endpoints
                self.offline_stats.stored_entries += endpoints.size
                self.offline_stats.stored_bytes += endpoints.nbytes
        self.offline_stats.num_hubs = len(self._fingerprints)
        self.offline_stats.build_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------ #

    @property
    def hubs(self) -> np.ndarray:
        """Sorted ids of the fingerprinted hubs."""
        return np.asarray(sorted(self._fingerprints), dtype=np.int64)

    def query(self, query: int) -> BaselineResult:
        """Estimate the PPV of ``query`` from ``samples_per_query`` walks."""
        if not 0 <= query < self.graph.num_nodes:
            raise ValueError(f"query node {query} out of range")
        started = time.perf_counter()
        rng = np.random.default_rng((self.seed, query))
        counts = np.zeros(self.graph.num_nodes)
        total_steps = 0
        for _ in range(self.samples_per_query):
            endpoint, steps = self._walk_endpoint(query, rng, splice=True)
            total_steps += steps
            if endpoint >= 0:
                counts[endpoint] += 1.0
        return BaselineResult(
            query=query,
            scores=counts / self.samples_per_query,
            seconds=time.perf_counter() - started,
            work_units=total_steps,
        )
