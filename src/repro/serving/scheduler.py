"""The coalescing micro-batch scheduler behind ``PPVService``.

Concurrent ``submit()`` calls land in one queue; a single drain thread
admits them in arrival order and serves them as **engine batches**: after
the first request of a drain arrives, the scheduler holds the batch open
for up to ``max_delay`` seconds (or until ``max_batch`` requests are
pending, or someone kicks it) so that concurrent callers coalesce into
one call per execution group.  On the disk backend that is what turns two
independent clients from residency-thrashing neighbours into one
cluster-grouped batch — each scheduling wave of
:class:`~repro.storage.disk_engine.BatchDiskFastPPV` faults a cluster in
once and drains every coalesced query that needs it.

All engine work — batch serving *and* streaming queries — runs on the
drain thread, so engines never see concurrent calls and need no locking
of their own.

The scheduler is deliberately engine-agnostic: it moves opaque jobs to an
``execute`` callback (the service's planner) and only owns admission,
batching, flushing and lifecycle.
"""

from __future__ import annotations

import threading
import time
from collections import deque

DEFAULT_MAX_BATCH = 64
"""Requests admitted into one drain (engine batches are chunked again
engine-side, so this mainly bounds how long one drain can run)."""

DEFAULT_MAX_DELAY = 0.002
"""Seconds a drain holds the batch open for concurrent arrivals."""

AUTO_DELAY_MIN = 0.0002
"""Floor of the adaptive coalescing window (``max_delay="auto"``)."""

AUTO_DELAY_MAX = DEFAULT_MAX_DELAY
"""Cap of the adaptive coalescing window: ``"auto"`` only ever *shrinks*
the wait below the static default.  A larger cap is a trap for
closed-loop clients (one request in flight each): their inter-arrival
gap includes the window itself, so any cap above the service time
inflates every round-trip to the cap — the window must never exceed a
gap the traffic can close."""

AUTO_DELAY_MULTIPLIER = 4.0
"""The adaptive window spans this many observed inter-arrival gaps, so a
drain typically coalesces a handful of concurrent submitters."""

AUTO_EWMA_ALPHA = 0.2
"""Smoothing factor of the inter-arrival EWMA behind ``"auto"``."""


class CoalescingScheduler:
    """Admission queue + drain thread (see module docstring).

    Parameters
    ----------
    execute:
        ``execute(jobs)`` — serve a list of admitted jobs.  Called on the
        drain thread only.  The service's executor converts failures
        into per-handle errors itself; if ``execute`` raises anyway, the
        batch is *not* silently dropped: ``on_error`` (when given) is
        invoked with the failed batch so every job can be resolved, and
        the error is re-raised out of the next :meth:`flush` — the
        scheduler itself survives and keeps draining.
    max_batch:
        Maximum jobs admitted into one drain.
    max_delay:
        Coalescing window in seconds (0 disables the wait: every drain
        takes whatever is queued the moment it wakes), or the string
        ``"auto"``: the window is tuned continuously from the observed
        arrival rate — an EWMA of submission inter-arrival gaps.  Dense
        traffic holds the window open for
        :data:`AUTO_DELAY_MULTIPLIER` gaps (clamped to
        [:data:`AUTO_DELAY_MIN`, :data:`AUTO_DELAY_MAX`], the cap being
        the static default) so concurrent submitters coalesce; traffic
        arriving slower than the cap waits not at all, because no
        companion would arrive within the window anyway — sparse or
        closed-loop clients get their responses immediately instead of
        taxing every round-trip with the full wait.  A numeric
        ``max_delay`` is entirely unaffected by the estimator.
    on_error:
        Optional ``on_error(jobs, error)`` — called on the drain thread
        when ``execute`` raised, with the batch that failed.  Exceptions
        it raises itself are suppressed (the original error still
        surfaces through :meth:`flush`).
    fault_plan:
        Tests only: a :class:`repro.faults.FaultPlan` whose
        ``scheduler.execute`` site fires on the drain thread just before
        each ``execute(batch)`` call — a raising rule exercises the
        executor-failure path, a delay rule simulates a slow drain.
        ``None`` (the default) keeps the drain loop hook-free.
    obs:
        A :class:`repro.obs.Observability` bundle.  When given, the
        scheduler registers its admission state (queue depth, in-flight
        jobs, drains served) as function-backed gauges/counters and
        records per-drain batch size and coalescing hold time into push
        histograms (two observations per *drain*, not per job).
        ``None`` keeps the drain loop metric-free.
    """

    def __init__(
        self,
        execute,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay: "float | str" = DEFAULT_MAX_DELAY,
        on_error=None,
        fault_plan=None,
        obs=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if isinstance(max_delay, str):
            if max_delay != "auto":
                raise ValueError(
                    f"max_delay must be a non-negative number or 'auto', "
                    f"not {max_delay!r}"
                )
        elif max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self._execute = execute
        self._on_error = on_error
        self.fault_plan = fault_plan
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._auto_delay = max_delay == "auto"
        self._ewma_gap: float | None = None
        self._last_arrival: float | None = None
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._thread: threading.Thread | None = None
        self._closed = False
        # A kick covers the jobs admitted before it (by admission count):
        # drains skip the coalescing wait while pre-kick jobs remain, and
        # the kick expires on its own once they are all popped — it can
        # neither leak onto later traffic (the pre-fix bug: a stale flag
        # cleared only on a fully drained queue disabled coalescing for
        # everything arriving during a long burst) nor strand the tail
        # of the kicked burst in a fresh max_delay window.
        self._kick_horizon = 0
        self._jobs_popped = 0
        self._in_flight = 0
        self._error: BaseException | None = None
        self.batches_served = 0
        self.largest_batch = 0
        self.jobs_submitted = 0
        self._batch_size_hist = None
        self._hold_hist = None
        if obs is not None:
            registry = obs.registry
            self._batch_size_hist = registry.histogram(
                "repro_batch_size",
                "Jobs coalesced into one scheduler drain.",
                bounds=(1, 2, 4, 8, 16, 32, 64, 128),
            )
            self._hold_hist = registry.histogram(
                "repro_coalesce_delay_seconds",
                "Seconds each drain held its batch open for stragglers.",
                bounds=(0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1),
            )
            registry.gauge_func(
                "repro_queue_depth",
                "Jobs admitted but not yet popped into a drain.",
                lambda: len(self._queue),
            )
            registry.gauge_func(
                "repro_in_flight",
                "Jobs inside a drain that has not finished executing.",
                lambda: self._in_flight,
            )
            registry.counter_func(
                "repro_batches_served_total",
                "Scheduler drains executed.",
                lambda: self.batches_served,
            )
            registry.gauge_func(
                "repro_largest_batch",
                "Largest drain so far.",
                lambda: self.largest_batch,
            )

    # ------------------------------------------------------------------ #

    def submit(self, job) -> None:
        """Enqueue one job for the next drain."""
        self.submit_many([job])

    def submit_many(self, jobs) -> None:
        """Enqueue several jobs atomically.

        All of them enter the queue under one lock acquisition, so a
        burst submitted together can never be split by a concurrent
        drain waking mid-burst — the foundation of the service's
        determinism guarantee for ``query_many``.
        """
        jobs = list(jobs)
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if self._auto_delay:
                self._observe_arrival(time.monotonic())
            self._queue.extend(jobs)
            self.jobs_submitted += len(jobs)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._drain_loop,
                    name="ppv-serving-drain",
                    daemon=True,
                )
                self._thread.start()
            self._cond.notify_all()

    def _observe_arrival(self, now: float) -> None:
        """Feed one submission timestamp into the inter-arrival EWMA.

        Called with the lock held (``"auto"`` mode only).  A whole
        ``submit_many`` burst counts as one arrival: the burst already
        travels together, so only the gap *between* independent
        submitters carries coalescing information.
        """
        if self._last_arrival is not None:
            # Clamp the observation: any gap at or beyond the cap means
            # "too sparse to coalesce" and nothing more — feeding the
            # raw length of an idle spell into the EWMA would keep the
            # window disabled for dozens of arrivals after dense
            # traffic resumes.
            gap = min(now - self._last_arrival, AUTO_DELAY_MAX)
            if self._ewma_gap is None:
                self._ewma_gap = gap
            else:
                self._ewma_gap += AUTO_EWMA_ALPHA * (gap - self._ewma_gap)
        self._last_arrival = now

    def _effective_delay(self) -> float:
        """The coalescing window the next drain should hold open."""
        if not self._auto_delay:
            return self.max_delay
        if self._ewma_gap is None:
            # No gap observed yet: start from the static default.
            return DEFAULT_MAX_DELAY
        if self._ewma_gap >= 0.9 * AUTO_DELAY_MAX:
            # Sparse traffic: no companion would arrive inside the
            # latency budget, so holding the window open only adds
            # latency.  The threshold sits below the cap because
            # observations are clamped *to* the cap — an EWMA fed
            # nothing but clamped gaps approaches AUTO_DELAY_MAX
            # asymptotically and would otherwise never be recognised
            # as sparse after any dense spell.
            return 0.0
        return min(
            AUTO_DELAY_MAX,
            max(AUTO_DELAY_MIN, AUTO_DELAY_MULTIPLIER * self._ewma_gap),
        )

    @property
    def effective_max_delay(self) -> float:
        """The coalescing window currently in force (numeric even in
        ``"auto"`` mode)."""
        with self._cond:
            return self._effective_delay()

    @property
    def queue_depth(self) -> int:
        """Jobs admitted but not yet popped into a drain."""
        with self._cond:
            return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Jobs popped into a drain that has not finished executing."""
        with self._cond:
            return self._in_flight

    def kick(self) -> None:
        """Close the coalescing window for everything queued so far.

        Drains pop immediately (no ``max_delay`` hold) until every job
        admitted before this call has been served — a burst larger than
        ``max_batch`` goes out back to back — after which the kick
        expires and later submissions coalesce normally again.
        """
        with self._cond:
            self._kick_horizon = max(self._kick_horizon, self.jobs_submitted)
            self._cond.notify_all()

    def _kick_active(self) -> bool:
        # Called with the lock held: pre-kick jobs still unpopped?
        return self._jobs_popped < self._kick_horizon

    def flush(self, timeout: float | None = None) -> None:
        """Kick and block until every queued job has been served.

        Raises
        ------
        TimeoutError
            If the queue did not empty within ``timeout`` seconds.
        BaseException
            A pending executor-level failure (an ``execute`` call that
            raised), re-raised here exactly once instead of being
            swallowed — the jobs of that batch were already resolved
            through ``on_error``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._kick_horizon = max(self._kick_horizon, self.jobs_submitted)
            self._cond.notify_all()
            while self._queue or self._in_flight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError("flush timed out")
                # Keep the window closed across drains: a flush means
                # *everything* queued should go out immediately —
                # extend the kick horizon over late arrivals and wake a
                # drain that re-entered a coalescing wait between our
                # wakeups.
                self._kick_horizon = max(
                    self._kick_horizon, self.jobs_submitted
                )
                self._cond.notify_all()
                self._cond.wait(remaining)
            error, self._error = self._error, None
        if error is not None:
            raise error

    def close(self) -> None:
        """Serve whatever is queued, then stop the drain thread.

        Idempotent; further ``submit`` calls raise ``RuntimeError``.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join()

    # ------------------------------------------------------------------ #

    def _drain_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                # Coalescing window: hold the batch open for stragglers
                # unless an unexpired kick covers queued jobs.
                delay = self._effective_delay()
                held_from = (
                    time.monotonic()
                    if self._hold_hist is not None
                    else None
                )
                if (
                    delay > 0
                    and not self._kick_active()
                    and not self._closed
                ):
                    deadline = time.monotonic() + delay
                    while (
                        len(self._queue) < self.max_batch
                        and not self._kick_active()
                        and not self._closed
                    ):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                batch = []
                while self._queue and len(batch) < self.max_batch:
                    batch.append(self._queue.popleft())
                # The kick horizon expires by itself as pre-kick jobs
                # are popped; nothing to reset here.
                self._jobs_popped += len(batch)
                self._in_flight += len(batch)
            if self._batch_size_hist is not None:
                self._batch_size_hist.record(len(batch))
                self._hold_hist.record(time.monotonic() - held_from)
            try:
                if self.fault_plan is not None:
                    self.fault_plan.fire("scheduler.execute", jobs=len(batch))
                self._execute(batch)
            except BaseException as error:
                # An executor-level failure must not strand the batch:
                # hand it to on_error so every job gets resolved, and
                # arm the next flush() to re-raise.
                if self._on_error is not None:
                    try:
                        self._on_error(batch, error)
                    except BaseException:  # pragma: no cover - last resort
                        pass
                with self._cond:
                    if self._error is None:
                        self._error = error
            finally:
                with self._cond:
                    self._in_flight -= len(batch)
                    self.batches_served += 1
                    self.largest_batch = max(self.largest_batch, len(batch))
                    self._cond.notify_all()
