"""The tour model: reachability and inverse P-distance (Eq. 1-2).

A *tour* is any walk ``v0 -> v1 -> ... -> vL`` (cycles allowed).  Its
reachability is

    R(t) = (1 - alpha)^L * alpha * prod_i 1 / out(v_i)      (Eq. 2)

and a node's PPV score equals the sum of reachabilities over all tours from
the query to it (Eq. 1, the inverse P-distance identity of Jeh & Widom).

This module gives the literal, enumerate-all-tours implementation.  It is
exponential and exists as the *executable specification*: tests cross-check
the fast solvers (exact power iteration, prime push, the full FastPPV
engine) against sums over explicitly enumerated tours on small graphs —
exactly the computation of the paper's Fig. 1(b) example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.pagerank import DEFAULT_ALPHA

Tour = tuple[int, ...]

DEFAULT_MAX_TOUR_LENGTH = 6
"""Served default for :func:`reachability_query`.  Enumeration is
exponential in tour length, so the served family keeps this small."""


def tour_reachability(graph: DiGraph, tour: Sequence[int], alpha: float = DEFAULT_ALPHA) -> float:
    """Reachability ``R(t)`` of one tour (Eq. 2).

    The tour is a node sequence; a length-0 tour ``(v,)`` has reachability
    ``alpha`` (the surfer teleport-stops immediately).  On weighted graphs
    the per-edge factor ``1/out_degree`` generalises to the edge's
    normalised step probability.

    Raises
    ------
    ValueError
        If consecutive nodes are not joined by an edge.
    """
    if len(tour) == 0:
        raise ValueError("a tour contains at least its starting node")
    probability = alpha
    for src, dst in zip(tour, tour[1:]):
        probability *= (1.0 - alpha) * graph.edge_probability(src, dst)
    return probability


def enumerate_tours(
    graph: DiGraph,
    source: int,
    max_length: int,
    target: int | None = None,
) -> Iterator[Tour]:
    """All tours from ``source`` of natural length ``<= max_length``.

    Cycles are allowed, so the count grows exponentially with
    ``max_length``; keep it small (tests use <= 12).  When ``target`` is
    given, only tours ending there are yielded.
    """
    stack: list[Tour] = [(source,)]
    while stack:
        tour = stack.pop()
        if target is None or tour[-1] == target:
            yield tour
        if len(tour) - 1 < max_length:
            for nbr in graph.out_neighbors(tour[-1]):
                stack.append(tour + (int(nbr),))


def hub_length(tour: Sequence[int], hubs: frozenset[int] | set[int]) -> int:
    """Number of *interior* hub occurrences on a tour (Definition 1).

    The first and last positions are excluded — a tour may start or end at
    a hub without that occurrence counting.
    """
    if len(tour) <= 2:
        return 0
    return sum(1 for node in tour[1:-1] if node in hubs)


def brute_force_ppv(
    graph: DiGraph,
    source: int,
    max_length: int,
    alpha: float = DEFAULT_ALPHA,
) -> np.ndarray:
    """PPV by summing Eq. 2 over all tours up to ``max_length`` (Eq. 1).

    Truncation error is at most ``(1 - alpha)^(max_length + 1)`` in L1
    (the total reachability of all longer tours), so with ``max_length=60``
    and ``alpha=0.15`` the result is exact to ~5e-5.
    """
    scores = np.zeros(graph.num_nodes)
    for tour in enumerate_tours(graph, source, max_length):
        scores[tour[-1]] += tour_reachability(graph, tour, alpha)
    return scores


@dataclass(frozen=True)
class ReachabilityResult:
    """Truncated-tour PPV scores with their certified truncation bound.

    The served form of :func:`brute_force_ppv`: ``scores`` sums Eq. 2
    over every tour of natural length ``<= max_length``, and
    ``truncation_bound = (1 - alpha)^(max_length + 1)`` upper-bounds the
    total L1 mass of the tours that were cut off — the same
    accuracy-aware contract the scheduled engines carry.
    """

    query: int
    max_length: int
    alpha: float
    scores: np.ndarray = field(repr=False)
    truncation_bound: float = 0.0

    def top_k(self, k: int) -> list[tuple[int, float]]:
        """Top ``k`` (node, score) pairs, score-descending, ties by node.

        Same deterministic order as every other served ranking:
        ``lexsort`` on (-score, node index).
        """
        size = min(int(k), self.scores.shape[0])
        order = np.lexsort((np.arange(self.scores.shape[0]), -self.scores))
        return [
            (int(node), float(self.scores[node])) for node in order[:size]
        ]


def reachability_query(
    graph: DiGraph,
    source: int,
    max_length: int = DEFAULT_MAX_TOUR_LENGTH,
    alpha: float = DEFAULT_ALPHA,
) -> ReachabilityResult:
    """Serve :func:`brute_force_ppv` with its truncation certificate.

    Raises
    ------
    ValueError
        If ``source`` is out of range, ``max_length`` is negative, or
        ``alpha`` is outside ``(0, 1]``.
    """
    if not 0 <= source < graph.num_nodes:
        raise ValueError(f"source {source} out of range")
    if max_length < 0:
        raise ValueError("max_length must be >= 0")
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must lie in (0, 1]")
    scores = brute_force_ppv(graph, source, max_length, alpha=alpha)
    return ReachabilityResult(
        query=int(source),
        max_length=int(max_length),
        alpha=float(alpha),
        scores=scores,
        truncation_bound=float((1.0 - alpha) ** (max_length + 1)),
    )


def brute_force_increment(
    graph: DiGraph,
    source: int,
    hubs: frozenset[int] | set[int],
    level: int,
    max_length: int,
    alpha: float = DEFAULT_ALPHA,
) -> np.ndarray:
    """PPV increment over the partition ``T^level`` by tour enumeration.

    Sums Eq. 2 over tours with exactly ``level`` interior hubs — the
    executable form of the increment the online engine assembles via
    Theorem 4.  Used only in tests.
    """
    hubset = frozenset(hubs)
    scores = np.zeros(graph.num_nodes)
    for tour in enumerate_tours(graph, source, max_length):
        if hub_length(tour, hubset) == level:
            scores[tour[-1]] += tour_reachability(graph, tour, alpha)
    return scores
