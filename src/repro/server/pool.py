"""Pre-fork multi-worker serving: N processes, one shared listen socket.

Python's GIL caps one process's query throughput no matter how many
connections the asyncio front-end multiplexes.  The pool escapes it the
classic pre-fork way: the parent binds the listening socket, forks ``N``
workers, and every worker accepts from the *same* socket — the kernel
load-balances connections, no proxy hop, no port juggling.

Each worker builds its **own** :class:`~repro.serving.PPVService` from a
``service_factory`` callable *after* the fork, so per-worker state with
process affinity (the scheduler drain thread, open file handles such as
a :class:`~repro.storage.ppv_store.DiskPPVStore`'s) is never shared
across processes, while the big read-only inputs the factory closes
over (graph, index) are inherited copy-on-write — every worker opens
the index read-only without paying for a copy.

Requires a platform with the ``fork`` start method (Linux, most BSDs);
:func:`run_pool` says so loudly otherwise.  Hot ``swap_index`` requests
apply to the worker that received them — with shared-nothing workers a
cluster-wide swap is a client-side fan-out (one swap per connection
until ``stats`` shows every pid swapped) or a rolling restart.
"""

from __future__ import annotations

import multiprocessing
import signal
import socket

from repro.server.server import PPVServer, ServerConfig


def _raise_interrupt(signum, frame):  # pragma: no cover - signal path
    raise KeyboardInterrupt


def _worker_main(worker_index: int, sock, service_factory, config) -> None:
    """Entry point of one forked worker: build, serve, clean up."""
    import asyncio

    # The parent's handlers must not fire twice; the server installs its
    # own graceful SIGTERM/SIGINT handling inside the event loop.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    sock = _worker_socket(worker_index, sock)
    service = service_factory()
    server = PPVServer(service, config, worker_index=worker_index)
    try:
        asyncio.run(server.serve(sock=sock))
    finally:
        service.close()


def _worker_socket(worker_index: int, inherited: socket.socket):
    """The listen socket one worker should accept from.

    Worker 0 keeps the inherited (parent-bound) socket so the port is
    never without a listener; the others bind their own ``SO_REUSEPORT``
    siblings to the same address, which makes the *kernel* hash incoming
    connections evenly across workers — a shared accept queue lets one
    event loop grab a whole burst of connections while its siblings
    idle.  Falls back to the shared queue where ``SO_REUSEPORT`` is
    unavailable.
    """
    if worker_index == 0:
        return inherited
    try:
        own = socket.create_server(
            inherited.getsockname()[:2], family=socket.AF_INET,
            backlog=128, reuse_port=True,
        )
    except (OSError, ValueError):  # pragma: no cover - platform-dependent
        # ValueError: this platform's socket module has no SO_REUSEPORT
        # (create_server refuses before even trying to bind).
        return inherited
    own.setblocking(False)
    inherited.close()
    return own


def open_listen_socket(host: str, port: int, backlog: int = 128) -> socket.socket:
    """Bind the pool's primary listening socket (port 0 picks a free
    port).  Bound with ``SO_REUSEPORT`` where available so worker
    processes can join the kernel's load-balancing group with their own
    sockets (:func:`_worker_socket`)."""
    try:
        sock = socket.create_server(
            (host, port), family=socket.AF_INET, backlog=backlog,
            reuse_port=True,
        )
    except (OSError, ValueError):  # pragma: no cover - platform-dependent
        sock = socket.create_server(
            (host, port), family=socket.AF_INET, backlog=backlog,
        )
    sock.setblocking(False)
    return sock


def run_pool(
    service_factory,
    workers: int,
    config: ServerConfig | None = None,
    announce=None,
) -> int:
    """Serve with ``workers`` pre-forked processes until interrupted.

    Parameters
    ----------
    service_factory:
        Zero-argument callable building one worker's ``PPVService``.
        Called inside each worker after the fork; whatever it closes
        over is inherited copy-on-write.
    workers:
        Number of processes.  Must be >= 1; 1 still forks (uniform
        lifecycle), callers wanting in-process serving should run
        :class:`~repro.server.server.PPVServer` directly.
    config:
        Transport tunables; ``config.host``/``config.port`` name the
        shared socket.
    announce:
        Optional callable receiving the bound ``(host, port)`` before
        workers start (the CLI prints it).

    Returns the worst worker exit code (0 when all exited cleanly).
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform-dependent
        raise RuntimeError(
            "multi-worker serving needs the 'fork' start method; "
            "run with --workers 1 on this platform"
        ) from None
    config = config or ServerConfig()
    sock = open_listen_socket(config.host, config.port)
    try:
        address = sock.getsockname()[:2]
        if announce is not None:
            announce(address)
        children = []
        for index in range(workers):
            child = context.Process(
                target=_worker_main,
                args=(index, sock, service_factory, config),
                name=f"ppv-worker-{index}",
                daemon=False,
            )
            child.start()
            children.append(child)
        # A SIGTERM to the pool parent must reach the workers (the
        # parent's default action would orphan them mid-serve).
        restore = []
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                restore.append(
                    (signum, signal.signal(signum, _raise_interrupt))
                )
        except ValueError:  # not the main thread (embedded use)
            pass
        try:
            for child in children:
                child.join()
        except KeyboardInterrupt:
            pass
        finally:
            for signum, handler in restore:
                signal.signal(signum, handler)
            # Graceful first (workers drain in-flight work on SIGTERM),
            # then force whatever ignored it.
            for child in children:
                if child.is_alive():
                    child.terminate()
            for child in children:
                child.join(timeout=30)
            for child in children:
                if child.is_alive():  # pragma: no cover - last resort
                    child.kill()
                    child.join()
        # A worker torn down by our own SIGTERM is a clean exit; any
        # other signal death maps to the shell convention (128 + sig)
        # so a crashed worker can never masquerade as success.
        worst = 0
        for child in children:
            code = child.exitcode or 0
            if code == -signal.SIGTERM or code == 0:
                continue
            worst = max(worst, 128 - code if code < 0 else code)
        return worst
    finally:
        sock.close()
