"""Unit tests for GraphBuilder and from_edges."""

import pytest

from repro.graph import GraphBuilder, from_edges


class TestGraphBuilder:
    def test_integer_mode(self):
        builder = GraphBuilder(num_nodes=3)
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        graph = builder.build()
        assert graph.num_nodes == 3
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_integer_mode_rejects_out_of_range(self):
        builder = GraphBuilder(num_nodes=2)
        with pytest.raises(ValueError):
            builder.add_edge(0, 5)

    def test_integer_mode_rejects_negative(self):
        builder = GraphBuilder(num_nodes=2)
        with pytest.raises(ValueError):
            builder.add_edge(-1, 0)

    def test_labelled_mode_interns(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "bob")
        builder.add_edge("bob", "alice")
        graph = builder.build()
        assert graph.num_nodes == 2
        assert graph.node_id("alice") == 0
        assert graph.node_id("bob") == 1
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_add_node_without_edges(self):
        builder = GraphBuilder()
        builder.add_node("lonely")
        graph = builder.build()
        assert graph.num_nodes == 1
        assert graph.num_edges == 0

    def test_deduplicates_parallel_edges(self):
        builder = GraphBuilder(num_nodes=2)
        builder.add_edge(0, 1)
        builder.add_edge(0, 1)
        builder.add_edge(0, 1)
        assert builder.num_pending_edges == 3
        graph = builder.build()
        assert graph.num_edges == 1

    def test_undirected_edge(self):
        builder = GraphBuilder(num_nodes=2)
        builder.add_undirected_edge(0, 1)
        graph = builder.build()
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_self_loop_kept_by_default(self):
        builder = GraphBuilder(num_nodes=1)
        builder.add_edge(0, 0)
        assert builder.build().num_edges == 1

    def test_drop_self_loops(self):
        builder = GraphBuilder(num_nodes=2)
        builder.add_edge(0, 0)
        builder.add_edge(0, 1)
        graph = builder.build(drop_self_loops=True)
        assert sorted(graph.edges()) == [(0, 1)]

    def test_add_edges_bulk(self):
        builder = GraphBuilder(num_nodes=4)
        builder.add_edges([(0, 1), (1, 2), (2, 3)])
        assert builder.build().num_edges == 3

    def test_empty_labelled_build(self):
        graph = GraphBuilder().build()
        assert graph.num_nodes == 0

    def test_neighbors_sorted_after_build(self):
        builder = GraphBuilder(num_nodes=4)
        builder.add_edges([(0, 3), (0, 1), (0, 2)])
        graph = builder.build()
        assert graph.out_neighbors(0).tolist() == [1, 2, 3]


class TestFromEdges:
    def test_infers_num_nodes(self):
        graph = from_edges([(0, 4)])
        assert graph.num_nodes == 5

    def test_undirected(self):
        graph = from_edges([(0, 1)], undirected=True)
        assert graph.num_edges == 2

    def test_empty_no_num_nodes(self):
        graph = from_edges([])
        assert graph.num_nodes == 0


class TestProcessExecutorBuild:
    """``build_index(..., executor="process")``: the GIL-escaping
    offline build must be entry-wise identical to the serial one."""

    @pytest.fixture(scope="class")
    def graph(self):
        from repro import social_graph

        return social_graph(num_nodes=250, edges_per_node=3, seed=9)

    @pytest.fixture(scope="class")
    def hubs(self, graph):
        from repro import select_hubs

        return select_hubs(graph, num_hubs=25)

    @staticmethod
    def _assert_indexes_identical(left, right):
        import numpy as np

        assert sorted(left.entries) == sorted(right.entries)
        assert np.array_equal(left.hub_mask, right.hub_mask)
        for hub, entry in left.entries.items():
            other = right.entries[hub]
            assert np.array_equal(entry.nodes, other.nodes)
            assert np.array_equal(entry.scores, other.scores)
            assert np.array_equal(entry.border_hubs, other.border_hubs)
            assert np.array_equal(entry.border_masses, other.border_masses)
        assert left.stats.stored_entries == right.stats.stored_entries
        assert left.stats.stored_bytes == right.stats.stored_bytes
        assert left.stats.border_entries == right.stats.border_entries
        assert left.stats.num_hubs == right.stats.num_hubs

    def test_process_pool_matches_serial(self, graph, hubs):
        from repro import build_index

        serial = build_index(graph, hubs)
        process = build_index(graph, hubs, workers=2, executor="process")
        self._assert_indexes_identical(serial, process)

    def test_process_pool_matches_thread_pool(self, graph, hubs):
        from repro import build_index

        threaded = build_index(graph, hubs, workers=2, executor="thread")
        process = build_index(graph, hubs, workers=3, executor="process")
        self._assert_indexes_identical(threaded, process)

    def test_single_worker_ignores_executor_choice(self, graph, hubs):
        from repro import build_index

        serial = build_index(graph, hubs)
        process = build_index(graph, hubs, workers=1, executor="process")
        self._assert_indexes_identical(serial, process)

    def test_unknown_executor_rejected(self, graph, hubs):
        from repro import build_index

        with pytest.raises(ValueError, match="executor"):
            build_index(graph, hubs, workers=2, executor="rayon")
