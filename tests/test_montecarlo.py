"""Unit tests for the MonteCarlo fingerprint baseline."""

import numpy as np
import pytest

from repro.baselines import MonteCarlo
from repro.core.exact import exact_ppv
from repro.metrics import precision_at_k
from tests.conftest import ALPHA


@pytest.fixture(scope="module")
def engine(small_social):
    return MonteCarlo(
        small_social, num_hubs=30, samples_per_query=3000, seed=42
    )


class TestOffline:
    def test_hub_count(self, engine):
        assert engine.hubs.size == 30
        assert engine.offline_stats.num_hubs == 30

    def test_fingerprint_storage_accounted(self, engine):
        assert engine.offline_stats.stored_entries > 0
        assert engine.offline_stats.stored_bytes > 0

    def test_no_hubs_allowed(self, small_social):
        engine = MonteCarlo(small_social, num_hubs=0, samples_per_query=500)
        assert engine.hubs.size == 0
        result = engine.query(3)
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-9)

    def test_invalid_samples(self, small_social):
        with pytest.raises(ValueError):
            MonteCarlo(small_social, num_hubs=5, samples_per_query=0)


class TestOnline:
    def test_estimate_is_distribution(self, engine):
        result = engine.query(5)
        assert result.scores.min() >= 0.0
        # Dangling-free graph: every walk terminates somewhere.
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-9)

    def test_deterministic_per_query(self, engine, small_social):
        other = MonteCarlo(
            small_social, num_hubs=30, samples_per_query=3000, seed=42
        )
        a = engine.query(8).scores
        b = other.query(8).scores
        np.testing.assert_array_equal(a, b)

    def test_reasonable_accuracy(self, engine, small_social):
        exact = exact_ppv(small_social, 17, alpha=ALPHA)
        result = engine.query(17)
        assert precision_at_k(exact, result.scores, k=10) >= 0.6

    def test_accuracy_improves_with_samples(self, small_social):
        exact = exact_ppv(small_social, 11, alpha=ALPHA)
        small = MonteCarlo(small_social, num_hubs=0, samples_per_query=100, seed=1)
        large = MonteCarlo(small_social, num_hubs=0, samples_per_query=5000, seed=1)
        err_small = np.abs(small.query(11).scores - exact).sum()
        err_large = np.abs(large.query(11).scores - exact).sum()
        assert err_large < err_small

    def test_unbiased_mean_close_to_exact(self, small_social):
        # Empirical distribution of the query node's own score: the query
        # node's score is the easiest to estimate and must be near alpha+.
        engine = MonteCarlo(small_social, num_hubs=0, samples_per_query=8000, seed=2)
        exact = exact_ppv(small_social, 29, alpha=ALPHA)
        result = engine.query(29)
        assert result.scores[29] == pytest.approx(exact[29], abs=0.03)

    def test_hub_splicing_consistent(self, small_social):
        # With fingerprint reuse the distribution must remain close to the
        # plain-sampling estimate (same law, different variance).
        exact = exact_ppv(small_social, 13, alpha=ALPHA)
        spliced = MonteCarlo(
            small_social, num_hubs=50, samples_per_query=6000, seed=3
        )
        error = np.abs(spliced.query(13).scores - exact).sum()
        assert error < 0.5  # sampling noise bound at N=6000

    def test_out_of_range_query(self, engine):
        with pytest.raises(ValueError):
            engine.query(10**6)
