"""Certified top-k queries on top of the incremental engine.

The related work (Sect. 2) notes that top-K PPV methods "often rely on
bounds to identify the top K nodes without an actual estimate on node
scores".  Scheduled approximation yields such bounds for free:

* every estimate *under*-approximates (Theorem 1), so ``estimate[p]`` is
  a lower bound on the true score of ``p``;
* the query-time L1 error ``phi`` (Eq. 6) caps the total missing mass,
  so ``estimate[p] + phi`` is an upper bound.

Hence the current top-k is **certified correct as a set** once the k-th
best lower bound exceeds the (k+1)-th best upper bound — i.e. when the
gap between the k-th and (k+1)-th estimates exceeds ``phi``.  The engine
below iterates exactly until that certificate holds (or a budget runs
out), typically far earlier than a fixed accuracy target would require.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.query import FastPPV, QueryResult
from repro.metrics.ranking import top_k_nodes


@dataclass(frozen=True)
class TopKResult:
    """Outcome of a certified top-k query.

    Attributes
    ----------
    nodes:
        The top-k node ids by estimated score, best first.
    certified:
        ``True`` when the set provably equals the exact top-k (the order
        *within* the set may still differ from the exact order).
    iterations:
        Incremental iterations the certificate needed.
    l1_error:
        Query-time L1 error when iteration stopped.
    scores:
        The full estimate vector (lower bounds on the exact scores).
    """

    nodes: np.ndarray
    certified: bool
    iterations: int
    l1_error: float
    scores: np.ndarray


def _certificate_holds(scores: np.ndarray, k: int, phi: float) -> bool:
    """k-th best lower bound > (k+1)-th best upper bound."""
    if k >= scores.size:
        return True  # the "top-k" is the whole node set
    top = top_k_nodes(scores, k + 1)
    kth = scores[top[k - 1]]
    next_best = scores[top[k]]
    return bool(kth > next_best + phi)


def _certificates_hold_many(
    rows: np.ndarray, k: int, phis: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`_certificate_holds` over stacked score rows.

    The scalar check compares the k-th and (k+1)-th best *values* (the
    tie-break of ``top_k_nodes`` picks which node carries them, never the
    values themselves), so a partial sort per row decides identically.
    """
    num_rows, n = rows.shape
    if k >= n:
        return np.ones(num_rows, dtype=bool)
    part = np.partition(rows, (n - k - 1, n - k), axis=1)
    kth = part[:, n - k]
    next_best = part[:, n - k - 1]
    return kth > next_best + phis


@dataclass(frozen=True)
class StopWhenCertified:
    """Stopping condition: halt once the top-k certificate holds.

    Pure and stateless (a frozen dataclass), so one instance may gate a
    whole batch and completed results may be cached keyed by it.  The
    scalar engine consults :meth:`should_stop` per iteration; the batch
    engine of :mod:`repro.core.batch` detects :meth:`should_stop_many`
    and evaluates every in-flight query's certificate for the round in
    one vectorised pass.
    """

    k: int
    max_iterations: int

    def should_stop(self, state) -> bool:
        if state.iteration >= self.max_iterations:
            return True
        if state.scores is None:
            return False
        return _certificate_holds(state.scores, self.k, state.l1_error)

    def should_stop_many(
        self,
        iterations: np.ndarray,
        l1_errors: np.ndarray,
        scores: np.ndarray,
    ) -> np.ndarray:
        """Per-row :meth:`should_stop` for stacked live queries.

        ``iterations``/``l1_errors`` are aligned with the rows of
        ``scores``; returns a boolean mask of queries that must stop.
        Decisions are identical to calling :meth:`should_stop` per row.
        """
        return (iterations >= self.max_iterations) | _certificates_hold_many(
            scores, self.k, l1_errors
        )


def top_k_result(result: QueryResult, k: int) -> TopKResult:
    """Wrap a finished :class:`QueryResult` as a :class:`TopKResult`.

    Re-evaluates the certificate on the final estimate, so the reported
    ``certified`` flag is sound even when iteration stopped for another
    reason (budget, empty frontier).
    """
    return TopKResult(
        nodes=top_k_nodes(result.scores, k),
        certified=_certificate_holds(result.scores, k, result.l1_error),
        iterations=result.iterations,
        l1_error=result.l1_error,
        scores=result.scores,
    )


def query_top_k(
    engine: FastPPV,
    query: int,
    k: int = 10,
    max_iterations: int = 32,
) -> TopKResult:
    """Iterate until the top-k set is certified exact (or budget is hit).

    Runs as a *single* incremental pass: the certificate is evaluated by a
    content-aware stopping condition after every iteration.

    Parameters
    ----------
    engine:
        A :class:`~repro.core.query.FastPPV` engine.  Use ``delta = 0``
        for a sound certificate: frontier pruning makes the Eq. 6 error
        slightly optimistic about prunable mass, which is fine in
        practice but weakens the formal guarantee.
    query:
        Query node.
    k:
        Size of the wanted top set.
    max_iterations:
        Budget; if the certificate never fires the result is returned
        uncertified.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    result = engine.query(
        query, stop=StopWhenCertified(k=k, max_iterations=max_iterations)
    )
    return top_k_result(result, k)
